"""Level-Ordered Unary Degree Sequence (LOUDS) ordinal-tree codec.

This is the classic Jacobson encoding the thesis reviews in Section 3.1
(Figure 3.1): traverse the tree breadth-first and write each node's
degree in unary (``degree`` ones followed by a zero).  A two-bit
super-root ``10`` prefix is prepended so that every real node is pointed
to by exactly one ``1`` bit.

Node numbers are zero-based level-order indexes.  All navigation runs in
constant time via rank/select.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .bitvector import BitVector, BitVectorBuilder
from .rank import RankSupport
from .select import SelectSupport


class LoudsTree:
    """A static ordinal tree encoded with LOUDS.

    Build from an adjacency representation: ``children[i]`` lists the
    node ids of node *i*'s children in order, with node 0 as the root.
    Node ids in the encoded tree are renumbered to level order.
    """

    __slots__ = (
        "bits",
        "_rank",
        "_select1",
        "_select0",
        "num_nodes",
        "_order",
    )

    def __init__(self, children: Sequence[Sequence[int]]) -> None:
        builder = BitVectorBuilder()
        builder.append(1)  # super-root has exactly one child: the root
        builder.append(0)
        order: list[int] = []
        queue: deque[int] = deque([0]) if len(children) else deque()
        while queue:
            node = queue.popleft()
            order.append(node)
            kids = children[node]
            builder.append_run(1, len(kids))  # word-wise unary degree
            queue.extend(kids)
            builder.append(0)
        self.bits = builder.build()
        self.num_nodes = len(order)
        self._order = order  # level-order id -> original id
        self._rank = RankSupport(self.bits, block_bits=64)
        self._select1 = SelectSupport(self.bits, bit=1)
        self._select0 = SelectSupport(self.bits, bit=0)

    # -- navigation (zero-based level-order node numbers) -----------------

    def original_id(self, node: int) -> int:
        """Map a level-order node number back to the constructor's id."""
        return self._order[node]

    def _description_start(self, node: int) -> int:
        """Bit position where ``node``'s unary degree description begins."""
        # Description of node i starts right after the (i+1)-th zero.
        return self._select0.select(node + 1) + 1

    def degree(self, node: int) -> int:
        return self.bits.run_of_ones(self._description_start(node))

    def is_leaf(self, node: int) -> bool:
        pos = self._description_start(node)
        return pos >= len(self.bits) or self.bits.get(pos) == 0

    def child(self, node: int, k: int) -> int:
        """The k-th (zero-based) child of ``node``; IndexError if absent."""
        pos = self._description_start(node)
        if self.bits.get(pos + k) == 0:
            raise IndexError(f"node {node} has no child {k}")
        # The child is pointed to by the one-bit at pos+k; node j is the
        # target of the (j+1)-th one.
        return self._rank.rank1(pos + k) - 1

    def children(self, node: int) -> list[int]:
        return [self.child(node, k) for k in range(self.degree(node))]

    def parent(self, node: int) -> int:
        """Parent node number; -1 for the root."""
        if node == 0:
            return -1
        pointer_pos = self._select1.select(node + 1)
        return self._rank.rank0(pointer_pos) - 1

    # -- memory accounting ------------------------------------------------

    def size_bits(self) -> int:
        return (
            self.bits.size_bits()
            + self._rank.size_bits()
            + self._select1.size_bits()
            + self._select0.size_bits()
        )
