"""Depth-First Unary Degree Sequence (DFUDS) ordinal-tree codec.

DFUDS (reviewed in Chapter 7 of the thesis, Figure 7.1) writes each
node's degree in unary during a *preorder* traversal, using ``(`` for
branches and ``)`` as the terminator, with one extra leading ``(`` to
make the sequence balanced.  Child navigation uses parenthesis matching
(``findclose``).

We encode ``(`` as bit 1 and ``)`` as bit 0.  The implementation keeps
paren matching simple (word-wise scan with an excess counter) — DFUDS is
only used by the path-decomposed-trie *baseline* (Figure 3.5), which the
paper shows to be slower than FST anyway.
"""

from __future__ import annotations

from typing import Sequence

from .bitvector import BitVector, BitVectorBuilder
from .rank import RankSupport


class DfudsTree:
    """A static ordinal tree encoded with DFUDS.

    Nodes are numbered in preorder (zero-based).  ``children[i]`` in the
    constructor lists children of node *i* in order; node 0 is the root.
    """

    __slots__ = ("bits", "_rank", "num_nodes", "_order", "_start")

    def __init__(self, children: Sequence[Sequence[int]]) -> None:
        builder = BitVectorBuilder()
        builder.append(1)  # leading pseudo-paren for balance
        order: list[int] = []
        start: list[int] = []
        if len(children):
            stack = [0]
            while stack:
                node = stack.pop()
                start.append(len(builder))
                order.append(node)
                builder.append_run(1, len(children[node]))  # word-wise unary
                builder.append(0)
                for child in reversed(children[node]):
                    stack.append(child)
        self.bits = builder.build()
        self.num_nodes = len(order)
        self._order = order
        self._start = start  # preorder id -> description start position
        self._rank = RankSupport(self.bits, block_bits=64)

    def original_id(self, node: int) -> int:
        return self._order[node]

    def degree(self, node: int) -> int:
        return self.bits.run_of_ones(self._start[node])

    def is_leaf(self, node: int) -> bool:
        return self.bits.get(self._start[node]) == 0

    def _findclose(self, pos: int) -> int:
        """Matching ``)`` for the ``(`` at ``pos``.

        Word-accelerated excess scan: a word whose zero count cannot
        absorb the current excess is skipped with one popcount; only the
        word containing the answer is scanned bit by bit.
        """
        bits = self.bits
        n = len(bits)
        excess = 1
        i = pos + 1
        n_words = (n + 63) >> 6
        word_idx = i >> 6
        off = i & 63
        while word_idx < n_words:
            base = word_idx << 6
            width = min(64, n - base) - off
            word = bits.word(word_idx) >> off
            ones = (word & ((1 << width) - 1)).bit_count() if width < 64 else word.bit_count()
            zeros = width - ones
            if zeros < excess:
                # The close paren cannot be in this word: net effect only.
                excess += ones - zeros
            else:
                for k in range(width):
                    if (word >> k) & 1:
                        excess += 1
                    else:
                        excess -= 1
                        if excess == 0:
                            return base + off + k
            word_idx += 1
            off = 0
        raise ValueError(f"unbalanced parenthesis at {pos}")

    def child(self, node: int, k: int) -> int:
        """The k-th (zero-based) child of ``node`` (preorder number)."""
        deg = self.degree(node)
        if k >= deg:
            raise IndexError(f"node {node} has no child {k}")
        pos = self._start[node]
        # In DFUDS the k-th child subtree begins right after the close
        # paren matching the (deg-k)-th open paren of the description.
        open_pos = pos + (deg - 1 - k)
        close_pos = self._findclose(open_pos)
        child_start = close_pos + 1
        # Convert start position back to preorder number: the node whose
        # description starts at child_start is rank0(child_start - 1) of
        # zeros, i.e. the number of completed descriptions before it.
        return self._rank.rank0(child_start - 1)

    def children(self, node: int) -> list[int]:
        return [self.child(node, k) for k in range(self.degree(node))]

    def size_bits(self) -> int:
        # The _start index is a convenience cache; a production DFUDS
        # derives it from select0, so we account only 32 bits per sample
        # at the paper's 1/64 sampling rate.
        sampled_index = (self.num_nodes // 64 + 1) * 32
        return self.bits.size_bits() + self._rank.size_bits() + sampled_index
