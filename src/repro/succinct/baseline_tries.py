"""Succinct-trie baselines for the Figure 3.5 comparison.

* :class:`TxTrie` — stands in for tx-trie: a LOUDS-Sparse-only
  encoding with none of FST's optimizations (no LOUDS-Dense levels,
  linear label search).  Implemented as a configuration of our FST so
  the comparison isolates exactly the optimizations the paper credits.
* :class:`PathDecomposedTrie` — stands in for PDT: a centroid
  path-decomposed trie whose shape would be DFUDS-encoded; each node
  stores its heavy-path label string, with branches hanging off path
  positions.  Path decomposition re-balances deep tries (the paper
  notes PDT narrows the gap on long-key workloads).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..fst.fst import FST


class TxTrie(FST):
    """LOUDS-Sparse-only succinct trie without FST's optimizations."""

    def __init__(self, keys: Sequence[bytes], values: Sequence[Any] | None = None):
        super().__init__(
            keys,
            values,
            dense_levels=0,
            label_search="linear",
            sparse_rank_block=512,
            select_sample=256,  # coarse select: no sampled-LUT speedup
        )


class _PdtNode:
    __slots__ = ("path", "branches", "terminals")

    def __init__(self, path: bytes) -> None:
        self.path = path
        #: (position_in_path, branch_byte, child), sorted by position.
        self.branches: list[tuple[int, int, "_PdtNode"]] = []
        #: (position_in_path, value): a key ends after consuming
        #: ``position`` bytes of this node's path.
        self.terminals: list[tuple[int, Any]] = []

    def find_branch(self, pos: int, byte: int) -> "_PdtNode | None":
        for bpos, bbyte, child in self.branches:
            if bpos == pos and bbyte == byte:
                return child
        return None

    def terminal_at(self, pos: int) -> Any | None:
        for tpos, value in self.terminals:
            if tpos == pos:
                return value
        return None


class PathDecomposedTrie:
    """Centroid path-decomposed trie over sorted distinct keys."""

    def __init__(self, keys: Sequence[bytes], values: Sequence[Any] | None = None):
        for i in range(len(keys) - 1):
            if keys[i] >= keys[i + 1]:
                raise ValueError("keys must be sorted and distinct")
        if values is None:
            values = list(range(len(keys)))
        self.n_keys = len(keys)
        pairs = list(zip(keys, values))
        self._root = self._build(pairs, 0) if pairs else None
        self._node_count = 0
        self._path_bytes = 0
        self._branch_count = 0
        self._terminal_count = 0
        self._count_stats(self._root)

    def _build(self, pairs: list[tuple[bytes, Any]], depth: int) -> _PdtNode:
        """Follow the heaviest child at every step; side groups branch;
        keys ending along the path become interior terminals."""
        path = bytearray()
        terminals: list[tuple[int, Any]] = []
        branches: list[tuple[int, int, _PdtNode]] = []
        lo, hi = 0, len(pairs)
        while True:
            if lo < hi and len(pairs[lo][0]) == depth:
                terminals.append((len(path), pairs[lo][1]))
                lo += 1
            if lo >= hi:
                break
            # Group by next byte; the heaviest group continues the path.
            groups: list[tuple[int, int, int]] = []  # (byte, start, end)
            i = lo
            while i < hi:
                byte = pairs[i][0][depth]
                j = i
                while j < hi and pairs[j][0][depth] == byte:
                    j += 1
                groups.append((byte, i, j))
                i = j
            heavy = max(range(len(groups)), key=lambda g: groups[g][2] - groups[g][1])
            for gi, (byte, gs, ge) in enumerate(groups):
                if gi != heavy:
                    branches.append(
                        (len(path), byte, self._build(pairs[gs:ge], depth + 1))
                    )
            heavy_byte, lo, hi = groups[heavy]
            path.append(heavy_byte)
            depth += 1
        node = _PdtNode(bytes(path))
        node.terminals = terminals
        node.branches = sorted(branches, key=lambda b: (b[0], b[1]))
        return node

    def get(self, key: bytes) -> Any | None:
        node = self._root
        depth = 0
        while node is not None:
            path = node.path
            i = 0
            while True:
                if depth == len(key):
                    return node.terminal_at(i)
                if i == len(path) or key[depth] != path[i]:
                    child = node.find_branch(i, key[depth])
                    if child is None:
                        return None
                    node = child
                    depth += 1
                    break
                i += 1
                depth += 1
        return None

    def __len__(self) -> int:
        return self.n_keys

    def _count_stats(self, node: _PdtNode | None) -> None:
        if node is None:
            return
        self._node_count += 1
        self._path_bytes += len(node.path)
        self._branch_count += len(node.branches)
        self._terminal_count += len(node.terminals)
        for _, _, child in node.branches:
            self._count_stats(child)

    def size_bits(self) -> int:
        """Modeled succinct encoding: DFUDS shape (2 bits/branch edge +
        2/node) + path bytes + branch labels + 2-byte branch positions
        + 32-bit path offsets."""
        shape = 2 * (self._node_count + self._branch_count)
        paths = 8 * self._path_bytes + 32 * self._node_count
        branches = (8 + 16) * self._branch_count
        terminals = 16 * self._terminal_count  # interior end positions
        return shape + paths + branches + terminals

    def memory_bytes(self) -> int:
        return (self.size_bits() + 7) // 8

    @property
    def max_node_depth(self) -> int:
        """Path decomposition bounds node depth ~ log(n) even for long
        keys — the rebalancing the paper credits PDT for."""
        best = 0
        stack = [(self._root, 1)]
        while stack:
            node, d = stack.pop()
            if node is None:
                continue
            best = max(best, d)
            for _, _, child in node.branches:
                stack.append((child, d + 1))
        return best
