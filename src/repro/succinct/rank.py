"""Rank support: constant-time popcount-prefix queries over a bit vector.

This mirrors the customized single-level lookup-table design of FST
(Section 3.6 of the thesis): the bit vector is divided into fixed-length
basic blocks of ``block_bits`` bits, and a 32-bit LUT entry per block
stores the precomputed rank at the block boundary.  FST uses
``block_bits=64`` for LOUDS-Dense (performance: at most one popcount per
query) and ``block_bits=512`` for LOUDS-Sparse (one cache line, 6.25 %
space overhead).
"""

from __future__ import annotations

import numpy as np

# The 16-bit popcount table and the per-word popcount kernel live in
# ``bitvector`` (shared with the bulk query paths); re-exported here for
# backward compatibility.
from .bitvector import WORD_BITS, BitVector, _POP16, _popcounts_per_word

#: Dense sampling used by LOUDS-Dense rank structures.
DENSE_RANK_BLOCK_BITS = 64
#: Sparse sampling used by LOUDS-Sparse rank structures (one cache line).
SPARSE_RANK_BLOCK_BITS = 512


class RankSupport:
    """rank1/rank0 over an immutable :class:`BitVector`.

    ``rank1(i)`` counts set bits in positions ``[0, i]`` *inclusive*,
    matching the convention used throughout the thesis (e.g. the FST
    navigation formulas in Sections 3.2-3.3).
    """

    __slots__ = ("_bv", "_block_bits", "_lut", "_word_cum")

    def __init__(self, bv: BitVector, block_bits: int = SPARSE_RANK_BLOCK_BITS) -> None:
        if block_bits % WORD_BITS != 0:
            raise ValueError("block_bits must be a multiple of 64")
        self._bv = bv
        self._block_bits = block_bits
        words_per_block = block_bits // WORD_BITS
        per_word = _popcounts_per_word(bv.words).astype(np.uint64)
        n_blocks = (len(bv) + block_bits - 1) // block_bits if len(bv) else 0
        # lut[k] = number of ones strictly before block k.
        padded = np.zeros(n_blocks * words_per_block, dtype=np.uint64)
        padded[: len(per_word)] = per_word
        block_pops = padded.reshape(n_blocks, words_per_block).sum(axis=1) if n_blocks else padded
        self._lut = np.zeros(n_blocks + 1, dtype=np.uint64)
        if n_blocks:
            np.cumsum(block_pops, out=self._lut[1:])
        #: Per-word cumulative popcounts for the batch path; built
        #: lazily on the first ``rank1_many`` call (query accelerator,
        #: not part of the paper's modeled LUT overhead).
        self._word_cum: np.ndarray | None = None

    def rank1(self, i: int) -> int:
        """Number of ones in ``[0, i]``; requires ``0 <= i < len(bv)``."""
        if i < 0 or i >= len(self._bv):
            raise IndexError(
                f"rank index {i} out of range [0, {len(self._bv)})"
            )
        block = i // self._block_bits
        start = block * self._block_bits
        return int(self._lut[block]) + self._bv.popcount_range(start, i + 1)

    def rank0(self, i: int) -> int:
        """Number of zeros in ``[0, i]``; requires ``0 <= i < len(bv)``."""
        return i + 1 - self.rank1(i)

    # -- batch kernels ----------------------------------------------------

    def _word_cumsum(self) -> np.ndarray:
        """``cum[k]`` = ones strictly before word ``k`` (lazy cache)."""
        cum = self._word_cum
        if cum is None:
            per_word = _popcounts_per_word(self._bv.words).astype(np.int64)
            cum = np.zeros(len(per_word) + 1, dtype=np.int64)
            np.cumsum(per_word, out=cum[1:])
            self._word_cum = cum
        return cum

    def rank1_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank1` over an int array of positions.

        One word gather + one table-driven popcount pass for the whole
        batch; duplicates and arbitrary order are allowed, and every
        position must lie in ``[0, len(bv))``.
        """
        pos = np.ascontiguousarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        lo, hi = int(pos.min()), int(pos.max())
        if lo < 0 or hi >= len(self._bv):
            bad = lo if lo < 0 else hi
            raise IndexError(f"rank index {bad} out of range [0, {len(self._bv)})")
        cum = self._word_cumsum()
        word_idx = pos >> 6
        # Keep bits [0, pos & 63] by shifting them up against the top of
        # the word (uint64 left shift drops the rest modulo 2^64).
        shift = (np.int64(63) - (pos & 63)).astype(np.uint64)
        masked = np.left_shift(self._bv.words[word_idx], shift)
        return cum[word_idx] + _popcounts_per_word(masked).astype(np.int64)

    def rank0_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank0` (same contract as :meth:`rank1_many`)."""
        pos = np.ascontiguousarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        return pos + 1 - self.rank1_many(pos)

    def total_ones(self) -> int:
        if len(self._bv) == 0:
            return 0
        return self.rank1(len(self._bv) - 1)

    # -- memory accounting ------------------------------------------------

    def size_bits(self) -> int:
        """LUT overhead in bits (32 bits per block entry, as in the paper)."""
        return max(0, len(self._lut) - 1) * 32
