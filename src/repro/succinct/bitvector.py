"""Plain bit vectors backed by numpy ``uint64`` words.

This is the base storage primitive for every succinct structure in the
library (LOUDS, LOUDS-Dense, LOUDS-Sparse, DFUDS).  Bits are addressed
LSB-first within each 64-bit word, so bit *i* lives in word ``i // 64``
at shift ``i % 64``.

The vector itself is append-only during construction (via
:class:`BitVectorBuilder`) and immutable afterwards, matching the static
data structures of the paper.  Construction offers bulk word-level
kernels (``append_word``, ``append_run``, ``from_words``,
:meth:`BitVector.from_bools`) so callers never pay a Python call per
bit; queries use a shared 16-bit popcount table for word-span counts.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1

# 16-bit popcount table shared by every rank/select structure in the
# package: 64 KiB once per process (re-exported by ``rank.py``).
_POP16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint32)


def _popcounts_per_word(words: np.ndarray) -> np.ndarray:
    """Vector of per-uint64 popcounts computed via the 16-bit table."""
    if len(words) == 0:
        return np.zeros(0, dtype=np.uint32)
    halves = words.view(np.uint16).reshape(len(words), WORD_BITS // 16)
    return _POP16[halves].sum(axis=1, dtype=np.uint32)


def pack_bools(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array into LSB-first ``uint64`` words (zero-padded)."""
    packed = np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little")
    pad = (-len(packed)) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    return packed.view(np.uint64)


class BitVector:
    """An immutable sequence of bits.

    Parameters
    ----------
    words:
        The backing ``uint64`` array (LSB-first bit order).
    n_bits:
        Logical length; trailing bits of the last word must be zero
        (enforced — a dirty tail would silently corrupt
        :meth:`count_ones`, rank LUTs, and zero-select).
    """

    __slots__ = ("_words", "_n_bits")

    def __init__(self, words: np.ndarray, n_bits: int) -> None:
        if words.dtype != np.uint64:
            raise TypeError(f"words must be uint64, got {words.dtype}")
        if n_bits > len(words) * WORD_BITS:
            raise ValueError("n_bits exceeds capacity of words array")
        last = n_bits >> 6
        rem = n_bits & 63
        if rem and last < len(words) and int(words[last]) >> rem:
            raise ValueError(
                f"nonzero padding bits past position {n_bits} in last word"
            )
        tail = last + (1 if rem else 0)
        if tail < len(words) and words[tail:].any():
            raise ValueError(f"nonzero words past position {n_bits}")
        self._words = words
        self._n_bits = n_bits

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build a vector from an iterable of 0/1 values."""
        arr = np.fromiter((1 if b else 0 for b in bits), dtype=np.uint8)
        return cls(pack_bools(arr), len(arr))

    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "BitVector":
        """Build a vector from a 0/1 numpy array in one packbits pass."""
        return cls(pack_bools(bits), len(bits))

    @classmethod
    def zeros(cls, n_bits: int) -> "BitVector":
        n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
        return cls(np.zeros(n_words, dtype=np.uint64), n_bits)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self._n_bits

    def __getitem__(self, i: int) -> int:
        if i < 0 or i >= self._n_bits:
            raise IndexError(f"bit index {i} out of range [0, {self._n_bits})")
        return (int(self._words[i >> 6]) >> (i & 63)) & 1

    def get(self, i: int) -> int:
        """Unchecked bit read (hot path for rank/select internals)."""
        return (int(self._words[i >> 6]) >> (i & 63)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n_bits):
            yield self.get(i)

    def get_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized bit read: ``uint8`` 0/1 per position in one gather.

        ``positions`` is any int array (duplicates and arbitrary order
        allowed); every position must lie in ``[0, len(self))``.
        """
        pos = np.ascontiguousarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.uint8)
        lo, hi = int(pos.min()), int(pos.max())
        if lo < 0 or hi >= self._n_bits:
            bad = lo if lo < 0 else hi
            raise IndexError(f"bit index {bad} out of range [0, {self._n_bits})")
        words = self._words[pos >> 6]
        return ((words >> (pos & 63).astype(np.uint64)) & np.uint64(1)).astype(
            np.uint8
        )

    @property
    def words(self) -> np.ndarray:
        return self._words

    def word(self, k: int) -> int:
        """The k-th 64-bit word as a Python int."""
        return int(self._words[k])

    def count_ones(self) -> int:
        """Total number of set bits."""
        return int(_popcounts_per_word(self._words).sum())

    def popcount_range(self, start: int, stop: int) -> int:
        """Number of set bits in ``[start, stop)``.

        Small spans (the rank hot path: at most one 512-bit block) use a
        scalar word loop; wide spans batch the interior words through
        the 16-bit popcount table.
        """
        if start >= stop:
            return 0
        total = 0
        first_word, last_word = start >> 6, (stop - 1) >> 6
        if first_word == last_word:
            width = stop - start
            chunk = (int(self._words[first_word]) >> (start & 63)) & ((1 << width) - 1)
            return chunk.bit_count()
        head = int(self._words[first_word]) >> (start & 63)
        total += head.bit_count()
        if last_word - first_word > 8:
            total += int(
                _popcounts_per_word(self._words[first_word + 1 : last_word]).sum()
            )
        else:
            for w in range(first_word + 1, last_word):
                total += int(self._words[w]).bit_count()
        tail_bits = ((stop - 1) & 63) + 1
        tail = int(self._words[last_word]) & ((1 << tail_bits) - 1)
        total += tail.bit_count()
        return total

    def run_of_ones(self, pos: int) -> int:
        """Length of the run of consecutive set bits starting at ``pos``
        (word-wise scan; used for unary degree decoding)."""
        n = self._n_bits
        if pos >= n:
            return 0
        count = 0
        word_idx = pos >> 6
        shift = pos & 63
        n_words = (n + WORD_BITS - 1) >> 6
        while word_idx < n_words:
            # Invert so the first zero becomes the lowest set bit.
            inv = (~(int(self._words[word_idx]) >> shift)) & (_WORD_MASK >> shift)
            if inv:
                count += (inv & -inv).bit_length() - 1
                break
            count += WORD_BITS - shift
            word_idx += 1
            shift = 0
        return min(count, n - pos)

    # -- memory accounting ------------------------------------------------

    def size_bits(self) -> int:
        """Memory footprint of the raw bits (as stored, word-aligned)."""
        return len(self._words) * WORD_BITS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prefix = "".join(str(self.get(i)) for i in range(min(64, self._n_bits)))
        suffix = "..." if self._n_bits > 64 else ""
        return f"BitVector({self._n_bits} bits: {prefix}{suffix})"


class BitVectorBuilder:
    """Append-only builder producing an immutable :class:`BitVector`.

    Besides the per-bit :meth:`append`, bulk kernels append 64 bits at a
    time: :meth:`append_word` splices a whole word in two shifts and
    :meth:`append_run` emits long runs word-wise, so building from runs
    or precomputed words costs O(n/64) Python operations, not O(n).
    """

    def __init__(self) -> None:
        self._words: list[int] = []
        self._current = 0
        self._n_bits = 0

    @classmethod
    def from_words(cls, words: Iterable[int] | np.ndarray, n_bits: int) -> "BitVectorBuilder":
        """A builder primed with ``n_bits`` bits taken from LSB-first words."""
        if isinstance(words, np.ndarray):
            words = words.tolist()
        builder = cls()
        remaining = n_bits
        for word in words:
            if remaining <= 0:
                break
            builder.append_word(int(word), min(WORD_BITS, remaining))
            remaining -= WORD_BITS
        if remaining > 0:
            raise ValueError("words supply fewer than n_bits bits")
        return builder

    def append(self, bit: int) -> None:
        if bit:
            self._current |= 1 << (self._n_bits & 63)
        self._n_bits += 1
        if (self._n_bits & 63) == 0:
            self._words.append(self._current)
            self._current = 0

    def append_word(self, word: int, width: int = WORD_BITS) -> None:
        """Append the low ``width`` bits of ``word``, LSB first."""
        if not 0 < width <= WORD_BITS:
            if width == 0:
                return
            raise ValueError(f"width must be in [0, {WORD_BITS}], got {width}")
        word &= _WORD_MASK if width == WORD_BITS else (1 << width) - 1
        off = self._n_bits & 63
        self._current |= (word << off) & _WORD_MASK
        self._n_bits += width
        if off + width >= WORD_BITS:
            self._words.append(self._current)
            self._current = word >> (WORD_BITS - off) if off else 0

    def append_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit`` (word-wise for long runs)."""
        if count <= 0:
            return
        fill = _WORD_MASK if bit else 0
        while count >= WORD_BITS:
            self.append_word(fill)
            count -= WORD_BITS
        if count:
            self.append_word(fill, count)

    def append_bits_lsb(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``, LSB first."""
        while width > WORD_BITS:
            self.append_word(value & _WORD_MASK)
            value >>= WORD_BITS
            width -= WORD_BITS
        if width:
            self.append_word(value, width)

    def extend_bools(self, bits: np.ndarray) -> None:
        """Append a 0/1 numpy array through one packbits pass."""
        if len(bits) == 0:
            return
        words = pack_bools(bits)
        n = len(bits)
        for k in range(len(words)):
            self.append_word(int(words[k]), min(WORD_BITS, n - k * WORD_BITS))

    def __len__(self) -> int:
        return self._n_bits

    def build(self) -> BitVector:
        words = list(self._words)
        if self._n_bits & 63:
            words.append(self._current)
        arr = np.array(words, dtype=np.uint64) if words else np.zeros(0, dtype=np.uint64)
        return BitVector(arr, self._n_bits)
