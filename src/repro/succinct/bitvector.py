"""Plain bit vectors backed by numpy ``uint64`` words.

This is the base storage primitive for every succinct structure in the
library (LOUDS, LOUDS-Dense, LOUDS-Sparse, DFUDS).  Bits are addressed
LSB-first within each 64-bit word, so bit *i* lives in word ``i // 64``
at shift ``i % 64``.

The vector itself is append-only during construction (via
:class:`BitVectorBuilder`) and immutable afterwards, matching the static
data structures of the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


class BitVector:
    """An immutable sequence of bits.

    Parameters
    ----------
    words:
        The backing ``uint64`` array (LSB-first bit order).
    n_bits:
        Logical length; trailing bits of the last word must be zero.
    """

    __slots__ = ("_words", "_n_bits")

    def __init__(self, words: np.ndarray, n_bits: int) -> None:
        if words.dtype != np.uint64:
            raise TypeError(f"words must be uint64, got {words.dtype}")
        if n_bits > len(words) * WORD_BITS:
            raise ValueError("n_bits exceeds capacity of words array")
        self._words = words
        self._n_bits = n_bits

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build a vector from an iterable of 0/1 values."""
        builder = BitVectorBuilder()
        for bit in bits:
            builder.append(bit)
        return builder.build()

    @classmethod
    def zeros(cls, n_bits: int) -> "BitVector":
        n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
        return cls(np.zeros(n_words, dtype=np.uint64), n_bits)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self._n_bits

    def __getitem__(self, i: int) -> int:
        if i < 0 or i >= self._n_bits:
            raise IndexError(f"bit index {i} out of range [0, {self._n_bits})")
        return (int(self._words[i >> 6]) >> (i & 63)) & 1

    def get(self, i: int) -> int:
        """Unchecked bit read (hot path for rank/select internals)."""
        return (int(self._words[i >> 6]) >> (i & 63)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n_bits):
            yield self.get(i)

    @property
    def words(self) -> np.ndarray:
        return self._words

    def word(self, k: int) -> int:
        """The k-th 64-bit word as a Python int."""
        return int(self._words[k])

    def count_ones(self) -> int:
        """Total number of set bits."""
        # Bulk popcount: view as bytes and use the canonical unpackbits sum.
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def popcount_range(self, start: int, stop: int) -> int:
        """Number of set bits in ``[start, stop)`` (scalar path)."""
        if start >= stop:
            return 0
        total = 0
        first_word, last_word = start >> 6, (stop - 1) >> 6
        if first_word == last_word:
            width = stop - start
            chunk = (int(self._words[first_word]) >> (start & 63)) & ((1 << width) - 1)
            return chunk.bit_count()
        head = int(self._words[first_word]) >> (start & 63)
        total += head.bit_count()
        for w in range(first_word + 1, last_word):
            total += int(self._words[w]).bit_count()
        tail_bits = ((stop - 1) & 63) + 1
        tail = int(self._words[last_word]) & ((1 << tail_bits) - 1)
        total += tail.bit_count()
        return total

    # -- memory accounting ------------------------------------------------

    def size_bits(self) -> int:
        """Memory footprint of the raw bits (as stored, word-aligned)."""
        return len(self._words) * WORD_BITS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prefix = "".join(str(self.get(i)) for i in range(min(64, self._n_bits)))
        suffix = "..." if self._n_bits > 64 else ""
        return f"BitVector({self._n_bits} bits: {prefix}{suffix})"


class BitVectorBuilder:
    """Append-only builder producing an immutable :class:`BitVector`."""

    def __init__(self) -> None:
        self._words: list[int] = []
        self._current = 0
        self._n_bits = 0

    def append(self, bit: int) -> None:
        if bit:
            self._current |= 1 << (self._n_bits & 63)
        self._n_bits += 1
        if (self._n_bits & 63) == 0:
            self._words.append(self._current)
            self._current = 0

    def append_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit``."""
        for _ in range(count):
            self.append(bit)

    def append_bits_lsb(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``, LSB first."""
        for k in range(width):
            self.append((value >> k) & 1)

    def __len__(self) -> int:
        return self._n_bits

    def build(self) -> BitVector:
        words = list(self._words)
        if self._n_bits & 63:
            words.append(self._current)
        arr = np.array(words, dtype=np.uint64) if words else np.zeros(0, dtype=np.uint64)
        return BitVector(arr, self._n_bits)
