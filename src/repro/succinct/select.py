"""Select support: position-of-k-th-bit queries over a bit vector.

This mirrors FST's lightweight sampled-LUT select (Section 3.6): a
single lookup table stores the precomputed answer for every ``rate``-th
query, and the remainder is resolved by a short word-by-word popcount
scan from the sampled position.  The thesis uses a default sampling
rate of 64, which costs 1-2 % space overall on the S-LOUDS vector.
"""

from __future__ import annotations

import numpy as np

from .bitvector import WORD_BITS, BitVector

#: FST's default select sampling rate.
DEFAULT_SELECT_SAMPLE_RATE = 64


def _select_in_word(word: int, k: int) -> int:
    """Bit offset of the k-th (1-based) set bit inside ``word``."""
    for offset in range(WORD_BITS):
        if word & 1:
            k -= 1
            if k == 0:
                return offset
        word >>= 1
    raise ValueError("word does not contain k set bits")


class SelectSupport:
    """select over an immutable :class:`BitVector` for ones or zeros.

    ``select(r)`` returns the position of the r-th (1-based) target bit.
    Set ``bit=0`` to select zero bits (needed by plain LOUDS trees).
    """

    __slots__ = ("_bv", "_bit", "_rate", "_samples", "_total")

    def __init__(
        self,
        bv: BitVector,
        bit: int = 1,
        sample_rate: int = DEFAULT_SELECT_SAMPLE_RATE,
    ) -> None:
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._bv = bv
        self._bit = bit
        self._rate = sample_rate
        samples: list[int] = []
        seen = 0
        for pos in range(len(bv)):
            if bv.get(pos) == bit:
                seen += 1
                if (seen - 1) % sample_rate == 0:
                    samples.append(pos)
        self._total = seen
        self._samples = np.array(samples, dtype=np.uint64)

    @property
    def total(self) -> int:
        """Number of target bits in the vector."""
        return self._total

    def select(self, r: int) -> int:
        """Position of the r-th (1-based) target bit."""
        if r < 1 or r > self._total:
            raise IndexError(f"select rank {r} out of range [1, {self._total}]")
        sample_idx = (r - 1) // self._rate
        pos = int(self._samples[sample_idx])
        remaining = r - (sample_idx * self._rate + 1)
        if remaining == 0:
            return pos
        # Scan forward word-by-word from the sampled position.
        word_idx = (pos + 1) >> 6
        bit_off = (pos + 1) & 63
        n_words = (len(self._bv) + WORD_BITS - 1) // WORD_BITS
        while word_idx < n_words:
            word = self._bv.word(word_idx)
            if self._bit == 0:
                word = ~word & ((1 << WORD_BITS) - 1)
            word >>= bit_off
            count = word.bit_count()
            if count >= remaining:
                return (word_idx << 6) + bit_off + _select_in_word(word, remaining)
            remaining -= count
            word_idx += 1
            bit_off = 0
        raise AssertionError("select scan ran past end of vector")  # pragma: no cover

    # -- memory accounting ------------------------------------------------

    def size_bits(self) -> int:
        """Sampled LUT overhead in bits (32 bits per sample)."""
        return len(self._samples) * 32
