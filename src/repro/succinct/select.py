"""Select support: position-of-k-th-bit queries over a bit vector.

This mirrors FST's lightweight sampled-LUT select (Section 3.6): a
single lookup table stores the precomputed answer for every ``rate``-th
query, and the remainder is resolved by a short word-by-word popcount
scan from the sampled position.  The thesis uses a default sampling
rate of 64, which costs 1-2 % space overall on the S-LOUDS vector.

Construction is vectorized: per-word popcounts come from the shared
16-bit table, a cumulative sum locates each sampled rank's word via one
``searchsorted``, and only the in-word offsets are resolved in Python —
O(n / sample_rate) calls instead of one call per bit.  In-word select
walks bytes through a 256x8 offset table (at most 8 steps), the Python
analogue of the broadword/PDEP tricks C implementations use.
"""

from __future__ import annotations

import numpy as np

from .bitvector import WORD_BITS, _WORD_MASK, BitVector, _popcounts_per_word

#: FST's default select sampling rate.
DEFAULT_SELECT_SAMPLE_RATE = 64

# _SELECT_IN_BYTE[b][k-1] = offset of the k-th (1-based) set bit of byte b.
_SELECT_IN_BYTE: list[list[int]] = [
    [off for off in range(8) if (b >> off) & 1] for b in range(256)
]


def _select_in_word(word: int, k: int) -> int:
    """Bit offset of the k-th (1-based) set bit inside ``word``."""
    for base in range(0, WORD_BITS, 8):
        byte = word & 0xFF
        pop = byte.bit_count()
        if k <= pop:
            return base + _SELECT_IN_BYTE[byte][k - 1]
        k -= pop
        word >>= 8
    raise ValueError("word does not contain k set bits")


class SelectSupport:
    """select over an immutable :class:`BitVector` for ones or zeros.

    ``select(r)`` returns the position of the r-th (1-based) target bit.
    Set ``bit=0`` to select zero bits (needed by plain LOUDS trees).
    """

    __slots__ = ("_bv", "_bit", "_rate", "_samples", "_total")

    def __init__(
        self,
        bv: BitVector,
        bit: int = 1,
        sample_rate: int = DEFAULT_SELECT_SAMPLE_RATE,
    ) -> None:
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        self._bv = bv
        self._bit = bit
        self._rate = sample_rate
        n_bits = len(bv)
        n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
        per_word = _popcounts_per_word(bv.words[:n_words]).astype(np.int64)
        if bit == 0:
            per_word = WORD_BITS - per_word
            rem = n_bits & 63
            if rem:
                # The last word's padding zeros are not part of the vector.
                per_word[-1] -= WORD_BITS - rem
        cum = np.cumsum(per_word)
        self._total = int(cum[-1]) if n_words else 0
        ranks = np.arange(1, self._total + 1, sample_rate, dtype=np.int64)
        word_idx = np.searchsorted(cum, ranks, side="left")
        before = np.zeros(len(ranks), dtype=np.int64)
        np.subtract(cum[word_idx], per_word[word_idx], out=before)
        samples = np.empty(len(ranks), dtype=np.uint64)
        words = bv.words
        for s, (wi, r, b) in enumerate(
            zip(word_idx.tolist(), ranks.tolist(), before.tolist())
        ):
            word = int(words[wi])
            if bit == 0:
                word = ~word & _WORD_MASK
            samples[s] = (wi << 6) + _select_in_word(word, r - b)
        self._samples = samples

    @property
    def total(self) -> int:
        """Number of target bits in the vector."""
        return self._total

    def select(self, r: int) -> int:
        """Position of the r-th (1-based) target bit."""
        if r < 1 or r > self._total:
            raise IndexError(f"select rank {r} out of range [1, {self._total}]")
        sample_idx = (r - 1) // self._rate
        pos = int(self._samples[sample_idx])
        remaining = r - (sample_idx * self._rate + 1)
        if remaining == 0:
            return pos
        # Scan forward word-by-word from the sampled position.
        word_idx = (pos + 1) >> 6
        bit_off = (pos + 1) & 63
        n_words = (len(self._bv) + WORD_BITS - 1) >> 6
        while word_idx < n_words:
            word = self._bv.word(word_idx)
            if self._bit == 0:
                word = ~word & _WORD_MASK
            word >>= bit_off
            count = word.bit_count()
            if count >= remaining:
                return (word_idx << 6) + bit_off + _select_in_word(word, remaining)
            remaining -= count
            word_idx += 1
            bit_off = 0
        raise AssertionError("select scan ran past end of vector")  # pragma: no cover

    # -- memory accounting ------------------------------------------------

    def size_bits(self) -> int:
        """Sampled LUT overhead in bits (32 bits per sample)."""
        return len(self._samples) * 32
