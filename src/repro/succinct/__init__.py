"""Succinct data-structure primitives (Chapter 3 substrate).

Bit vectors with rank/select support, the LOUDS and DFUDS ordinal-tree
codecs, and the succinct-trie baselines used in Figure 3.5.
"""

from .bitvector import BitVector, BitVectorBuilder, WORD_BITS
from .rank import (
    DENSE_RANK_BLOCK_BITS,
    SPARSE_RANK_BLOCK_BITS,
    RankSupport,
)
from .select import DEFAULT_SELECT_SAMPLE_RATE, SelectSupport
from .louds import LoudsTree
from .dfuds import DfudsTree


def __getattr__(name: str):
    # TxTrie builds on FST, which builds on this package: import the
    # baselines lazily to avoid the circular import.
    if name in ("TxTrie", "PathDecomposedTrie"):
        from . import baseline_tries

        return getattr(baseline_tries, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BitVector",
    "BitVectorBuilder",
    "WORD_BITS",
    "RankSupport",
    "SelectSupport",
    "LoudsTree",
    "DfudsTree",
    "TxTrie",
    "PathDecomposedTrie",
    "DENSE_RANK_BLOCK_BITS",
    "SPARSE_RANK_BLOCK_BITS",
    "DEFAULT_SELECT_SAMPLE_RATE",
]
