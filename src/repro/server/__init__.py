"""Sharded asynchronous key-value serving layer over the durable LSM engine.

The subsystem turns the single-process :class:`repro.lsm.LSMTree` into
a network service: keys are hash-sharded across N independent durable
engines, an asyncio front-end speaks a length-prefixed binary protocol
with per-connection pipelining, and per-shard single-writer worker
threads coalesce concurrent reads into batch lookups and adjacent
writes into WAL group commits.

Entry points::

    python -m repro.server serve --path DIR --shards 4 --port 4440
    python -m repro.server bench --workload C --shards 4

See :mod:`repro.server.protocol` for the wire format and
:mod:`repro.server.client` for the blocking and pipelined clients.
"""

from .client import (
    AsyncKVClient,
    FencedError,
    FollowerLaggingError,
    KVClient,
    NotOwnerError,
    NotPrimaryError,
    ServerError,
    ServerOverloadedError,
    ServerShuttingDownError,
    WatermarkReply,
)
from .procshard import ProcessShard
from .server import KVServer, ServerThread, shard_of
from .shard import ShardDown, ShardWorker
from .stats import LatencyHistogram, ServerStats

__all__ = [
    "AsyncKVClient",
    "FencedError",
    "FollowerLaggingError",
    "KVClient",
    "NotOwnerError",
    "WatermarkReply",
    "KVServer",
    "LatencyHistogram",
    "NotPrimaryError",
    "ProcessShard",
    "ServerError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
    "ServerStats",
    "ServerThread",
    "ShardDown",
    "ShardWorker",
    "shard_of",
]
