"""Process shards: one LSM engine per worker *process*.

Thread shards (:class:`~repro.server.shard.ShardWorker`) coalesce
beautifully but execute every engine operation under one GIL — N
shards add zero CPU parallelism.  A :class:`ProcessShard` keeps the
exact same queueing/coalescing front (it *is* a ``ShardWorker``), but
its "engine" is a :class:`RemoteEngine` proxy: each coalesced batch is
one length-prefixed RPC over a pipe to a spawned child process that
owns the real :class:`~repro.lsm.engine.LSMTree`.  Frames reuse
:mod:`repro.server.protocol` (``<u32 len><u32 request_id><u8 op>``)
with a private opcode range and the same body codecs, so the wire
discipline is identical inside and outside the process.

The zero-copy read path is what makes this profitable: every child
maps each SSTable once (``FileSystem.open_mmap``) and builds filters
as ``np.frombuffer`` views, so N processes share one page-cache copy
of all static structures instead of N heap copies.

Spawn-safety and test support:

* the child entry point is a module-level function; the ``spawn``
  start method is used unconditionally (forking a threaded asyncio
  parent is unsafe);
* ``fs`` may be any *picklable* FileSystem (MemFS / FaultFS) — the
  child runs against its own copy and ships the final filesystem state
  back in the STOP reply (or alongside a startup error), which the
  parent merges into the original object in place.  That round-trip is
  what lets the kill-at-every-sync-point matrix and the wire fuzzer
  drive ``--shard-mode=process`` unchanged;
* the child ignores SIGINT (a terminal ^C reaches the whole process
  group and must not kill a shard mid-commit) but treats SIGTERM as
  sync-and-exit — ``Process.terminate`` and Python's exit-time cleanup
  of daemon children rely on it; shutdown is normally coordinated by
  the parent's drain (STOP), and a vanished parent is detected as EOF
  on the pipe, so children never outlive the server.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import signal
from typing import Any, Callable

from ..lsm.fs import FileSystem
from . import protocol
from .shard import MAX_BURST, ShardWorker, WorkerCrash
from .stats import ServerStats

#: Shard-RPC opcodes (disjoint from the client-facing 1..9 range).
OP_GET_MANY = 32
OP_WRITE_BATCH = 33
OP_SCAN = 34
OP_COUNT = 35
OP_SYNC = 36
OP_INFO = 37
OP_STOP = 38

#: Seconds the parent waits for a child to finish its drain on STOP.
STOP_TIMEOUT = 60.0


def _pickle_error(exc: BaseException, fs: FileSystem | None) -> bytes:
    """Error reply body: the exception (and fs state, for startup
    failures) — degraded to a picklable stand-in when needed."""
    try:
        return pickle.dumps((exc, fs))
    except Exception:
        return pickle.dumps((RuntimeError(repr(exc)), None))


def _shard_child_main(
    conn,
    path: str,
    engine_config: dict,
    fs: FileSystem | None,
    filter_factory: Callable | None,
) -> None:
    """Entry point of one shard process (module-level: spawn-picklable)."""
    # The parent's drain is the normal shutdown authority; a ^C on the
    # server's terminal goes to the whole process group and must not
    # kill a child mid-commit, so SIGINT is ignored.  SIGTERM is the
    # forceful path (``Process.terminate``, and multiprocessing's
    # exit-time cleanup of leaked daemon children uses terminate-then-
    # ``join()`` with no timeout): it must always work, so it syncs the
    # engine and exits instead of being ignored — otherwise one leaked
    # shard would hang the parent interpreter's shutdown forever.
    def _graceful_term(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, _graceful_term)

    from ..lsm.engine import LSMTree

    try:
        engine = LSMTree.open(
            path, fs=fs, filter_factory=filter_factory, **engine_config
        )
    except BaseException as exc:
        try:
            conn.send_bytes(protocol.frame(0, protocol.ERROR, _pickle_error(exc, fs)))
        finally:
            conn.close()
        return
    conn.send_bytes(protocol.frame(0, protocol.OK, b""))

    def close_engine() -> None:
        try:
            engine.sync()
        except Exception:
            pass
        try:
            engine.close()
        except Exception:
            pass

    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                # Parent vanished: sync what we can and exit.
                close_engine()
                return
            length = protocol.parse_length(raw[:4])
            request_id, op, body = protocol.parse_payload(raw[4 : 4 + length])
            if op == OP_STOP:
                close_engine()
                state = pickle.dumps(fs) if fs is not None else b""
                conn.send_bytes(protocol.frame(request_id, protocol.OK, state))
                return
            try:
                if op == OP_GET_MANY:
                    values = engine.get_many(protocol.decode_keys(body))
                    reply = protocol.encode_maybe_values(values, missing=None)
                elif op == OP_WRITE_BATCH:
                    engine.write_batch(protocol.decode_pairs(body))
                    reply = protocol.encode_u64_body(engine.last_seq)
                elif op == OP_SCAN:
                    low, count = protocol.decode_scan(body)
                    reply = protocol.encode_pairs(engine.scan(low, count))
                elif op == OP_COUNT:
                    low, high = protocol.decode_range(body)
                    reply = protocol.encode_u64_body(engine.count(low, high))
                elif op == OP_SYNC:
                    engine.sync()
                    reply = b""
                elif op == OP_INFO:
                    reply = json.dumps(engine.info()).encode()
                else:
                    raise protocol.ProtocolError(f"unknown shard-RPC op {op}")
            except Exception as exc:
                conn.send_bytes(
                    protocol.frame(request_id, protocol.ERROR, _pickle_error(exc, None))
                )
            else:
                conn.send_bytes(protocol.frame(request_id, protocol.OK, reply))
    except SystemExit:
        # SIGTERM (terminate / exit-time cleanup): sync what we can
        # and leave — acked writes are already WAL-durable.
        close_engine()
        return
    finally:
        conn.close()


class RemoteEngine:
    """Engine-shaped RPC proxy over one shard process.

    Exposes exactly the surface :class:`ShardWorker` drives —
    ``get_many`` / ``write_batch`` / ``scan`` / ``count`` / ``sync`` /
    ``info`` / ``close`` — so the coalescing worker needs no knowledge
    of where the engine lives.  Calls are strictly request/reply on one
    pipe; a broken pipe raises :class:`WorkerCrash` so the worker loop
    marks the shard dead instead of hanging clients.
    """

    def __init__(self, conn, process, fs: FileSystem | None) -> None:
        self._conn = conn
        self._process = process
        self._fs = fs
        self._next_id = 1
        self._ready = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until the child's engine opened (or re-raise its error)."""
        if self._ready:
            return
        if not self._conn.poll(timeout):
            self._reap(force=True)
            raise TimeoutError("shard process did not come up")
        try:
            raw = self._conn.recv_bytes()
        except (EOFError, OSError) as exc:
            self._reap(force=True)
            raise WorkerCrash(f"shard process died during startup: {exc!r}")
        _, status, body = protocol.parse_payload(raw[4:])
        if status != protocol.OK:
            exc, fs_state = pickle.loads(body)
            self._merge_fs(fs_state)
            self._reap(force=False)
            raise exc
        self._ready = True

    def close(self) -> None:
        """STOP the child (it drains, syncs, replies with final fs
        state), merge that state back, and reap the process."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send_bytes(protocol.frame(self._next_id, OP_STOP, b""))
            if self._conn.poll(STOP_TIMEOUT):
                raw = self._conn.recv_bytes()
                _, status, body = protocol.parse_payload(raw[4:])
                if status == protocol.OK and body:
                    self._merge_fs(pickle.loads(body))
        except (EOFError, OSError, ValueError):
            pass
        finally:
            try:
                self._conn.close()
            except Exception:
                pass
            self._reap(force=False)

    def _merge_fs(self, state: FileSystem | None) -> None:
        """Fold the child's final filesystem state into the parent's
        object *in place*, preserving identity for callers (tests) that
        hold a reference to it."""
        if state is None or self._fs is None:
            return
        self._fs.__dict__.clear()
        self._fs.__dict__.update(state.__dict__)

    def _reap(self, force: bool) -> None:
        proc = self._process
        if proc is None:
            return
        proc.join(timeout=5 if force else STOP_TIMEOUT)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - last resort
            proc.kill()
            proc.join(timeout=5)
        self._process = None

    # -- RPC plumbing ------------------------------------------------------

    def _call(self, op: int, body: bytes = b"") -> bytes:
        if self._closed:
            raise WorkerCrash("shard process already stopped")
        self._next_id += 1
        try:
            self._conn.send_bytes(protocol.frame(self._next_id, op, body))
            raw = self._conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise WorkerCrash(f"shard process died: {exc!r}")
        request_id, status, reply = protocol.parse_payload(raw[4:])
        if request_id != self._next_id:
            raise WorkerCrash(f"shard-RPC id mismatch ({request_id} != {self._next_id})")
        if status != protocol.OK:
            exc, _ = pickle.loads(reply)
            raise exc
        return reply

    # -- the engine surface ShardWorker drives -----------------------------

    def get_many(self, keys: list[bytes]) -> list[Any]:
        reply = self._call(OP_GET_MANY, protocol.encode_keys(keys))
        return protocol.decode_maybe_values(reply, missing=None)

    def write_batch(self, entries: list[tuple[bytes, Any]]) -> int:
        reply = self._call(OP_WRITE_BATCH, protocol.encode_pairs(entries))
        return protocol.decode_u64_body(reply)

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        return protocol.decode_pairs(self._call(OP_SCAN, protocol.encode_scan(low, count)))

    def count(self, low: bytes, high: bytes) -> int:
        return protocol.decode_u64_body(self._call(OP_COUNT, protocol.encode_range(low, high)))

    def sync(self) -> None:
        self._call(OP_SYNC)

    def info(self) -> dict[str, Any]:
        return json.loads(self._call(OP_INFO).decode())


class ProcessShard(ShardWorker):
    """A ShardWorker whose engine lives in a spawned child process."""

    def __init__(
        self,
        shard_id: int,
        path: str,
        stats: ServerStats,
        queue_limit: int = 1024,
        engine_config: dict | None = None,
        fs: FileSystem | None = None,
        filter_factory: Callable | None = None,
        max_burst: int = MAX_BURST,
    ) -> None:
        try:
            pickle.dumps((fs, filter_factory))
        except Exception as exc:
            raise ValueError(
                "process shards need picklable fs and filter_factory "
                f"(spawned child must reconstruct them): {exc!r}"
            ) from None
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_shard_child_main,
            args=(child_conn, path, dict(engine_config or {}), fs, filter_factory),
            name=f"shard-proc-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        super().__init__(
            shard_id,
            RemoteEngine(parent_conn, process, fs),
            stats,
            queue_limit=queue_limit,
            max_burst=max_burst,
        )

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until the child opened its engine (raises its startup
        error, e.g. an injected PowerFailure, verbatim)."""
        self.engine.wait_ready(timeout)

    def stop(self) -> None:
        if not self.is_alive() and not self.dead:
            # The worker thread never ran (startup failure before
            # start()): reap the child directly.
            self.stopping = True
            self.engine.close()
            self.closed.set()
            return
        super().stop()
