"""Sharded asyncio TCP front-end over N durable LSM engines.

``KVServer`` hash-shards keys (CRC32 modulo shard count) across
independent :class:`~repro.lsm.engine.LSMTree` engines living under one
root directory (``<root>/shard-00``, ``shard-01``, ...).  The network
side is a single asyncio event loop: each connection's requests are
read sequentially, dispatched as tasks, and answered **in arrival
order**, so clients may pipeline arbitrarily many requests.  Engine
work happens on the per-shard worker threads
(:mod:`repro.server.shard`), which coalesce concurrent GETs into batch
reads and adjacent writes into single group commits.

Ordering guarantees: per connection, per shard — a request observes
every earlier same-connection request routed to the same shard.
Cross-shard requests (SCAN/COUNT/BATCH_GET spanning shards) fan out
concurrently and merge.

Shutdown drains: stop accepting, mark the server closing (new requests
get ``SHUTTING_DOWN``), let every queued request complete, then sync
and close each engine.  A client-acknowledged write therefore always
survives, even through ``python -m repro.server serve`` receiving
SIGTERM mid-load.

Cluster roles (PR 9): a server is a ``primary`` (the default — accepts
writes, optionally streams committed WAL frames to followers via an
attached :class:`~repro.cluster.replicator.PrimaryReplication`) or a
``follower`` (rejects client writes with ``NOT_PRIMARY``, ingests
``REPL_APPLY`` frames, answers ``GET_AT`` reads gated on its per-shard
replication watermark, and flips to primary on ``PROMOTE``).  With
replication attached, a write is only acknowledged once every
configured follower has durably applied it — the gate that makes "no
acked write lost" hold across node failover, not just node restart.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import threading
import time
from struct import error as struct_error
from typing import Any, Callable

from ..cluster.routing import route_key
from ..lsm import LSMTree
from ..lsm.disk_format import FrameError
from ..lsm.fs import FileSystem, join
from ..lsm.wal import iter_records as wal_iter_records
from . import protocol
from .procshard import ProcessShard
from .shard import ShardDown, ShardRequest, ShardWorker, TOMBSTONE
from .stats import ServerStats

#: Cap on one SCAN response, whatever the client asked for.
MAX_SCAN_COUNT = 10_000


class _Overloaded(Exception):
    """Internal: a bounded shard queue refused the request."""


#: Backwards-compatible alias: the shard mapping now lives in
#: :mod:`repro.cluster.routing` so the server, the shard-RPC children,
#: the load generator, and the cluster router can never drift apart.
shard_of = route_key


class KVServer:
    """The serving subsystem: N shards, one event loop, one port."""

    def __init__(
        self,
        path: str,
        n_shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        fs: FileSystem | Callable[[int], FileSystem] | None = None,
        queue_limit: int = 1024,
        filter_factory: Callable | None = None,
        engine_config: dict | None = None,
        shard_mode: str = "thread",
        role: str = "primary",
        replication: Any = None,
        repl_ack_timeout: float = 30.0,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if shard_mode not in ("thread", "process"):
            raise ValueError("shard_mode must be 'thread' or 'process'")
        if role not in ("primary", "follower"):
            raise ValueError("role must be 'primary' or 'follower'")
        if shard_mode == "process" and (role == "follower" or replication is not None):
            # The WAL commit observer and the follower watermark both
            # need in-process engines; node-level processes (one server
            # per node) are the cluster's process isolation instead.
            raise ValueError("replication requires shard_mode='thread'")
        self.path = path
        self.n_shards = n_shards
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.shard_mode = shard_mode
        self._fs = fs
        self._queue_limit = queue_limit
        self._filter_factory = filter_factory
        # Served engines default to the background lifecycle: shard
        # workers keep coalescing writes into one WAL group commit, but
        # flushes and compactions move off the worker thread, so a
        # write's worst case is a bounded stall (counted in STATS) —
        # not an inline multi-level merge.  Tests that need the
        # deterministic inline pipeline pass ``background=False``.
        self._engine_config = dict(engine_config or {})
        self._engine_config.setdefault("background", True)
        self.stats = ServerStats()
        self.shards: list[ShardWorker] = []
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._shutdown_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

        #: Cluster role; flipped follower -> primary by PROMOTE.
        self.role = role
        self._replication = replication
        self._repl_ack_timeout = repl_ack_timeout
        #: Follower ingest watermarks, per shard.  ``dispatched`` is the
        #: highest primary sequence accepted into the shard's queue
        #: (advanced on the event loop thread, so REPL_APPLY frames on
        #: one connection dedup/gap-check in arrival order);
        #: ``applied`` is the highest durably applied one (advanced by
        #: the ack formatter once the shard's group commit returns).
        #: ``dispatched`` is deliberately never rewound — resending a
        #: queued-but-unconfirmed record would double-apply it.
        self._repl_dispatched = [0] * n_shards
        self._repl_applied = [0] * n_shards
        #: A failed apply poisons the shard (sequence alignment with the
        #: primary is lost); only a resync could recover it.
        self._repl_failed: list[str | None] = [None] * n_shards

    def _fs_for(self, shard_id: int) -> FileSystem | None:
        if callable(self._fs) and not isinstance(self._fs, FileSystem):
            return self._fs(shard_id)
        return self._fs

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "KVServer":
        """Open (recovering) every shard engine, start the workers, bind."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        try:
            if self.shard_mode == "process":
                # Launch every child first (spawn + engine recovery run
                # concurrently across shards), then wait for each.
                for i in range(self.n_shards):
                    self.shards.append(
                        ProcessShard(
                            i,
                            join(self.path, f"shard-{i:02d}"),
                            self.stats,
                            queue_limit=self._queue_limit,
                            engine_config=self._engine_config,
                            fs=self._fs_for(i),
                            filter_factory=self._filter_factory,
                        )
                    )
                for worker in self.shards:
                    worker.wait_ready()
                for worker in self.shards:
                    worker.start()
            else:
                for i in range(self.n_shards):
                    observer = (
                        self._replication.observer_for(i)
                        if self._replication is not None
                        else None
                    )
                    engine = LSMTree.open(
                        join(self.path, f"shard-{i:02d}"),
                        fs=self._fs_for(i),
                        filter_factory=self._filter_factory,
                        wal_observer=observer,
                        **self._engine_config,
                    )
                    worker = ShardWorker(
                        i, engine, self.stats, queue_limit=self._queue_limit
                    )
                    worker.start()
                    self.shards.append(worker)
                if self.role == "follower":
                    # A restarted follower resumes where its recovered
                    # engines stand: every sequence <= last_seq was
                    # durably applied before the restart.
                    for i, worker in enumerate(self.shards):
                        seq = worker.engine.last_seq
                        self._repl_dispatched[i] = seq
                        self._repl_applied[i] = seq
                if self._replication is not None:
                    self._replication.bind(self)
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except BaseException:
            await self._stop_workers()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (or the SHUTDOWN opcode),
        then drain gracefully."""
        assert self._shutdown_requested is not None, "call start() first"
        await self._shutdown_requested.wait()
        # Give in-flight response writes one tick to flush before the
        # listener goes away (the SHUTDOWN OK must reach its client).
        await asyncio.sleep(0.05)
        await self.shutdown()

    def request_shutdown(self) -> None:
        self._closing = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish queued work, sync and
        close every engine.  Idempotent."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._stop_workers()
        if self._replication is not None:
            # Workers are stopped, so the logs are final; ship whatever
            # is still queued before cutting the follower links.
            repl = self._replication
            await asyncio.get_running_loop().run_in_executor(
                None, repl.drain_and_stop
            )

    async def _stop_workers(self) -> None:
        workers, self.shards = self.shards, []
        for worker in workers:
            worker.stop()

        def _join() -> None:
            for worker in workers:
                if worker.is_alive():
                    worker.join(timeout=60)

        if workers:
            await asyncio.get_running_loop().run_in_executor(None, _join)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.record_connection(opened=True)
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_responses(responses, writer))
        # Bulk-read + buffer parse: a pipelined client packs whole
        # trains of requests into each TCP segment, so one read() wakes
        # us for many frames — dispatching them all in one pass is a
        # large win over two readexactly() awaits per request.
        buf = bytearray()
        try:
            while True:
                try:
                    data = await reader.read(1 << 16)
                except (ConnectionResetError, OSError):
                    break
                if not data:
                    break
                buf += data
                off = 0
                try:
                    while len(buf) - off >= 4:
                        length = protocol.parse_length(bytes(buf[off : off + 4]))
                        if len(buf) - off - 4 < length:
                            break
                        request_id, opcode, body = protocol.parse_payload(
                            bytes(buf[off + 4 : off + 4 + length])
                        )
                        off += 4 + length
                        responses.put_nowait(
                            self._dispatch(request_id, opcode, body)
                        )
                except protocol.ProtocolError:
                    break  # unframeable stream: drop the connection
                if off:
                    del buf[:off]
        finally:
            responses.put_nowait(None)
            try:
                await writer_task
            except Exception:
                pass
            self._drain_queue(responses)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self.stats.record_connection(opened=False)

    @staticmethod
    def _drain_queue(responses: asyncio.Queue) -> None:
        """Close formatter coroutines the writer never reached."""
        while True:
            try:
                item = responses.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not None and not isinstance(item, (bytes, bytearray)):
                item.close()

    async def _write_responses(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write responses in request-arrival order.  Items are either
        finished frames (bytes) or formatter coroutines awaiting shard
        futures — the shard work itself was already submitted by the
        reader, so awaiting here never delays later requests' engine
        work, only their response bytes (which must queue anyway)."""
        while True:
            item = await responses.get()
            if item is None:
                return
            if not isinstance(item, (bytes, bytearray)):
                item = await item
            writer.write(item)
            if responses.empty():
                await writer.drain()

    # -- request dispatch --------------------------------------------------
    #
    # The reader thread of control decodes each request and performs
    # every shard submit *inline*, so per-connection arrival order is
    # exactly per-shard queue order — no per-request Task, no reordering
    # window.  What goes on the response queue is either final bytes or
    # a small coroutine that formats the shard's answer.

    def _dispatch(self, request_id: int, opcode: int, body: bytes):
        started = time.perf_counter()
        op_name = protocol.OP_NAMES.get(opcode, f"op{opcode}")
        try:
            if self._closing and opcode != protocol.STATS:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.SHUTTING_DOWN, b"server is draining",
                )

            if opcode == protocol.GET:
                key = protocol.decode_key(body)
                fut = self._submit(
                    self.shards[shard_of(key, self.n_shards)], "get", [key]
                )
                return self._finish(request_id, op_name, started, self._fmt_get(fut))

            if opcode == protocol.PUT:
                key, value = protocol.decode_key_value(body)
                if value is TOMBSTONE:
                    raise protocol.ProtocolError("cannot PUT a tombstone")
                if self.role != "primary":
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.NOT_PRIMARY, b"writes go to the primary",
                    )
                shard_id = shard_of(key, self.n_shards)
                fut = self._submit(self.shards[shard_id], "write", [(key, value)])
                return self._finish(
                    request_id, op_name, started, self._fmt_ack(shard_id, fut)
                )

            if opcode == protocol.DELETE:
                key = protocol.decode_key(body)
                if self.role != "primary":
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.NOT_PRIMARY, b"writes go to the primary",
                    )
                shard_id = shard_of(key, self.n_shards)
                fut = self._submit(
                    self.shards[shard_id], "write", [(key, TOMBSTONE)]
                )
                return self._finish(
                    request_id, op_name, started, self._fmt_ack(shard_id, fut)
                )

            if opcode == protocol.BATCH_GET:
                keys = protocol.decode_keys(body)
                by_shard: dict[int, list[int]] = {}
                for i, key in enumerate(keys):
                    by_shard.setdefault(shard_of(key, self.n_shards), []).append(i)
                futs = [
                    (idxs, self._submit(self.shards[sid], "get",
                                        [keys[i] for i in idxs]))
                    for sid, idxs in by_shard.items()
                ]
                return self._finish(
                    request_id, op_name, started,
                    self._fmt_batch_get(len(keys), futs),
                )

            if opcode == protocol.SCAN:
                low, count = protocol.decode_scan(body)
                count = min(count, MAX_SCAN_COUNT)
                futs = [self._submit(s, "scan", (low, count)) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_scan(count, futs)
                )

            if opcode == protocol.COUNT:
                low, high = protocol.decode_range(body)
                futs = [self._submit(s, "count", (low, high)) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_count(futs)
                )

            if opcode == protocol.SYNC:
                futs = [self._submit(s, "sync", None) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_sync(futs)
                )

            if opcode == protocol.STATS:
                if not self.shards:
                    snapshot = self.stats.snapshot(None)
                    snapshot["n_shards"] = self.n_shards
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.OK, json.dumps(snapshot).encode(),
                    )
                # Engine detail is collected via each worker's "info"
                # op (on the worker thread / over the shard-RPC pipe);
                # dead or draining shards answer with liveness only.
                futs = []
                for shard in self.shards:
                    fut = None
                    if not (shard.dead or shard.stopping or shard.closed.is_set()):
                        try:
                            fut = self._submit(shard, "info", None)
                        except (_Overloaded, ShardDown):
                            fut = None
                    futs.append((shard, fut))
                return self._finish(
                    request_id, op_name, started, self._fmt_stats(futs)
                )

            if opcode == protocol.SHUTDOWN:
                self.request_shutdown()
                return self._immediate(
                    request_id, op_name, started, protocol.OK, b""
                )

            if opcode == protocol.REPL_APPLY:
                return self._dispatch_repl_apply(request_id, op_name, started, body)

            if opcode == protocol.WATERMARK:
                marks = list(zip(self._repl_dispatched, self._repl_applied))
                return self._immediate(
                    request_id, op_name, started,
                    protocol.OK, protocol.encode_watermarks(marks),
                )

            if opcode == protocol.GET_AT:
                key, min_seq = protocol.decode_get_at(body)
                shard_id = shard_of(key, self.n_shards)
                if (
                    self.role != "primary"
                    and self._repl_applied[shard_id] < min_seq
                ):
                    # The replication stream has not caught up to the
                    # client's causal token yet; the client falls back
                    # to the primary (or retries) instead of reading a
                    # stale snapshot.  A primary always serves: it only
                    # hands out tokens for writes it already applied.
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.LAGGING,
                        b"follower applied %d < %d" %
                        (self._repl_applied[shard_id], min_seq),
                    )
                fut = self._submit(self.shards[shard_id], "get", [key])
                return self._finish(request_id, op_name, started, self._fmt_get(fut))

            if opcode == protocol.PROMOTE:
                if self.role == "primary":
                    return self._immediate(
                        request_id, op_name, started, protocol.OK, b""
                    )
                # Sync barrier: the per-shard queues are FIFO, so once
                # these complete every REPL_APPLY accepted before the
                # promotion is durably applied — the new primary starts
                # from its full watermark, and late frames from the old
                # primary get BAD_REQUEST instead of silently diverging.
                futs = [self._submit(s, "sync", None) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_promote(futs)
                )

            raise protocol.ProtocolError(f"unknown opcode {opcode}")
        except _Overloaded:
            self.stats.record_overload()
            return self._immediate(
                request_id, op_name, started,
                protocol.OVERLOADED, b"shard queue full",
            )
        except ShardDown as exc:
            # A dead worker must answer, not hang: the client gets an
            # immediate error instead of a request nobody will drain.
            self.stats.record_error()
            return self._immediate(
                request_id, op_name, started, protocol.ERROR, str(exc).encode()
            )
        except (
            protocol.ProtocolError, FrameError, KeyError, IndexError, struct_error,
        ) as exc:
            # FrameError covers the storage codecs the bodies reuse: a
            # garbage body must cost the peer one BAD_REQUEST, not the
            # whole connection.
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, str(exc).encode(),
            )

    def _dispatch_repl_apply(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        """Ingest one batch of primary WAL frames for one shard.

        Runs on the event loop thread, so per-connection arrival order
        is exactly dedup/gap-check order: the primary's single sender
        connection can never race its own stream.
        """
        if self.role != "follower":
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"not a follower",
            )
        shard_id, frames = protocol.decode_repl_apply(body)
        if not 0 <= shard_id < self.n_shards:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"bad shard id",
            )
        if self._repl_failed[shard_id] is not None:
            return self._immediate(
                request_id, op_name, started,
                protocol.ERROR, self._repl_failed[shard_id].encode(),
            )
        try:
            records = list(
                wal_iter_records(
                    frames, source=f"repl shard {shard_id}", strict=True
                )
            )
        except FrameError as exc:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, str(exc).encode(),
            )
        dispatched = self._repl_dispatched[shard_id]
        fresh = [(seq, key, value) for seq, key, value in records if seq > dispatched]
        if not fresh:
            # Pure resend (the primary reconnected and replayed from an
            # older watermark): confirm the durable position.
            return self._immediate(
                request_id, op_name, started,
                protocol.OK,
                protocol.encode_u64_body(self._repl_applied[shard_id]),
            )
        expect = dispatched
        for seq, _, _ in fresh:
            expect += 1
            if seq != expect:
                # A hole in the stream would silently fork this shard
                # from the primary; poison it instead.
                self._repl_failed[shard_id] = (
                    f"replication gap: expected seq {expect}, got {seq}"
                )
                return self._immediate(
                    request_id, op_name, started,
                    protocol.ERROR, self._repl_failed[shard_id].encode(),
                )
        self._repl_dispatched[shard_id] = expect
        fut = self._submit(
            self.shards[shard_id],
            "write", [(key, value) for _, key, value in fresh],
        )
        return self._finish(
            request_id, op_name, started,
            self._fmt_repl_ack(shard_id, expect, fut),
        )

    async def _fmt_repl_ack(
        self, shard_id: int, expect: int, fut: asyncio.Future
    ) -> tuple[int, bytes]:
        try:
            seq = await fut
            # The shard worker may coalesce several REPL_APPLY batches
            # into one group commit and complete each with the *run's*
            # final sequence, so >= expect is normal; < expect means the
            # follower's own sequence counter diverged from the stream.
            if isinstance(seq, int) and seq < expect:
                raise RuntimeError(
                    f"follower shard {shard_id} applied through seq {seq}, "
                    f"primary stream says {expect}"
                )
        except Exception as exc:
            self._repl_failed[shard_id] = f"apply failed: {exc!r}"
            raise
        # write_batch returned, so the batch rode a WAL group commit:
        # "applied" is a *durable* watermark, which is what lets the
        # primary ack its clients off our confirmations.
        self._repl_applied[shard_id] = max(self._repl_applied[shard_id], expect)
        return protocol.OK, protocol.encode_u64_body(expect)

    async def _fmt_promote(self, futs: list[asyncio.Future]) -> tuple[int, bytes]:
        await asyncio.gather(*futs)
        self.role = "primary"
        return protocol.OK, b""

    def _immediate(
        self, request_id: int, op_name: str, started: float,
        status: int, body: bytes,
    ) -> bytes:
        self.stats.record_op(op_name, time.perf_counter() - started)
        return protocol.frame(request_id, status, body)

    async def _finish(
        self, request_id: int, op_name: str, started: float, formatter
    ) -> bytes:
        try:
            status, body = await formatter
        except Exception as exc:
            self.stats.record_error()
            status, body = protocol.ERROR, str(exc).encode()
        self.stats.record_op(op_name, time.perf_counter() - started)
        return protocol.frame(request_id, status, body)

    # -- shard fan-out ------------------------------------------------------

    def _submit(self, shard: ShardWorker, op: str, args: Any) -> asyncio.Future:
        loop = self._loop
        future = loop.create_future()
        if not shard.submit(ShardRequest(op, args, future, loop)):
            raise _Overloaded()
        return future

    @staticmethod
    async def _fmt_get(fut: asyncio.Future) -> tuple[int, bytes]:
        values = await fut
        if values[0] is None:
            return protocol.NOT_FOUND, b""
        return protocol.OK, protocol.encode_value_body(values[0])

    async def _fmt_ack(self, shard_id: int, fut: asyncio.Future) -> tuple[int, bytes]:
        seq = await fut
        if not isinstance(seq, int):
            return protocol.OK, b""  # non-durable engine: no token
        repl = self._replication
        if repl is not None:
            # Synchronous replication gate: the local group commit made
            # the write durable *here*; the ack waits until every
            # configured follower confirms it durable *there*, so a
            # client-visible OK survives the loss of this whole node.
            await asyncio.wait_for(
                repl.wait_durable(shard_id, seq), self._repl_ack_timeout
            )
        return protocol.OK, protocol.encode_u64_body(seq)

    @staticmethod
    async def _fmt_batch_get(n_keys, futs) -> tuple[int, bytes]:
        out: list[Any] = [None] * n_keys
        for idxs, fut in futs:
            values = await fut
            for i, value in zip(idxs, values):
                out[i] = value
        return protocol.OK, protocol.encode_maybe_values(out, missing=None)

    @staticmethod
    async def _fmt_scan(count, futs) -> tuple[int, bytes]:
        """Merge per-shard scans by key (shards are disjoint by hash,
        so the heap merge needs no newest-wins logic)."""
        per_shard = await asyncio.gather(*futs)
        merged = heapq.merge(*per_shard, key=lambda kv: kv[0])
        out = []
        for pair in merged:
            out.append(pair)
            if len(out) >= count:
                break
        return protocol.OK, protocol.encode_pairs(out)

    @staticmethod
    async def _fmt_count(futs) -> tuple[int, bytes]:
        counts = await asyncio.gather(*futs)
        return protocol.OK, protocol.encode_u64_body(sum(counts))

    @staticmethod
    async def _fmt_sync(futs) -> tuple[int, bytes]:
        await asyncio.gather(*futs)
        return protocol.OK, b""

    async def _fmt_stats(self, futs) -> tuple[int, bytes]:
        per_shard = []
        for shard, fut in futs:
            info = None
            if fut is not None:
                try:
                    info = await fut
                except Exception:
                    info = None  # worker died/drained mid-request
            per_shard.append(info if info is not None else shard.snapshot_info())
        snapshot = self.stats.snapshot(per_shard)
        snapshot["n_shards"] = self.n_shards
        return protocol.OK, json.dumps(snapshot).encode()


class ServerThread:
    """Run a :class:`KVServer` on a private event loop in a daemon
    thread — the bridge that lets synchronous harnesses (tests, the
    differential fuzzer, the sync client benchmarks) drive the asyncio
    server in-process."""

    def __init__(self, server: KVServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="kv-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            self._thread.join(timeout=10)
            raise self._startup_error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
        finally:
            self._ready.set()
            try:
                loop.close()
            except Exception:
                pass

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain from the calling thread; idempotent."""
        loop, thread = self._loop, self._thread
        if thread is None or loop is None or not thread.is_alive():
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), loop
            ).result(timeout=timeout)
        except Exception:
            pass
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=timeout)
