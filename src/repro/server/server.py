"""Sharded asyncio TCP front-end over N durable LSM engines.

``KVServer`` hash-shards keys (CRC32 modulo shard count) across
independent :class:`~repro.lsm.engine.LSMTree` engines living under one
root directory (``<root>/shard-00``, ``shard-01``, ...).  The network
side is a single asyncio event loop: each connection's requests are
read sequentially, dispatched as tasks, and answered **in arrival
order**, so clients may pipeline arbitrarily many requests.  Engine
work happens on the per-shard worker threads
(:mod:`repro.server.shard`), which coalesce concurrent GETs into batch
reads and adjacent writes into single group commits.

Ordering guarantees: per connection, per shard — a request observes
every earlier same-connection request routed to the same shard.
Cross-shard requests (SCAN/COUNT/BATCH_GET spanning shards) fan out
concurrently and merge.

Shutdown drains: stop accepting, mark the server closing (new requests
get ``SHUTTING_DOWN``), let every queued request complete, then sync
and close each engine.  A client-acknowledged write therefore always
survives, even through ``python -m repro.server serve`` receiving
SIGTERM mid-load.

Cluster roles (PR 9): a server is a ``primary`` (accepts writes,
optionally streams committed WAL frames to followers via an attached
:class:`~repro.cluster.replicator.PrimaryReplication`) or a
``follower`` (rejects client writes with ``NOT_PRIMARY``, ingests
``REPL_APPLY`` frames, answers ``GET_AT`` reads gated on its per-shard
replication watermark, and flips to primary on ``PROMOTE``).  With
replication attached, a write is only acknowledged once every voting
follower has durably applied it — the gate that makes "no acked write
lost" hold across node failover, not just node restart.

Membership (PR 10): shard ids live in a *global* space — a node hosts
any subset (``shard_ids``), and ``self.shards`` maps shard id →
worker.  Each hosted shard carries a serving state:

* ``serving`` — normal; reads and (on a primary) writes.
* ``sealed``  — mid-migration handoff: reads still served, writes get
  ``NOT_OWNER`` with a forward hint to the receiving group.
* ``ingest``  — arriving via migration: invisible to clients until
  ``MIGRATE_COMMIT``; ``REPL_APPLY`` bypasses role/term checks here so
  the source group can stream the catch-up delta.
* ``installing`` — a snapshot resync is swapping the engine.

Requests for a shard this node does not serve answer ``NOT_OWNER``
(body = forward-group hint when one is known); clients re-route and
retry.  An election *term* (in-memory, monotonic) fences deposed
primaries: ``REPL_APPLY``/``LEASE`` carrying an older term get
``FENCED``.  Terms need no persistence — a restarted node starts at 0
and adopts the group's term from the first message it sees, and can
never outrank a live primary.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import threading
import time
from struct import error as struct_error
from typing import Any, Callable, Sequence

from ..cluster import membership
from ..cluster.routing import route_key
from ..lsm import LSMTree
from ..lsm.disk_format import FrameError
from ..lsm.fs import FileSystem, OsFileSystem, join
from ..lsm.wal import iter_records as wal_iter_records
from . import protocol
from .procshard import ProcessShard
from .shard import ShardDown, ShardRequest, ShardWorker, TOMBSTONE
from .stats import ServerStats

#: Cap on one SCAN response, whatever the client asked for.
MAX_SCAN_COUNT = 10_000


class _Overloaded(Exception):
    """Internal: a bounded shard queue refused the request."""


class _NotOwner(Exception):
    """Internal: the request targets a shard this node does not serve;
    ``hint`` names the owning group when known."""

    def __init__(self, hint: str = "") -> None:
        super().__init__(hint)
        self.hint = hint


#: Backwards-compatible alias: the shard mapping now lives in
#: :mod:`repro.cluster.routing` so the server, the shard-RPC children,
#: the load generator, and the cluster router can never drift apart.
shard_of = route_key


class KVServer:
    """The serving subsystem: hosted shards, one event loop, one port."""

    def __init__(
        self,
        path: str,
        n_shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        fs: FileSystem | Callable[[int], FileSystem] | None = None,
        queue_limit: int = 1024,
        filter_factory: Callable | None = None,
        engine_config: dict | None = None,
        shard_mode: str = "thread",
        role: str = "primary",
        replication: Any = None,
        repl_ack_timeout: float = 30.0,
        shard_ids: Sequence[int] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if shard_mode not in ("thread", "process"):
            raise ValueError("shard_mode must be 'thread' or 'process'")
        if role not in ("primary", "follower"):
            raise ValueError("role must be 'primary' or 'follower'")
        if shard_mode == "process" and (role == "follower" or replication is not None):
            # The WAL commit observer and the follower watermark both
            # need in-process engines; node-level processes (one server
            # per node) are the cluster's process isolation instead.
            raise ValueError("replication requires shard_mode='thread'")
        self.path = path
        #: Size of the *global* shard space (cluster-wide routing).
        self.n_shards = n_shards
        #: The subset of the global space this node hosts.
        if shard_ids is None:
            self.shard_ids = list(range(n_shards))
        else:
            self.shard_ids = sorted(set(shard_ids))
            for shard_id in self.shard_ids:
                if not 0 <= shard_id < n_shards:
                    raise ValueError(
                        f"shard id {shard_id} outside global space [0, {n_shards})"
                    )
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.shard_mode = shard_mode
        self._fs = fs
        self._queue_limit = queue_limit
        self._filter_factory = filter_factory
        # Served engines default to the background lifecycle: shard
        # workers keep coalescing writes into one WAL group commit, but
        # flushes and compactions move off the worker thread, so a
        # write's worst case is a bounded stall (counted in STATS) —
        # not an inline multi-level merge.  Tests that need the
        # deterministic inline pipeline pass ``background=False``.
        self._engine_config = dict(engine_config or {})
        self._engine_config.setdefault("background", True)
        self.stats = ServerStats()
        self.shards: dict[int, Any] = {}
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._shutdown_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

        #: Cluster role; flipped follower -> primary by PROMOTE.
        self.role = role
        #: Election term (in-memory; see the module docstring).
        self.term = 0
        #: monotonic deadline of the last granted lease (follower side).
        self.lease_deadline: float | None = None
        self._replication = replication
        self._repl_ack_timeout = repl_ack_timeout
        #: Per hosted shard: "serving" | "sealed" | "ingest" |
        #: "installing" | "detached" | "failed".
        self._shard_state: dict[int, str] = {s: "serving" for s in self.shard_ids}
        #: Forward hints for shards that moved away: shard -> group.
        self._shard_forward: dict[int, str] = {}
        #: In-flight snapshot staging, one per shard (see SNAP_*).
        self._snap_staging: dict[int, dict[str, Any]] = {}
        #: Shards with an outbound migration in flight.
        self._migrating: set[int] = set()
        #: Follower ingest watermarks, per hosted shard.  ``dispatched``
        #: is the highest primary sequence accepted into the shard's
        #: queue (advanced on the event loop thread, so REPL_APPLY
        #: frames on one connection dedup/gap-check in arrival order);
        #: ``applied`` is the highest durably applied one (advanced by
        #: the ack formatter once the shard's group commit returns).
        #: ``dispatched`` is deliberately never rewound — resending a
        #: queued-but-unconfirmed record would double-apply it.
        self._repl_dispatched: dict[int, int] = {s: 0 for s in self.shard_ids}
        self._repl_applied: dict[int, int] = {s: 0 for s in self.shard_ids}
        #: A failed apply poisons the shard (sequence alignment with the
        #: primary is lost); only a snapshot resync recovers it.
        self._repl_failed: dict[int, str | None] = {s: None for s in self.shard_ids}

    def _fs_for(self, shard_id: int) -> FileSystem | None:
        if callable(self._fs) and not isinstance(self._fs, FileSystem):
            return self._fs(shard_id)
        return self._fs

    def _shard_root(self, shard_id: int) -> str:
        return join(self.path, f"shard-{shard_id:02d}")

    # -- cluster helpers (used by the lease manager / replication) ----------

    def demote(self) -> None:
        """Stand down as primary (a peer fenced our term)."""
        self.role = "follower"

    def extend_lease(self, ttl: float) -> None:
        self.lease_deadline = time.monotonic() + ttl

    def applied_total(self) -> int:
        """Sum of durably applied sequences across hosted shards — the
        election's catch-up metric."""
        return sum(self._repl_applied.get(s, 0) for s in self.shards)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "KVServer":
        """Open (recovering) every hosted shard engine, start the
        workers, bind."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        try:
            if self.shard_mode == "process":
                # Launch every child first (spawn + engine recovery run
                # concurrently across shards), then wait for each.
                for i in self.shard_ids:
                    self.shards[i] = ProcessShard(
                        i,
                        self._shard_root(i),
                        self.stats,
                        queue_limit=self._queue_limit,
                        engine_config=self._engine_config,
                        fs=self._fs_for(i),
                        filter_factory=self._filter_factory,
                    )
                for worker in self.shards.values():
                    worker.wait_ready()
                for worker in self.shards.values():
                    worker.start()
            else:
                for i in self.shard_ids:
                    observer = (
                        self._replication.observer_for(i)
                        if self._replication is not None
                        else None
                    )
                    engine = LSMTree.open(
                        self._shard_root(i),
                        fs=self._fs_for(i),
                        filter_factory=self._filter_factory,
                        wal_observer=observer,
                        **self._engine_config,
                    )
                    worker = ShardWorker(
                        i, engine, self.stats, queue_limit=self._queue_limit
                    )
                    worker.start()
                    self.shards[i] = worker
                if self.role == "follower":
                    # A restarted follower resumes where its recovered
                    # engines stand: every sequence <= last_seq was
                    # durably applied before the restart.
                    for i, worker in self.shards.items():
                        seq = worker.engine.last_seq
                        self._repl_dispatched[i] = seq
                        self._repl_applied[i] = seq
                if self._replication is not None:
                    self._replication.bind(self)
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except BaseException:
            await self._stop_workers()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (or the SHUTDOWN opcode),
        then drain gracefully."""
        assert self._shutdown_requested is not None, "call start() first"
        await self._shutdown_requested.wait()
        # Give in-flight response writes one tick to flush before the
        # listener goes away (the SHUTDOWN OK must reach its client).
        await asyncio.sleep(0.05)
        await self.shutdown()

    def request_shutdown(self) -> None:
        self._closing = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish queued work, sync and
        close every engine.  Idempotent."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._stop_workers()
        if self._replication is not None:
            # Workers are stopped, so the logs are final; ship whatever
            # is still queued before cutting the follower links.
            repl = self._replication
            await asyncio.get_running_loop().run_in_executor(
                None, repl.drain_and_stop
            )

    async def _stop_workers(self) -> None:
        workers, self.shards = list(self.shards.values()), {}
        for worker in workers:
            worker.stop()

        def _join() -> None:
            for worker in workers:
                if worker.is_alive():
                    worker.join(timeout=60)

        if workers:
            await asyncio.get_running_loop().run_in_executor(None, _join)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.record_connection(opened=True)
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_responses(responses, writer))
        # Bulk-read + buffer parse: a pipelined client packs whole
        # trains of requests into each TCP segment, so one read() wakes
        # us for many frames — dispatching them all in one pass is a
        # large win over two readexactly() awaits per request.
        buf = bytearray()
        try:
            while True:
                try:
                    data = await reader.read(1 << 16)
                except (ConnectionResetError, OSError):
                    break
                if not data:
                    break
                buf += data
                off = 0
                try:
                    while len(buf) - off >= 4:
                        length = protocol.parse_length(bytes(buf[off : off + 4]))
                        if len(buf) - off - 4 < length:
                            break
                        request_id, opcode, body = protocol.parse_payload(
                            bytes(buf[off + 4 : off + 4 + length])
                        )
                        off += 4 + length
                        responses.put_nowait(
                            self._dispatch(request_id, opcode, body)
                        )
                except protocol.ProtocolError:
                    break  # unframeable stream: drop the connection
                if off:
                    del buf[:off]
        finally:
            responses.put_nowait(None)
            try:
                await writer_task
            except Exception:
                pass
            self._drain_queue(responses)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self.stats.record_connection(opened=False)

    @staticmethod
    def _drain_queue(responses: asyncio.Queue) -> None:
        """Close formatter coroutines the writer never reached."""
        while True:
            try:
                item = responses.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not None and not isinstance(item, (bytes, bytearray)):
                item.close()

    async def _write_responses(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write responses in request-arrival order.  Items are either
        finished frames (bytes) or formatter coroutines awaiting shard
        futures — the shard work itself was already submitted by the
        reader, so awaiting here never delays later requests' engine
        work, only their response bytes (which must queue anyway)."""
        while True:
            item = await responses.get()
            if item is None:
                return
            if not isinstance(item, (bytes, bytearray)):
                item = await item
            writer.write(item)
            if responses.empty():
                await writer.drain()

    # -- shard routing ------------------------------------------------------

    def _route(self, shard_id: int, write: bool):
        """The worker serving ``shard_id`` here, or :class:`_NotOwner`
        (with a forward hint when the shard is known to have moved)."""
        state = self._shard_state.get(shard_id)
        if state == "serving" or (state == "sealed" and not write):
            worker = self.shards.get(shard_id)
            if worker is not None:
                return worker
        raise _NotOwner(self._shard_forward.get(shard_id, ""))

    def _readable_workers(self) -> list[Any]:
        """Workers backing client-visible data (serving + sealed);
        ingest/installing shards are invisible until committed."""
        return [
            self.shards[s]
            for s in sorted(self.shards)
            if self._shard_state.get(s) in ("serving", "sealed")
        ]

    # -- request dispatch --------------------------------------------------
    #
    # The reader thread of control decodes each request and performs
    # every shard submit *inline*, so per-connection arrival order is
    # exactly per-shard queue order — no per-request Task, no reordering
    # window.  What goes on the response queue is either final bytes or
    # a small coroutine that formats the shard's answer.

    def _dispatch(self, request_id: int, opcode: int, body: bytes):
        started = time.perf_counter()
        op_name = protocol.OP_NAMES.get(opcode, f"op{opcode}")
        try:
            if self._closing and opcode != protocol.STATS:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.SHUTTING_DOWN, b"server is draining",
                )

            if opcode == protocol.GET:
                key = protocol.decode_key(body)
                worker = self._route(shard_of(key, self.n_shards), write=False)
                fut = self._submit(worker, "get", [key])
                return self._finish(request_id, op_name, started, self._fmt_get(fut))

            if opcode == protocol.PUT:
                key, value = protocol.decode_key_value(body)
                if value is TOMBSTONE:
                    raise protocol.ProtocolError("cannot PUT a tombstone")
                if self.role != "primary":
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.NOT_PRIMARY, b"writes go to the primary",
                    )
                shard_id = shard_of(key, self.n_shards)
                worker = self._route(shard_id, write=True)
                fut = self._submit(worker, "write", [(key, value)])
                return self._finish(
                    request_id, op_name, started, self._fmt_ack(shard_id, fut)
                )

            if opcode == protocol.DELETE:
                key = protocol.decode_key(body)
                if self.role != "primary":
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.NOT_PRIMARY, b"writes go to the primary",
                    )
                shard_id = shard_of(key, self.n_shards)
                worker = self._route(shard_id, write=True)
                fut = self._submit(worker, "write", [(key, TOMBSTONE)])
                return self._finish(
                    request_id, op_name, started, self._fmt_ack(shard_id, fut)
                )

            if opcode == protocol.BATCH_GET:
                keys = protocol.decode_keys(body)
                by_shard: dict[int, list[int]] = {}
                for i, key in enumerate(keys):
                    by_shard.setdefault(shard_of(key, self.n_shards), []).append(i)
                futs = []
                for sid, idxs in by_shard.items():
                    worker = self._route(sid, write=False)
                    futs.append(
                        (idxs, self._submit(worker, "get", [keys[i] for i in idxs]))
                    )
                return self._finish(
                    request_id, op_name, started,
                    self._fmt_batch_get(len(keys), futs),
                )

            if opcode == protocol.SCAN:
                low, count = protocol.decode_scan(body)
                count = min(count, MAX_SCAN_COUNT)
                futs = [
                    self._submit(s, "scan", (low, count))
                    for s in self._readable_workers()
                ]
                return self._finish(
                    request_id, op_name, started, self._fmt_scan(count, futs)
                )

            if opcode == protocol.COUNT:
                low, high = protocol.decode_range(body)
                futs = [
                    self._submit(s, "count", (low, high))
                    for s in self._readable_workers()
                ]
                return self._finish(
                    request_id, op_name, started, self._fmt_count(futs)
                )

            if opcode == protocol.SYNC:
                futs = [
                    self._submit(self.shards[s], "sync", None)
                    for s in sorted(self.shards)
                ]
                return self._finish(
                    request_id, op_name, started, self._fmt_sync(futs)
                )

            if opcode == protocol.STATS:
                if not self.shards:
                    snapshot = self.stats.snapshot(None)
                    self._extend_stats(snapshot)
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.OK, json.dumps(snapshot).encode(),
                    )
                # Engine detail is collected via each worker's "info"
                # op (on the worker thread / over the shard-RPC pipe);
                # dead or draining shards answer with liveness only.
                futs = []
                for sid in sorted(self.shards):
                    shard = self.shards[sid]
                    fut = None
                    if not (shard.dead or shard.stopping or shard.closed.is_set()):
                        try:
                            fut = self._submit(shard, "info", None)
                        except (_Overloaded, ShardDown):
                            fut = None
                    futs.append((shard, fut))
                return self._finish(
                    request_id, op_name, started, self._fmt_stats(futs)
                )

            if opcode == protocol.SHUTDOWN:
                self.request_shutdown()
                return self._immediate(
                    request_id, op_name, started, protocol.OK, b""
                )

            if opcode == protocol.REPL_APPLY:
                return self._dispatch_repl_apply(request_id, op_name, started, body)

            if opcode == protocol.WATERMARK:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.OK,
                    protocol.encode_watermarks(
                        self.role == "primary", self.term, self._watermarks()
                    ),
                )

            if opcode == protocol.GET_AT:
                key, min_seq = protocol.decode_get_at(body)
                shard_id = shard_of(key, self.n_shards)
                try:
                    worker = self._route(shard_id, write=False)
                except _NotOwner:
                    if self.role != "primary":
                        # A follower mid-resync/migration answers like a
                        # lagging one: the client falls back to the
                        # primary instead of failing the read.
                        return self._immediate(
                            request_id, op_name, started,
                            protocol.LAGGING, b"shard not readable here",
                        )
                    raise
                if (
                    self.role != "primary"
                    and self._repl_applied.get(shard_id, 0) < min_seq
                ):
                    # The replication stream has not caught up to the
                    # client's causal token yet; the client falls back
                    # to the primary (or retries) instead of reading a
                    # stale snapshot.  A primary always serves: it only
                    # hands out tokens for writes it already applied.
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.LAGGING,
                        b"follower applied %d < %d" %
                        (self._repl_applied.get(shard_id, 0), min_seq),
                    )
                fut = self._submit(worker, "get", [key])
                return self._finish(request_id, op_name, started, self._fmt_get(fut))

            if opcode == protocol.PROMOTE:
                new_term = protocol.decode_promote(body)
                if self.role == "primary":
                    if new_term is not None and new_term > self.term:
                        self.term = new_term
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.OK, protocol.encode_u64_body(self.term),
                    )
                # Sync barrier: the per-shard queues are FIFO, so once
                # these complete every REPL_APPLY accepted before the
                # promotion is durably applied — the new primary starts
                # from its full watermark, and late frames from the old
                # primary get BAD_REQUEST instead of silently diverging.
                futs = [
                    self._submit(self.shards[s], "sync", None)
                    for s in sorted(self.shards)
                ]
                return self._finish(
                    request_id, op_name, started, self._fmt_promote(futs, new_term)
                )

            if opcode == protocol.LEASE:
                return self._dispatch_lease(request_id, op_name, started, body)

            if opcode == protocol.SNAP_BEGIN:
                return self._dispatch_snap_begin(request_id, op_name, started, body)

            if opcode == protocol.SNAP_CHUNK:
                return self._dispatch_snap_chunk(request_id, op_name, started, body)

            if opcode == protocol.SNAP_COMMIT:
                return self._dispatch_snap_commit(request_id, op_name, started, body)

            if opcode == protocol.MIGRATE:
                return self._dispatch_migrate(request_id, op_name, started, body)

            if opcode == protocol.MIGRATE_COMMIT:
                return self._dispatch_migrate_commit(
                    request_id, op_name, started, body
                )

            if opcode == protocol.SHARD_DETACH:
                return self._dispatch_shard_detach(
                    request_id, op_name, started, body
                )

            raise protocol.ProtocolError(f"unknown opcode {opcode}")
        except _NotOwner as exc:
            return self._immediate(
                request_id, op_name, started,
                protocol.NOT_OWNER, exc.hint.encode("utf-8"),
            )
        except _Overloaded:
            self.stats.record_overload()
            return self._immediate(
                request_id, op_name, started,
                protocol.OVERLOADED, b"shard queue full",
            )
        except ShardDown as exc:
            # A dead worker must answer, not hang: the client gets an
            # immediate error instead of a request nobody will drain.
            self.stats.record_error()
            return self._immediate(
                request_id, op_name, started, protocol.ERROR, str(exc).encode()
            )
        except (
            protocol.ProtocolError, FrameError, KeyError, IndexError,
            struct_error, UnicodeDecodeError,
        ) as exc:
            # FrameError covers the storage codecs the bodies reuse
            # (and UnicodeDecodeError the embedded names): a garbage
            # body must cost the peer one BAD_REQUEST, not the whole
            # connection.
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, str(exc).encode(),
            )

    def _watermarks(self) -> dict[int, tuple[int, int]]:
        """Per hosted shard (dispatched, applied).  A primary reports
        its engines' own last sequences (it *is* the stream's source);
        followers and ingest shards report the replication marks."""
        marks: dict[int, tuple[int, int]] = {}
        for shard_id, worker in self.shards.items():
            dispatched = self._repl_dispatched.get(shard_id, 0)
            applied = self._repl_applied.get(shard_id, 0)
            if (
                self.role == "primary"
                and self._shard_state.get(shard_id) != "ingest"
            ):
                engine = getattr(worker, "engine", None)
                if engine is not None:
                    seq = engine.last_seq
                    dispatched = max(dispatched, seq)
                    applied = max(applied, seq)
            marks[shard_id] = (dispatched, applied)
        return marks

    def _dispatch_repl_apply(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        """Ingest one batch of primary WAL frames for one shard.

        Runs on the event loop thread, so per-connection arrival order
        is exactly dedup/gap-check order: the primary's single sender
        connection can never race its own stream.
        """
        term, shard_id, frames = protocol.decode_repl_apply(body)
        if not 0 <= shard_id < self.n_shards:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"bad shard id",
            )
        state = self._shard_state.get(shard_id)
        if state != "ingest":
            # The normal follower stream is role- and term-fenced; the
            # migration ingest stream is not (the source group's term
            # is unrelated to this group's).
            if self.role != "follower":
                return self._immediate(
                    request_id, op_name, started,
                    protocol.BAD_REQUEST, b"not a follower",
                )
            if term < self.term:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.FENCED,
                    b"stale term %d < %d" % (term, self.term),
                )
            if term > self.term:
                self.term = term
        if shard_id not in self.shards or state not in ("serving", "ingest"):
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"shard not hosted",
            )
        if self._repl_failed.get(shard_id) is not None:
            return self._immediate(
                request_id, op_name, started,
                protocol.ERROR, self._repl_failed[shard_id].encode(),
            )
        try:
            records = list(
                wal_iter_records(
                    frames, source=f"repl shard {shard_id}", strict=True
                )
            )
        except FrameError as exc:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, str(exc).encode(),
            )
        dispatched = self._repl_dispatched.get(shard_id, 0)
        fresh = [(seq, key, value) for seq, key, value in records if seq > dispatched]
        if not fresh:
            # Pure resend (the primary reconnected and replayed from an
            # older watermark): confirm the durable position.
            return self._immediate(
                request_id, op_name, started,
                protocol.OK,
                protocol.encode_u64_body(self._repl_applied.get(shard_id, 0)),
            )
        expect = dispatched
        for seq, _, _ in fresh:
            expect += 1
            if seq != expect:
                # A hole in the stream would silently fork this shard
                # from the primary; poison it instead.  The link
                # surfaces it, and the next handshake resyncs.
                self._repl_failed[shard_id] = (
                    f"replication gap: expected seq {expect}, got {seq}"
                )
                return self._immediate(
                    request_id, op_name, started,
                    protocol.ERROR, self._repl_failed[shard_id].encode(),
                )
        self._repl_dispatched[shard_id] = expect
        fut = self._submit(
            self.shards[shard_id],
            "write", [(key, value) for _, key, value in fresh],
        )
        return self._finish(
            request_id, op_name, started,
            self._fmt_repl_ack(shard_id, expect, fut),
        )

    async def _fmt_repl_ack(
        self, shard_id: int, expect: int, fut: asyncio.Future
    ) -> tuple[int, bytes]:
        try:
            seq = await fut
            # The shard worker may coalesce several REPL_APPLY batches
            # into one group commit and complete each with the *run's*
            # final sequence, so >= expect is normal; < expect means the
            # follower's own sequence counter diverged from the stream.
            if isinstance(seq, int) and seq < expect:
                raise RuntimeError(
                    f"follower shard {shard_id} applied through seq {seq}, "
                    f"primary stream says {expect}"
                )
        except Exception as exc:
            self._repl_failed[shard_id] = f"apply failed: {exc!r}"
            raise
        # write_batch returned, so the batch rode a WAL group commit:
        # "applied" is a *durable* watermark, which is what lets the
        # primary ack its clients off our confirmations.
        self._repl_applied[shard_id] = max(
            self._repl_applied.get(shard_id, 0), expect
        )
        return protocol.OK, protocol.encode_u64_body(expect)

    async def _fmt_promote(
        self, futs: list[asyncio.Future], new_term: int | None
    ) -> tuple[int, bytes]:
        await asyncio.gather(*futs)
        self.role = "primary"
        self.term = max(self.term + 1, new_term or 0)
        self.lease_deadline = None
        return protocol.OK, protocol.encode_u64_body(self.term)

    # -- membership dispatch (PR 10) ----------------------------------------

    def _dispatch_lease(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        term, ttl_ms = protocol.decode_lease(body)
        if term < self.term:
            return self._immediate(
                request_id, op_name, started,
                protocol.FENCED, b"stale term %d < %d" % (term, self.term),
            )
        if term > self.term:
            self.term = term
            if self.role == "primary":
                # A newer-term primary exists; stand down.
                self.role = "follower"
        elif self.role == "primary":
            # Equal-term split claim: refuse — exactly one of the two
            # backs off (the other's grant reaches us as a follower).
            return self._immediate(
                request_id, op_name, started,
                protocol.FENCED, b"primary at the same term",
            )
        self.lease_deadline = time.monotonic() + ttl_ms / 1000.0
        return self._immediate(request_id, op_name, started, protocol.OK, b"")

    def _dispatch_snap_begin(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        term, shard_id, doc_bytes = protocol.decode_snap_begin(body)
        if not 0 <= shard_id < self.n_shards:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"bad shard id",
            )
        if self.shard_mode == "process":
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"snapshots need shard_mode=thread",
            )
        try:
            doc = json.loads(doc_bytes.decode("utf-8"))
            membership.validate_snapshot_doc(doc)
        except (ValueError, TypeError) as exc:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, str(exc).encode(),
            )
        purpose = doc["purpose"]
        state = self._shard_state.get(shard_id)
        if purpose == "resync":
            if self.role != "follower":
                return self._immediate(
                    request_id, op_name, started,
                    protocol.BAD_REQUEST, b"resync targets a follower",
                )
            if term < self.term:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.FENCED,
                    b"stale term %d < %d" % (term, self.term),
                )
            if term > self.term:
                self.term = term
        else:  # migrate: the source group's term is not ours to fence
            if state in ("serving", "sealed") and shard_id in self.shards:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.BAD_REQUEST, b"shard already served here",
                )
            # Invisible to clients until MIGRATE_COMMIT.
            self._shard_state[shard_id] = "ingest"
        self._snap_staging[shard_id] = {
            "term": term,
            "purpose": purpose,
            "doc": doc,
            "files": {entry["name"]: bytearray() for entry in doc["files"]},
            "sizes": {entry["name"]: entry["size"] for entry in doc["files"]},
            "crcs": {entry["name"]: entry["crc"] for entry in doc["files"]},
        }
        return self._immediate(request_id, op_name, started, protocol.OK, b"")

    def _dispatch_snap_chunk(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        term, shard_id, name, offset, data = protocol.decode_snap_chunk(body)
        staging = self._snap_staging.get(shard_id)
        if staging is None or staging["term"] != term:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"no snapshot staged",
            )
        buf = staging["files"].get(name)
        if buf is None:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"unannounced file",
            )
        if offset != len(buf):
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST,
                b"chunk offset %d != %d" % (offset, len(buf)),
            )
        if len(buf) + len(data) > staging["sizes"][name]:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"file exceeds announced size",
            )
        buf += data
        return self._immediate(request_id, op_name, started, protocol.OK, b"")

    def _dispatch_snap_commit(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        import zlib

        term, shard_id, snap_seq = protocol.decode_snap_commit(body)
        staging = self._snap_staging.get(shard_id)
        if staging is None or staging["term"] != term:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"no snapshot staged",
            )
        if snap_seq != staging["doc"]["snap_seq"]:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"snap_seq mismatch",
            )
        for name, buf in staging["files"].items():
            if len(buf) != staging["sizes"][name]:
                self._snap_staging.pop(shard_id, None)
                return self._immediate(
                    request_id, op_name, started,
                    protocol.BAD_REQUEST,
                    b"file %s incomplete" % name.encode(),
                )
            if zlib.crc32(bytes(buf)) != staging["crcs"][name]:
                self._snap_staging.pop(shard_id, None)
                return self._immediate(
                    request_id, op_name, started,
                    protocol.BAD_REQUEST,
                    b"file %s CRC mismatch" % name.encode(),
                )
        self._snap_staging.pop(shard_id, None)
        return self._finish(
            request_id, op_name, started,
            self._fmt_snap_commit(shard_id, staging),
        )

    async def _fmt_snap_commit(
        self, shard_id: int, staging: dict[str, Any]
    ) -> tuple[int, bytes]:
        old_worker = self.shards.pop(shard_id, None)
        self._shard_state[shard_id] = "installing"
        try:
            worker = await self._loop.run_in_executor(
                None, self._install_snapshot_sync, shard_id, old_worker, staging
            )
        except Exception:
            # The old engine is gone and the new one failed to open:
            # the shard is unusable here until another resync succeeds.
            self._shard_state[shard_id] = "failed"
            raise
        self.shards[shard_id] = worker
        snap_seq = staging["doc"]["snap_seq"]
        self._repl_dispatched[shard_id] = snap_seq
        self._repl_applied[shard_id] = snap_seq
        self._repl_failed[shard_id] = None
        if self._replication is not None:
            self._replication.reset_shard(shard_id, snap_seq)
            if staging["purpose"] == "migrate":
                self._replication.set_ingest(shard_id, True)
        self._shard_state[shard_id] = (
            "ingest" if staging["purpose"] == "migrate" else "serving"
        )
        return protocol.OK, protocol.encode_u64_body(snap_seq)

    def _install_snapshot_sync(
        self, shard_id: int, old_worker: Any, staging: dict[str, Any]
    ):
        """Executor side of SNAP_COMMIT: retire the old engine, install
        the shipped files + manifest, recover, restart the worker."""
        if old_worker is not None:
            old_worker.stop()
            old_worker.join(timeout=60)
        fs = self._fs_for(shard_id) or OsFileSystem()
        root = self._shard_root(shard_id)
        membership.install_snapshot(
            fs,
            root,
            staging["doc"],
            {name: bytes(buf) for name, buf in staging["files"].items()},
        )
        observer = (
            self._replication.observer_for(shard_id)
            if self._replication is not None
            else None
        )
        engine = LSMTree.open(
            root,
            fs=fs,
            filter_factory=self._filter_factory,
            wal_observer=observer,
            **self._engine_config,
        )
        if engine.last_seq != staging["doc"]["snap_seq"]:
            raise RuntimeError(
                f"installed snapshot recovered at seq {engine.last_seq}, "
                f"expected {staging['doc']['snap_seq']}"
            )
        worker = ShardWorker(
            shard_id, engine, self.stats, queue_limit=self._queue_limit
        )
        worker.start()
        return worker

    def _dispatch_migrate(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        shard_id, dst_group, targets = protocol.decode_migrate(body)
        if self.role != "primary":
            return self._immediate(
                request_id, op_name, started,
                protocol.NOT_PRIMARY, b"migration starts at the primary",
            )
        if self._replication is None:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"replication not attached",
            )
        if not 0 <= shard_id < self.n_shards:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"bad shard id",
            )
        if not targets:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"no target nodes",
            )
        if (
            shard_id not in self.shards
            or self._shard_state.get(shard_id) != "serving"
        ):
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"shard not serving here",
            )
        if shard_id in self._migrating:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"migration already in progress",
            )
        self._migrating.add(shard_id)
        return self._finish(
            request_id, op_name, started,
            self._fmt_migrate(shard_id, dst_group, targets),
        )

    async def _fmt_migrate(
        self, shard_id: int, dst_group: str, targets: list[tuple[str, int]]
    ) -> tuple[int, bytes]:
        try:
            handoff_seq = await self._loop.run_in_executor(
                None,
                self._replication.migrate_out, shard_id, dst_group, targets,
            )
        finally:
            self._migrating.discard(shard_id)
        return protocol.OK, protocol.encode_u64_body(handoff_seq)

    async def seal_shard(self, shard_id: int, dst_group: str) -> int:
        """Stop taking writes for a migrating shard and return the
        handoff sequence.  Runs on the event loop (scheduled by the
        migration driver): the state flip and the barrier submit happen
        atomically w.r.t. request dispatch, so every write accepted
        before the flip is in the queue the sync drains — and in the
        replication log once it completes — while every later write
        answers NOT_OWNER with the receiving group as the hint."""
        self._shard_state[shard_id] = "sealed"
        self._shard_forward[shard_id] = dst_group
        worker = self.shards[shard_id]
        await self._submit(worker, "sync", None)
        engine = getattr(worker, "engine", None)
        return engine.last_seq if engine is not None else 0

    def _dispatch_migrate_commit(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        shard_id, handoff_seq = protocol.decode_migrate_commit(body)
        state = self._shard_state.get(shard_id)
        if (
            state == "serving"
            and self._repl_applied.get(shard_id, 0) >= handoff_seq
        ):
            # Idempotent retry: already committed.
            return self._immediate(request_id, op_name, started, protocol.OK, b"")
        if state != "ingest" or shard_id not in self.shards:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"shard not ingesting",
            )
        if self._repl_applied.get(shard_id, 0) < handoff_seq:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST,
                b"applied %d behind handoff %d"
                % (self._repl_applied.get(shard_id, 0), handoff_seq),
            )
        self._shard_state[shard_id] = "serving"
        self._shard_forward.pop(shard_id, None)
        if self._replication is not None:
            self._replication.set_ingest(shard_id, False)
            self._replication.reset_shard(shard_id, handoff_seq)
        return self._immediate(request_id, op_name, started, protocol.OK, b"")

    def _dispatch_shard_detach(
        self, request_id: int, op_name: str, started: float, body: bytes
    ):
        shard_id, forward_group = protocol.decode_shard_detach(body)
        if not 0 <= shard_id < self.n_shards:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"bad shard id",
            )
        if self.shard_mode == "process":
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, b"detach needs shard_mode=thread",
            )
        worker = self.shards.get(shard_id)
        if worker is None:
            if forward_group:
                self._shard_forward[shard_id] = forward_group
            return self._immediate(request_id, op_name, started, protocol.OK, b"")
        return self._finish(
            request_id, op_name, started,
            self._fmt_shard_detach(shard_id, forward_group, worker),
        )

    async def _fmt_shard_detach(
        self, shard_id: int, forward_group: str, worker: Any
    ) -> tuple[int, bytes]:
        repl = self._replication
        if repl is not None and self.role == "primary":
            # The group's own followers must hold the sealed shard's
            # full tail before this primary forgets its log: a link
            # mid-ship would otherwise see the log vanish and bounce.
            engine = getattr(worker, "engine", None)
            end_seq = engine.last_seq if engine is not None else 0
            await self._loop.run_in_executor(
                None, repl.wait_links_durable, shard_id, end_seq
            )
        self._shard_state[shard_id] = "detached"
        self.shards.pop(shard_id, None)
        if forward_group:
            self._shard_forward[shard_id] = forward_group
        await self._loop.run_in_executor(
            None, self._retire_worker_sync, shard_id, worker
        )
        if repl is not None:
            repl.detach_shard(shard_id)
        self._repl_dispatched.pop(shard_id, None)
        self._repl_applied.pop(shard_id, None)
        self._repl_failed.pop(shard_id, None)
        return protocol.OK, b""

    def _retire_worker_sync(self, shard_id: int, worker: Any) -> None:
        """Executor side of SHARD_DETACH: drain the worker, then delete
        the shard directory (CURRENT first, so a crash mid-delete
        leaves a directory that recovers as empty)."""
        worker.stop()
        worker.join(timeout=60)
        fs = self._fs_for(shard_id) or OsFileSystem()
        root = self._shard_root(shard_id)
        try:
            names = list(fs.listdir(root))
        except (FileNotFoundError, OSError):
            return
        for name in sorted(names, key=lambda n: n != "CURRENT"):
            try:
                fs.remove(join(root, name))
            except (FileNotFoundError, OSError):
                pass

    def _extend_stats(self, snapshot: dict[str, Any]) -> None:
        snapshot["n_shards"] = self.n_shards
        cluster: dict[str, Any] = {
            "role": self.role,
            "term": self.term,
            "hosted_shards": sorted(self.shards),
            "shards": {
                str(shard_id): {
                    "state": self._shard_state.get(shard_id),
                    "repl_dispatched": self._repl_dispatched.get(shard_id, 0),
                    "repl_applied": self._repl_applied.get(shard_id, 0),
                    "repl_failed": self._repl_failed.get(shard_id),
                }
                for shard_id in sorted(self.shards)
            },
            "forward": {str(s): g for s, g in sorted(self._shard_forward.items())},
            "migrating": sorted(self._migrating),
        }
        if self._replication is not None:
            cluster["replication"] = self._replication.stats()
        snapshot["cluster"] = cluster

    def _immediate(
        self, request_id: int, op_name: str, started: float,
        status: int, body: bytes,
    ) -> bytes:
        self.stats.record_op(op_name, time.perf_counter() - started)
        return protocol.frame(request_id, status, body)

    async def _finish(
        self, request_id: int, op_name: str, started: float, formatter
    ) -> bytes:
        try:
            status, body = await formatter
        except Exception as exc:
            self.stats.record_error()
            status, body = protocol.ERROR, str(exc).encode()
        self.stats.record_op(op_name, time.perf_counter() - started)
        return protocol.frame(request_id, status, body)

    # -- shard fan-out ------------------------------------------------------

    def _submit(self, shard: ShardWorker, op: str, args: Any) -> asyncio.Future:
        loop = self._loop
        future = loop.create_future()
        if not shard.submit(ShardRequest(op, args, future, loop)):
            raise _Overloaded()
        return future

    @staticmethod
    async def _fmt_get(fut: asyncio.Future) -> tuple[int, bytes]:
        values = await fut
        if values[0] is None:
            return protocol.NOT_FOUND, b""
        return protocol.OK, protocol.encode_value_body(values[0])

    async def _fmt_ack(self, shard_id: int, fut: asyncio.Future) -> tuple[int, bytes]:
        seq = await fut
        if not isinstance(seq, int):
            return protocol.OK, b""  # non-durable engine: no token
        repl = self._replication
        if repl is not None:
            # Synchronous replication gate: the local group commit made
            # the write durable *here*; the ack waits until every
            # voting follower confirms it durable *there*, so a
            # client-visible OK survives the loss of this whole node.
            await asyncio.wait_for(
                repl.wait_durable(shard_id, seq), self._repl_ack_timeout
            )
        return protocol.OK, protocol.encode_u64_body(seq)

    @staticmethod
    async def _fmt_batch_get(n_keys, futs) -> tuple[int, bytes]:
        out: list[Any] = [None] * n_keys
        for idxs, fut in futs:
            values = await fut
            for i, value in zip(idxs, values):
                out[i] = value
        return protocol.OK, protocol.encode_maybe_values(out, missing=None)

    @staticmethod
    async def _fmt_scan(count, futs) -> tuple[int, bytes]:
        """Merge per-shard scans by key (shards are disjoint by hash,
        so the heap merge needs no newest-wins logic)."""
        per_shard = await asyncio.gather(*futs)
        merged = heapq.merge(*per_shard, key=lambda kv: kv[0])
        out = []
        for pair in merged:
            out.append(pair)
            if len(out) >= count:
                break
        return protocol.OK, protocol.encode_pairs(out)

    @staticmethod
    async def _fmt_count(futs) -> tuple[int, bytes]:
        counts = await asyncio.gather(*futs)
        return protocol.OK, protocol.encode_u64_body(sum(counts))

    @staticmethod
    async def _fmt_sync(futs) -> tuple[int, bytes]:
        await asyncio.gather(*futs)
        return protocol.OK, b""

    async def _fmt_stats(self, futs) -> tuple[int, bytes]:
        per_shard = []
        for shard, fut in futs:
            info = None
            if fut is not None:
                try:
                    info = await fut
                except Exception:
                    info = None  # worker died/drained mid-request
            per_shard.append(info if info is not None else shard.snapshot_info())
        snapshot = self.stats.snapshot(per_shard)
        self._extend_stats(snapshot)
        return protocol.OK, json.dumps(snapshot).encode()


class ServerThread:
    """Run a :class:`KVServer` on a private event loop in a daemon
    thread — the bridge that lets synchronous harnesses (tests, the
    differential fuzzer, the sync client benchmarks) drive the asyncio
    server in-process."""

    def __init__(self, server: KVServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="kv-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            self._thread.join(timeout=10)
            raise self._startup_error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
        finally:
            self._ready.set()
            try:
                loop.close()
            except Exception:
                pass

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain from the calling thread; idempotent."""
        loop, thread = self._loop, self._thread
        if thread is None or loop is None or not thread.is_alive():
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), loop
            ).result(timeout=timeout)
        except Exception:
            pass
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=timeout)
