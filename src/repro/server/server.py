"""Sharded asyncio TCP front-end over N durable LSM engines.

``KVServer`` hash-shards keys (CRC32 modulo shard count) across
independent :class:`~repro.lsm.engine.LSMTree` engines living under one
root directory (``<root>/shard-00``, ``shard-01``, ...).  The network
side is a single asyncio event loop: each connection's requests are
read sequentially, dispatched as tasks, and answered **in arrival
order**, so clients may pipeline arbitrarily many requests.  Engine
work happens on the per-shard worker threads
(:mod:`repro.server.shard`), which coalesce concurrent GETs into batch
reads and adjacent writes into single group commits.

Ordering guarantees: per connection, per shard — a request observes
every earlier same-connection request routed to the same shard.
Cross-shard requests (SCAN/COUNT/BATCH_GET spanning shards) fan out
concurrently and merge.

Shutdown drains: stop accepting, mark the server closing (new requests
get ``SHUTTING_DOWN``), let every queued request complete, then sync
and close each engine.  A client-acknowledged write therefore always
survives, even through ``python -m repro.server serve`` receiving
SIGTERM mid-load.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import threading
import time
import zlib
from struct import error as struct_error
from typing import Any, Callable

from ..lsm import LSMTree
from ..lsm.fs import FileSystem, join
from . import protocol
from .procshard import ProcessShard
from .shard import ShardDown, ShardRequest, ShardWorker, TOMBSTONE
from .stats import ServerStats

#: Cap on one SCAN response, whatever the client asked for.
MAX_SCAN_COUNT = 10_000


class _Overloaded(Exception):
    """Internal: a bounded shard queue refused the request."""


def shard_of(key: bytes, n_shards: int) -> int:
    """Stable hash sharding; CRC32 so any client can compute it."""
    return zlib.crc32(key) % n_shards


class KVServer:
    """The serving subsystem: N shards, one event loop, one port."""

    def __init__(
        self,
        path: str,
        n_shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        fs: FileSystem | Callable[[int], FileSystem] | None = None,
        queue_limit: int = 1024,
        filter_factory: Callable | None = None,
        engine_config: dict | None = None,
        shard_mode: str = "thread",
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if shard_mode not in ("thread", "process"):
            raise ValueError("shard_mode must be 'thread' or 'process'")
        self.path = path
        self.n_shards = n_shards
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.shard_mode = shard_mode
        self._fs = fs
        self._queue_limit = queue_limit
        self._filter_factory = filter_factory
        # Served engines default to the background lifecycle: shard
        # workers keep coalescing writes into one WAL group commit, but
        # flushes and compactions move off the worker thread, so a
        # write's worst case is a bounded stall (counted in STATS) —
        # not an inline multi-level merge.  Tests that need the
        # deterministic inline pipeline pass ``background=False``.
        self._engine_config = dict(engine_config or {})
        self._engine_config.setdefault("background", True)
        self.stats = ServerStats()
        self.shards: list[ShardWorker] = []
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._shutdown_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def _fs_for(self, shard_id: int) -> FileSystem | None:
        if callable(self._fs) and not isinstance(self._fs, FileSystem):
            return self._fs(shard_id)
        return self._fs

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "KVServer":
        """Open (recovering) every shard engine, start the workers, bind."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        try:
            if self.shard_mode == "process":
                # Launch every child first (spawn + engine recovery run
                # concurrently across shards), then wait for each.
                for i in range(self.n_shards):
                    self.shards.append(
                        ProcessShard(
                            i,
                            join(self.path, f"shard-{i:02d}"),
                            self.stats,
                            queue_limit=self._queue_limit,
                            engine_config=self._engine_config,
                            fs=self._fs_for(i),
                            filter_factory=self._filter_factory,
                        )
                    )
                for worker in self.shards:
                    worker.wait_ready()
                for worker in self.shards:
                    worker.start()
            else:
                for i in range(self.n_shards):
                    engine = LSMTree.open(
                        join(self.path, f"shard-{i:02d}"),
                        fs=self._fs_for(i),
                        filter_factory=self._filter_factory,
                        **self._engine_config,
                    )
                    worker = ShardWorker(
                        i, engine, self.stats, queue_limit=self._queue_limit
                    )
                    worker.start()
                    self.shards.append(worker)
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except BaseException:
            await self._stop_workers()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (or the SHUTDOWN opcode),
        then drain gracefully."""
        assert self._shutdown_requested is not None, "call start() first"
        await self._shutdown_requested.wait()
        # Give in-flight response writes one tick to flush before the
        # listener goes away (the SHUTDOWN OK must reach its client).
        await asyncio.sleep(0.05)
        await self.shutdown()

    def request_shutdown(self) -> None:
        self._closing = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish queued work, sync and
        close every engine.  Idempotent."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._stop_workers()

    async def _stop_workers(self) -> None:
        workers, self.shards = self.shards, []
        for worker in workers:
            worker.stop()

        def _join() -> None:
            for worker in workers:
                if worker.is_alive():
                    worker.join(timeout=60)

        if workers:
            await asyncio.get_running_loop().run_in_executor(None, _join)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.record_connection(opened=True)
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_responses(responses, writer))
        # Bulk-read + buffer parse: a pipelined client packs whole
        # trains of requests into each TCP segment, so one read() wakes
        # us for many frames — dispatching them all in one pass is a
        # large win over two readexactly() awaits per request.
        buf = bytearray()
        try:
            while True:
                try:
                    data = await reader.read(1 << 16)
                except (ConnectionResetError, OSError):
                    break
                if not data:
                    break
                buf += data
                off = 0
                try:
                    while len(buf) - off >= 4:
                        length = protocol.parse_length(bytes(buf[off : off + 4]))
                        if len(buf) - off - 4 < length:
                            break
                        request_id, opcode, body = protocol.parse_payload(
                            bytes(buf[off + 4 : off + 4 + length])
                        )
                        off += 4 + length
                        responses.put_nowait(
                            self._dispatch(request_id, opcode, body)
                        )
                except protocol.ProtocolError:
                    break  # unframeable stream: drop the connection
                if off:
                    del buf[:off]
        finally:
            responses.put_nowait(None)
            try:
                await writer_task
            except Exception:
                pass
            self._drain_queue(responses)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self.stats.record_connection(opened=False)

    @staticmethod
    def _drain_queue(responses: asyncio.Queue) -> None:
        """Close formatter coroutines the writer never reached."""
        while True:
            try:
                item = responses.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not None and not isinstance(item, (bytes, bytearray)):
                item.close()

    async def _write_responses(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write responses in request-arrival order.  Items are either
        finished frames (bytes) or formatter coroutines awaiting shard
        futures — the shard work itself was already submitted by the
        reader, so awaiting here never delays later requests' engine
        work, only their response bytes (which must queue anyway)."""
        while True:
            item = await responses.get()
            if item is None:
                return
            if not isinstance(item, (bytes, bytearray)):
                item = await item
            writer.write(item)
            if responses.empty():
                await writer.drain()

    # -- request dispatch --------------------------------------------------
    #
    # The reader thread of control decodes each request and performs
    # every shard submit *inline*, so per-connection arrival order is
    # exactly per-shard queue order — no per-request Task, no reordering
    # window.  What goes on the response queue is either final bytes or
    # a small coroutine that formats the shard's answer.

    def _dispatch(self, request_id: int, opcode: int, body: bytes):
        started = time.perf_counter()
        op_name = protocol.OP_NAMES.get(opcode, f"op{opcode}")
        try:
            if self._closing and opcode != protocol.STATS:
                return self._immediate(
                    request_id, op_name, started,
                    protocol.SHUTTING_DOWN, b"server is draining",
                )

            if opcode == protocol.GET:
                key = protocol.decode_key(body)
                fut = self._submit(
                    self.shards[shard_of(key, self.n_shards)], "get", [key]
                )
                return self._finish(request_id, op_name, started, self._fmt_get(fut))

            if opcode == protocol.PUT:
                key, value = protocol.decode_key_value(body)
                if value is TOMBSTONE:
                    raise protocol.ProtocolError("cannot PUT a tombstone")
                fut = self._submit(
                    self.shards[shard_of(key, self.n_shards)],
                    "write", [(key, value)],
                )
                return self._finish(request_id, op_name, started, self._fmt_ack(fut))

            if opcode == protocol.DELETE:
                key = protocol.decode_key(body)
                fut = self._submit(
                    self.shards[shard_of(key, self.n_shards)],
                    "write", [(key, TOMBSTONE)],
                )
                return self._finish(request_id, op_name, started, self._fmt_ack(fut))

            if opcode == protocol.BATCH_GET:
                keys = protocol.decode_keys(body)
                by_shard: dict[int, list[int]] = {}
                for i, key in enumerate(keys):
                    by_shard.setdefault(shard_of(key, self.n_shards), []).append(i)
                futs = [
                    (idxs, self._submit(self.shards[sid], "get",
                                        [keys[i] for i in idxs]))
                    for sid, idxs in by_shard.items()
                ]
                return self._finish(
                    request_id, op_name, started,
                    self._fmt_batch_get(len(keys), futs),
                )

            if opcode == protocol.SCAN:
                low, count = protocol.decode_scan(body)
                count = min(count, MAX_SCAN_COUNT)
                futs = [self._submit(s, "scan", (low, count)) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_scan(count, futs)
                )

            if opcode == protocol.COUNT:
                low, high = protocol.decode_range(body)
                futs = [self._submit(s, "count", (low, high)) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_count(futs)
                )

            if opcode == protocol.SYNC:
                futs = [self._submit(s, "sync", None) for s in self.shards]
                return self._finish(
                    request_id, op_name, started, self._fmt_sync(futs)
                )

            if opcode == protocol.STATS:
                if not self.shards:
                    snapshot = self.stats.snapshot(None)
                    snapshot["n_shards"] = self.n_shards
                    return self._immediate(
                        request_id, op_name, started,
                        protocol.OK, json.dumps(snapshot).encode(),
                    )
                # Engine detail is collected via each worker's "info"
                # op (on the worker thread / over the shard-RPC pipe);
                # dead or draining shards answer with liveness only.
                futs = []
                for shard in self.shards:
                    fut = None
                    if not (shard.dead or shard.stopping or shard.closed.is_set()):
                        try:
                            fut = self._submit(shard, "info", None)
                        except (_Overloaded, ShardDown):
                            fut = None
                    futs.append((shard, fut))
                return self._finish(
                    request_id, op_name, started, self._fmt_stats(futs)
                )

            if opcode == protocol.SHUTDOWN:
                self.request_shutdown()
                return self._immediate(
                    request_id, op_name, started, protocol.OK, b""
                )

            raise protocol.ProtocolError(f"unknown opcode {opcode}")
        except _Overloaded:
            self.stats.record_overload()
            return self._immediate(
                request_id, op_name, started,
                protocol.OVERLOADED, b"shard queue full",
            )
        except ShardDown as exc:
            # A dead worker must answer, not hang: the client gets an
            # immediate error instead of a request nobody will drain.
            self.stats.record_error()
            return self._immediate(
                request_id, op_name, started, protocol.ERROR, str(exc).encode()
            )
        except (protocol.ProtocolError, KeyError, IndexError, struct_error) as exc:
            return self._immediate(
                request_id, op_name, started,
                protocol.BAD_REQUEST, str(exc).encode(),
            )

    def _immediate(
        self, request_id: int, op_name: str, started: float,
        status: int, body: bytes,
    ) -> bytes:
        self.stats.record_op(op_name, time.perf_counter() - started)
        return protocol.frame(request_id, status, body)

    async def _finish(
        self, request_id: int, op_name: str, started: float, formatter
    ) -> bytes:
        try:
            status, body = await formatter
        except Exception as exc:
            self.stats.record_error()
            status, body = protocol.ERROR, str(exc).encode()
        self.stats.record_op(op_name, time.perf_counter() - started)
        return protocol.frame(request_id, status, body)

    # -- shard fan-out ------------------------------------------------------

    def _submit(self, shard: ShardWorker, op: str, args: Any) -> asyncio.Future:
        loop = self._loop
        future = loop.create_future()
        if not shard.submit(ShardRequest(op, args, future, loop)):
            raise _Overloaded()
        return future

    @staticmethod
    async def _fmt_get(fut: asyncio.Future) -> tuple[int, bytes]:
        values = await fut
        if values[0] is None:
            return protocol.NOT_FOUND, b""
        return protocol.OK, protocol.encode_value_body(values[0])

    @staticmethod
    async def _fmt_ack(fut: asyncio.Future) -> tuple[int, bytes]:
        await fut
        return protocol.OK, b""

    @staticmethod
    async def _fmt_batch_get(n_keys, futs) -> tuple[int, bytes]:
        out: list[Any] = [None] * n_keys
        for idxs, fut in futs:
            values = await fut
            for i, value in zip(idxs, values):
                out[i] = value
        return protocol.OK, protocol.encode_maybe_values(out, missing=None)

    @staticmethod
    async def _fmt_scan(count, futs) -> tuple[int, bytes]:
        """Merge per-shard scans by key (shards are disjoint by hash,
        so the heap merge needs no newest-wins logic)."""
        per_shard = await asyncio.gather(*futs)
        merged = heapq.merge(*per_shard, key=lambda kv: kv[0])
        out = []
        for pair in merged:
            out.append(pair)
            if len(out) >= count:
                break
        return protocol.OK, protocol.encode_pairs(out)

    @staticmethod
    async def _fmt_count(futs) -> tuple[int, bytes]:
        counts = await asyncio.gather(*futs)
        return protocol.OK, protocol.encode_u64_body(sum(counts))

    @staticmethod
    async def _fmt_sync(futs) -> tuple[int, bytes]:
        await asyncio.gather(*futs)
        return protocol.OK, b""

    async def _fmt_stats(self, futs) -> tuple[int, bytes]:
        per_shard = []
        for shard, fut in futs:
            info = None
            if fut is not None:
                try:
                    info = await fut
                except Exception:
                    info = None  # worker died/drained mid-request
            per_shard.append(info if info is not None else shard.snapshot_info())
        snapshot = self.stats.snapshot(per_shard)
        snapshot["n_shards"] = self.n_shards
        return protocol.OK, json.dumps(snapshot).encode()


class ServerThread:
    """Run a :class:`KVServer` on a private event loop in a daemon
    thread — the bridge that lets synchronous harnesses (tests, the
    differential fuzzer, the sync client benchmarks) drive the asyncio
    server in-process."""

    def __init__(self, server: KVServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="kv-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            self._thread.join(timeout=10)
            raise self._startup_error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
        finally:
            self._ready.set()
            try:
                loop.close()
            except Exception:
                pass

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain from the calling thread; idempotent."""
        loop, thread = self._loop, self._thread
        if thread is None or loop is None or not thread.is_alive():
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), loop
            ).result(timeout=timeout)
        except Exception:
            pass
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=timeout)
