"""Clients for the sharded key-value server.

Two flavours share the wire codec from :mod:`repro.server.protocol`:

* :class:`KVClient` — blocking, one request in flight at a time.  The
  simplest correct client; also the *non-pipelined baseline* for the
  serving benchmarks.
* :class:`AsyncKVClient` — asyncio, fully pipelined: every call
  returns as soon as the frame is written and a reader task resolves
  futures in arrival order (the server guarantees in-order responses).
  Many coroutines sharing one connection keep dozens of requests in
  flight, which is exactly what feeds the server's GET-coalescing and
  write group commit.

Both clients absorb transient ``OVERLOADED`` backpressure with a
bounded exponential-backoff retry (full jitter, so a thundering herd
of clients decorrelates instead of re-arriving in lockstep).  The
retry count is exposed as ``client.retries`` and surfaces in loadgen
stats; ``max_retries=0`` restores the old raise-immediately behaviour.

Write acks carry the committed sequence number (``put`` returns it) —
the causal token :meth:`KVClient.get_at` hands to a replication
follower to demand read-your-writes.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Sequence

from . import protocol

#: Backoff schedule for OVERLOADED retries: full jitter over an
#: exponentially growing cap, starting at 1 ms and saturating at 100 ms.
RETRY_BASE_DELAY = 0.001
RETRY_MAX_DELAY = 0.1
DEFAULT_MAX_RETRIES = 8


def _retry_delay(attempt: int) -> float:
    """Full-jitter exponential backoff: uniform over [0, min(cap, base*2^n)]."""
    return random.uniform(
        0.0, min(RETRY_MAX_DELAY, RETRY_BASE_DELAY * (2 ** attempt))
    )


class ServerError(Exception):
    """Non-OK response status from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(
            f"{protocol.STATUS_NAMES.get(status, status)}: {message}"
        )
        self.status = status


class ServerOverloadedError(ServerError):
    """Backpressure: a bounded shard queue was full (and the bounded
    retry schedule, if any, was exhausted)."""


class ServerShuttingDownError(ServerError):
    """The server is draining; no new work is accepted."""


class FollowerLaggingError(ServerError):
    """GET_AT: the follower has not applied the requested sequence yet."""


class NotPrimaryError(ServerError):
    """A write was sent to a follower; re-route to the primary."""


class NotOwnerError(ServerError):
    """The node does not serve this shard (it migrated away, is still
    migrating in, or never lived here).  ``owner`` names the owning
    group when the node knows it — the router updates its placement
    map and retries."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(status, message)
        self.owner = message or None


class FencedError(ServerError):
    """A replication/lease message carried a stale term: a higher-term
    primary exists.  The sender must stop acting as primary."""


@dataclass
class WatermarkReply:
    """WATERMARK response: role, election term, and per-hosted-shard
    ``(dispatched, applied)`` replication watermarks."""

    is_primary: bool
    term: int
    marks: dict[int, tuple[int, int]]

    def applied_total(self) -> int:
        """Sum of durably applied sequences — the election's
        caught-up-ness score."""
        return sum(applied for _, applied in self.marks.values())


def _raise_for(status: int, body: bytes) -> None:
    message = body.decode("utf-8", "replace")
    if status == protocol.OVERLOADED:
        raise ServerOverloadedError(status, message)
    if status == protocol.SHUTTING_DOWN:
        raise ServerShuttingDownError(status, message)
    if status == protocol.LAGGING:
        raise FollowerLaggingError(status, message)
    if status == protocol.NOT_PRIMARY:
        raise NotPrimaryError(status, message)
    if status == protocol.NOT_OWNER:
        raise NotOwnerError(status, message)
    if status == protocol.FENCED:
        raise FencedError(status, message)
    raise ServerError(status, message)


class KVClient:
    """Blocking client: send one frame, read one frame."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._max_retries = max_retries
        #: OVERLOADED responses absorbed by the retry schedule.
        self.retries = 0

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, opcode: int, body: bytes = b"") -> tuple[int, bytes]:
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        request_id = self._next_id
        self._sock.sendall(protocol.frame(request_id, opcode, body))
        prefix = self._file.read(4)
        if len(prefix) < 4:
            raise ConnectionError("server closed the connection")
        length = protocol.parse_length(prefix)
        payload = self._file.read(length)
        if len(payload) < length:
            raise ConnectionError("truncated response")
        echoed, status, rbody = protocol.parse_payload(payload)
        if echoed != request_id:
            raise protocol.ProtocolError(
                f"response id {echoed} does not match request id {request_id}"
            )
        return status, rbody

    def _call_retrying(self, opcode: int, body: bytes = b"") -> tuple[int, bytes]:
        """One request, with bounded backoff across OVERLOADED answers.

        Retrying is safe here because OVERLOADED is answered *before*
        any engine work is queued — the request never happened.
        """
        attempt = 0
        while True:
            status, rbody = self._call(opcode, body)
            if status != protocol.OVERLOADED or attempt >= self._max_retries:
                return status, rbody
            self.retries += 1
            time.sleep(_retry_delay(attempt))
            attempt += 1

    # -- operations --------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        status, body = self._call_retrying(protocol.GET, protocol.encode_key(key))
        if status == protocol.NOT_FOUND:
            return None
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_value_body(body)

    def put(self, key: bytes, value: Any) -> int | None:
        """Store ``value``; returns the committed sequence number (the
        causal token for :meth:`get_at`), or None from older servers."""
        status, body = self._call_retrying(
            protocol.PUT, protocol.encode_key_value(key, value)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body) if len(body) == 8 else None

    def delete(self, key: bytes) -> int | None:
        status, body = self._call_retrying(protocol.DELETE, protocol.encode_key(key))
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body) if len(body) == 8 else None

    def get_many(self, keys: Sequence[bytes], missing: Any = None) -> list[Any]:
        status, body = self._call_retrying(
            protocol.BATCH_GET, protocol.encode_keys(keys)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_maybe_values(body, missing=missing)

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        status, body = self._call_retrying(
            protocol.SCAN, protocol.encode_scan(low, count)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_pairs(body)

    def count(self, low: bytes, high: bytes) -> int:
        status, body = self._call_retrying(
            protocol.COUNT, protocol.encode_range(low, high)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body)

    def sync(self) -> None:
        status, body = self._call_retrying(protocol.SYNC)
        if status != protocol.OK:
            _raise_for(status, body)

    def stats(self) -> dict:
        status, body = self._call(protocol.STATS)
        if status != protocol.OK:
            _raise_for(status, body)
        return json.loads(body.decode())

    def shutdown_server(self) -> None:
        status, body = self._call(protocol.SHUTDOWN)
        if status != protocol.OK:
            _raise_for(status, body)

    # -- cluster operations ------------------------------------------------

    def get_at(self, key: bytes, min_seq: int) -> Any | None:
        """Read ``key`` from a node that has applied at least
        ``min_seq`` (a token from :meth:`put`).  Raises
        :class:`FollowerLaggingError` when the node is behind."""
        status, body = self._call_retrying(
            protocol.GET_AT, protocol.encode_get_at(key, min_seq)
        )
        if status == protocol.NOT_FOUND:
            return None
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_value_body(body)

    def watermark(self) -> WatermarkReply:
        """The node's role, term, and per-shard (dispatched, applied)
        replication watermarks."""
        status, body = self._call(protocol.WATERMARK)
        if status != protocol.OK:
            _raise_for(status, body)
        return WatermarkReply(*protocol.decode_watermarks(body))

    def promote(self, new_term: int | None = None) -> int:
        """Flip a follower to primary (drains queued applies first).
        Returns the node's term after the flip."""
        status, body = self._call(protocol.PROMOTE, protocol.encode_promote(new_term))
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body) if len(body) == 8 else 0

    def repl_apply(self, term: int, shard: int, frames: bytes) -> int:
        """Ship verbatim WAL frames to a follower shard; returns its
        durable applied watermark.  Used by the replication sender."""
        status, body = self._call(
            protocol.REPL_APPLY, protocol.encode_repl_apply(term, shard, frames)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body)

    # -- membership operations (PR 10) --------------------------------------

    def snap_begin(self, term: int, shard: int, doc: bytes) -> None:
        status, body = self._call(
            protocol.SNAP_BEGIN, protocol.encode_snap_begin(term, shard, doc)
        )
        if status != protocol.OK:
            _raise_for(status, body)

    def snap_chunk(
        self, term: int, shard: int, name: str, offset: int, data: bytes
    ) -> None:
        status, body = self._call(
            protocol.SNAP_CHUNK,
            protocol.encode_snap_chunk(term, shard, name, offset, data),
        )
        if status != protocol.OK:
            _raise_for(status, body)

    def snap_commit(self, term: int, shard: int, snap_seq: int) -> int:
        """Install the staged snapshot; returns the installed sequence."""
        status, body = self._call(
            protocol.SNAP_COMMIT,
            protocol.encode_snap_commit(term, shard, snap_seq),
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body)

    def migrate(
        self, shard: int, dst_group: str, targets: Sequence[tuple[str, int]]
    ) -> int:
        """Drive the source side of a live shard migration; returns the
        handoff sequence once every target holds the shard through it."""
        status, body = self._call(
            protocol.MIGRATE, protocol.encode_migrate(shard, dst_group, targets)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body)

    def migrate_commit(self, shard: int, handoff_seq: int) -> None:
        status, body = self._call(
            protocol.MIGRATE_COMMIT,
            protocol.encode_migrate_commit(shard, handoff_seq),
        )
        if status != protocol.OK:
            _raise_for(status, body)

    def shard_detach(self, shard: int, forward_group: str = "") -> None:
        status, body = self._call(
            protocol.SHARD_DETACH,
            protocol.encode_shard_detach(shard, forward_group),
        )
        if status != protocol.OK:
            _raise_for(status, body)

    def lease(self, term: int, ttl_ms: int) -> None:
        """Primary heartbeat: grant a lease for ``ttl_ms``.  Raises
        :class:`FencedError` when the receiver knows a higher term."""
        status, body = self._call(
            protocol.LEASE, protocol.encode_lease(term, ttl_ms)
        )
        if status != protocol.OK:
            _raise_for(status, body)


class AsyncKVClient:
    """Pipelined asyncio client over one connection.

    Safe for many coroutines on the same event loop: frame writes are
    atomic (single ``write`` call) and the reader task resolves pending
    futures strictly in send order, matching the server's in-order
    response guarantee.
    """

    def __init__(self, max_retries: int = DEFAULT_MAX_RETRIES) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: asyncio.Queue = asyncio.Queue()
        self._reader_task: asyncio.Task | None = None
        self._next_id = 0
        self._conn_error: BaseException | None = None
        self._max_retries = max_retries
        #: OVERLOADED responses absorbed by the retry schedule.
        self.retries = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, max_retries: int = DEFAULT_MAX_RETRIES
    ) -> "AsyncKVClient":
        client = cls(max_retries=max_retries)
        client._reader, client._writer = await asyncio.open_connection(host, port)
        sock = client._writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None

    async def _read_loop(self) -> None:
        assert self._reader is not None
        # Bulk-read + buffer parse: under pipelining the server packs
        # trains of responses per segment; resolve them all per wakeup.
        buf = bytearray()
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    raise ConnectionError("server closed the connection")
                buf += data
                off = 0
                while len(buf) - off >= 4:
                    length = protocol.parse_length(bytes(buf[off : off + 4]))
                    if len(buf) - off - 4 < length:
                        break
                    payload = bytes(buf[off + 4 : off + 4 + length])
                    off += 4 + length
                    expected_id, future = self._pending.get_nowait()
                    if future.cancelled():
                        continue
                    echoed, status, body = protocol.parse_payload(payload)
                    if echoed != expected_id:
                        future.set_exception(
                            protocol.ProtocolError(
                                f"response id {echoed} != expected {expected_id}"
                            )
                        )
                        continue
                    future.set_result((status, body))
                if off:
                    del buf[:off]
        except (asyncio.CancelledError, GeneratorExit):
            self._fail_pending(ConnectionError("client closed"))
            raise
        except BaseException as exc:
            self._conn_error = exc
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        while True:
            try:
                _, future = self._pending.get_nowait()
            except asyncio.QueueEmpty:
                return
            if not future.done():
                future.set_exception(
                    ConnectionError(f"connection lost: {exc}")
                )

    async def _call(self, opcode: int, body: bytes = b"") -> tuple[int, bytes]:
        if self._writer is None:
            raise ConnectionError("client is closed")
        if self._conn_error is not None:
            raise ConnectionError(f"connection lost: {self._conn_error}")
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Enqueue before writing so the reader can never see a response
        # for a request it does not know about.
        self._pending.put_nowait((request_id, future))
        self._writer.write(protocol.frame(request_id, opcode, body))
        await self._writer.drain()
        return await future

    async def _call_retrying(self, opcode: int, body: bytes = b"") -> tuple[int, bytes]:
        """Bounded backoff across OVERLOADED answers.  A retry is a
        fresh request at the back of the pipeline — ordering relative to
        other in-flight requests is already undefined under backpressure
        (the original was refused), so resending is safe."""
        attempt = 0
        while True:
            status, rbody = await self._call(opcode, body)
            if status != protocol.OVERLOADED or attempt >= self._max_retries:
                return status, rbody
            self.retries += 1
            await asyncio.sleep(_retry_delay(attempt))
            attempt += 1

    # -- operations --------------------------------------------------------

    async def get(self, key: bytes) -> Any | None:
        status, body = await self._call_retrying(
            protocol.GET, protocol.encode_key(key)
        )
        if status == protocol.NOT_FOUND:
            return None
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_value_body(body)

    async def put(self, key: bytes, value: Any) -> int | None:
        status, body = await self._call_retrying(
            protocol.PUT, protocol.encode_key_value(key, value)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body) if len(body) == 8 else None

    async def delete(self, key: bytes) -> int | None:
        status, body = await self._call_retrying(
            protocol.DELETE, protocol.encode_key(key)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body) if len(body) == 8 else None

    async def get_many(
        self, keys: Sequence[bytes], missing: Any = None
    ) -> list[Any]:
        status, body = await self._call_retrying(
            protocol.BATCH_GET, protocol.encode_keys(keys)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_maybe_values(body, missing=missing)

    async def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        status, body = await self._call_retrying(
            protocol.SCAN, protocol.encode_scan(low, count)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_pairs(body)

    async def count(self, low: bytes, high: bytes) -> int:
        status, body = await self._call_retrying(
            protocol.COUNT, protocol.encode_range(low, high)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body)

    async def sync(self) -> None:
        status, body = await self._call_retrying(protocol.SYNC)
        if status != protocol.OK:
            _raise_for(status, body)

    async def get_at(self, key: bytes, min_seq: int) -> Any | None:
        status, body = await self._call_retrying(
            protocol.GET_AT, protocol.encode_get_at(key, min_seq)
        )
        if status == protocol.NOT_FOUND:
            return None
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_value_body(body)

    async def watermark(self) -> WatermarkReply:
        status, body = await self._call(protocol.WATERMARK)
        if status != protocol.OK:
            _raise_for(status, body)
        return WatermarkReply(*protocol.decode_watermarks(body))

    async def promote(self, new_term: int | None = None) -> int:
        status, body = await self._call(
            protocol.PROMOTE, protocol.encode_promote(new_term)
        )
        if status != protocol.OK:
            _raise_for(status, body)
        return protocol.decode_u64_body(body) if len(body) == 8 else 0

    async def stats(self) -> dict:
        status, body = await self._call(protocol.STATS)
        if status != protocol.OK:
            _raise_for(status, body)
        return json.loads(body.decode())

    async def shutdown_server(self) -> None:
        status, body = await self._call(protocol.SHUTDOWN)
        if status != protocol.OK:
            _raise_for(status, body)
