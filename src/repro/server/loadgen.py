"""YCSB-driven load generator for the sharded server.

Drives a running server over real TCP connections with the operation
streams produced by :mod:`repro.workloads.ycsb`, in one of two modes:

* ``pipelined=False`` — one blocking :class:`KVClient` per connection
  (one thread each), one request in flight per connection.  This is
  the baseline configuration of the serving benchmarks.
* ``pipelined=True`` — one :class:`AsyncKVClient` per connection with
  ``pipeline_depth`` coroutines issuing requests concurrently, so each
  connection keeps up to that many requests in flight.  Concurrent
  in-flight GETs are what the per-shard workers coalesce into
  :meth:`LSMTree.get_many` batches.

``run_benchmark`` wraps the whole experiment (start in-process server,
load keys, run the mix, collect a stats snapshot, drain) and is shared
by ``python -m repro.server bench`` and ``benchmarks/bench_server.py``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..workloads import ycsb
from ..workloads.keys import random_u64_keys
from .client import AsyncKVClient, KVClient, ServerOverloadedError
from .server import KVServer, ServerThread

#: Value stored for every PUT the generator issues.
DEFAULT_VALUE_SIZE = 100


@dataclass
class LoadResult:
    """Outcome of one load-generation run against a server."""

    workload: str
    mode: str  # "sync" | "pipelined"
    n_connections: int
    pipeline_depth: int
    ops_done: int
    elapsed: float
    overloads: int = 0
    #: OVERLOADED responses absorbed by client backoff (not failures).
    retries: int = 0
    server_stats: dict = field(default_factory=dict)
    shard_mode: str = "thread"

    @property
    def throughput(self) -> float:
        return self.ops_done / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "shard_mode": self.shard_mode,
            "n_connections": self.n_connections,
            "pipeline_depth": self.pipeline_depth,
            "ops_done": self.ops_done,
            "elapsed_s": self.elapsed,
            "throughput_ops_s": self.throughput,
            "overloads": self.overloads,
            "retries": self.retries,
            "server_stats": self.server_stats,
        }


def _apply_sync(client: KVClient, op: ycsb.Operation, value: bytes) -> None:
    if op.op == "read":
        client.get(op.key)
    elif op.op in ("update", "insert"):
        client.put(op.key, value)
    elif op.op == "scan":
        client.scan(op.key, op.scan_len or 50)
    else:
        raise ValueError(f"unsupported op {op.op!r}")


async def _apply_async(client: AsyncKVClient, op: ycsb.Operation, value: bytes) -> None:
    if op.op == "read":
        await client.get(op.key)
    elif op.op in ("update", "insert"):
        await client.put(op.key, value)
    elif op.op == "scan":
        await client.scan(op.key, op.scan_len or 50)
    else:
        raise ValueError(f"unsupported op {op.op!r}")


def run_sync_load(
    host: str,
    port: int,
    streams: Sequence[Sequence[ycsb.Operation]],
    value: bytes,
    duration: float | None = None,
) -> tuple[int, int, float]:
    """One blocking connection (thread) per stream; returns
    ``(ops_done, overloads, retries, elapsed)``.

    All connections are opened before the clock starts so the elapsed
    time covers steady-state request traffic only, in both modes.
    ``overloads`` counts operations that failed even after the client's
    bounded backoff; ``retries`` counts the refusals the backoff
    absorbed (those operations succeeded).
    """
    done = [0] * len(streams)
    overloads = [0] * len(streams)
    clients = [KVClient(host, port) for _ in streams]

    def worker(
        idx: int, client: KVClient, ops: Sequence[ycsb.Operation],
        deadline: float | None,
    ) -> None:
        for op in ops:
            if deadline is not None and time.perf_counter() >= deadline:
                return
            try:
                _apply_sync(client, op, value)
            except ServerOverloadedError:
                overloads[idx] += 1
                continue
            done[idx] += 1

    try:
        started = time.perf_counter()
        deadline = started + duration if duration is not None else None
        threads = [
            threading.Thread(
                target=worker, args=(i, client, ops, deadline), daemon=True
            )
            for i, (client, ops) in enumerate(zip(clients, streams))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        retries = sum(client.retries for client in clients)
    finally:
        for client in clients:
            client.close()
    return sum(done), sum(overloads), retries, elapsed


async def run_pipelined_load(
    host: str,
    port: int,
    streams: Sequence[Sequence[ycsb.Operation]],
    value: bytes,
    depth: int = 8,
    duration: float | None = None,
) -> tuple[int, int, float]:
    """One pipelined connection per stream, ``depth`` requests in
    flight each; returns ``(ops_done, overloads, retries, elapsed)``.

    Connections open before the clock starts (matching
    :func:`run_sync_load`); each connection's stream is pre-split into
    ``depth`` slices issued by concurrent coroutines.
    """
    done = [0] * len(streams)
    overloads = [0] * len(streams)
    clients = list(
        await asyncio.gather(
            *(AsyncKVClient.connect(host, port) for _ in streams)
        )
    )

    async def issue(
        idx: int,
        client: AsyncKVClient,
        my_ops: Sequence[ycsb.Operation],
        deadline: float | None,
    ) -> None:
        for op in my_ops:
            if deadline is not None and time.perf_counter() >= deadline:
                return
            try:
                await _apply_async(client, op, value)
            except ServerOverloadedError:
                overloads[idx] += 1
                continue
            done[idx] += 1

    try:
        started = time.perf_counter()
        deadline = started + duration if duration is not None else None
        await asyncio.gather(
            *(
                issue(i, client, piece, deadline)
                for i, (client, ops) in enumerate(zip(clients, streams))
                for piece in ycsb.partition(ops, depth)
            )
        )
        elapsed = time.perf_counter() - started
        retries = sum(client.retries for client in clients)
    finally:
        for client in clients:
            await client.close()
    return sum(done), sum(overloads), retries, elapsed


async def load_keys_async(
    host: str, port: int, keys: Sequence[bytes], value: bytes, depth: int = 64
) -> None:
    """Bulk-load the key set through one pipelined connection."""
    client = await AsyncKVClient.connect(host, port)
    slices = [keys[i::depth] for i in range(depth)]

    async def issue(my_keys: Sequence[bytes]) -> None:
        for key in my_keys:
            while True:
                try:
                    await client.put(key, value)
                    break
                except ServerOverloadedError:
                    await asyncio.sleep(0.005)

    try:
        await asyncio.gather(*(issue(s) for s in slices))
        await client.sync()
    finally:
        await client.close()


def run_benchmark(
    path: str,
    workload: str = "C",
    n_keys: int = 2000,
    n_ops: int = 5000,
    n_shards: int = 4,
    n_connections: int = 8,
    pipeline_depth: int = 8,
    pipelined: bool = True,
    duration: float | None = None,
    value_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 42,
    engine_config: dict | None = None,
    fs: Any = None,
    shard_mode: str = "thread",
) -> LoadResult:
    """Full serving experiment: start a server at ``path``, bulk-load,
    run the YCSB mix, snapshot stats, drain gracefully.

    With ``duration`` set, the operation streams are repeated until the
    deadline passes (so short CI runs and fixed-op benchmark runs share
    one code path).
    """
    keys = random_u64_keys(n_keys, seed=seed)
    plan = ycsb.generate(workload, keys, n_ops, seed=seed)
    value = b"v" * value_size

    server = KVServer(
        path,
        n_shards=n_shards,
        fs=fs,
        engine_config=engine_config or {},
        shard_mode=shard_mode,
    )
    runner = ServerThread(server).start()
    try:
        host, port = server.host, server.port
        asyncio.run(load_keys_async(host, port, plan.load_keys, value))

        operations = list(plan.operations)
        if duration is not None:
            # Repeat the mix enough to outlast the deadline.
            reps = 50
            operations = operations * reps
        streams = ycsb.partition(operations, n_connections)

        if pipelined:
            ops_done, overloads, retries, elapsed = asyncio.run(
                run_pipelined_load(
                    host, port, streams, value,
                    depth=pipeline_depth, duration=duration,
                )
            )
        else:
            ops_done, overloads, retries, elapsed = run_sync_load(
                host, port, streams, value, duration=duration
            )

        with KVClient(host, port) as client:
            stats = client.stats()
    finally:
        runner.stop()

    return LoadResult(
        workload=workload,
        mode="pipelined" if pipelined else "sync",
        n_connections=n_connections,
        pipeline_depth=pipeline_depth if pipelined else 1,
        ops_done=ops_done,
        elapsed=elapsed,
        overloads=overloads,
        retries=retries,
        server_stats=stats,
        shard_mode=shard_mode,
    )
