"""Serving-layer counters: latency histograms, coalescing, backpressure.

Workers update these from their own threads, so every mutator takes the
stats lock; the costs are two dict updates per request, which is noise
next to a network round trip.  :meth:`ServerStats.snapshot` folds in
the per-shard engine counters (block cache, filter probes, queue
depths) so one STATS request describes the whole process.
"""

from __future__ import annotations

import threading
from typing import Any


class LatencyHistogram:
    """Power-of-two microsecond buckets: cheap, mergeable, quantile-able.

    Bucket ``i`` counts samples in ``[2**i, 2**(i+1))`` microseconds
    (bucket 0 absorbs sub-microsecond samples).  28 buckets reach ~2.2
    minutes, far beyond any sane request latency.
    """

    N_BUCKETS = 28

    def __init__(self) -> None:
        self.buckets = [0] * self.N_BUCKETS
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        micros = max(int(seconds * 1e6), 0)
        self.buckets[min(micros.bit_length(), self.N_BUCKETS - 1)] += 1
        self.count += 1
        self.total_seconds += seconds

    def quantile_us(self, q: float) -> float:
        """Upper edge (µs) of the bucket holding the q-quantile sample."""
        if not self.count:
            return 0.0
        target = max(int(self.count * q), 1)
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return float(1 << i)
        return float(1 << (self.N_BUCKETS - 1))

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_us": (self.total_seconds / self.count * 1e6) if self.count else 0.0,
            "p50_us": self.quantile_us(0.50),
            "p99_us": self.quantile_us(0.99),
            "buckets": list(self.buckets),
        }


class _BatchSizeStat:
    """Count/sum/max of coalesced batch sizes (one sample per engine call)."""

    def __init__(self) -> None:
        self.calls = 0
        self.items = 0
        self.max_size = 0

    def record(self, size: int) -> None:
        self.calls += 1
        self.items += size
        self.max_size = max(self.max_size, size)

    @property
    def mean(self) -> float:
        return self.items / self.calls if self.calls else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "items": self.items,
            "mean": self.mean,
            "max": self.max_size,
        }


class ServerStats:
    """Process-wide serving counters, safe to update from any thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ops: dict[str, int] = {}
        self.latency: dict[str, LatencyHistogram] = {}
        self.coalesced_gets = _BatchSizeStat()
        self.coalesced_writes = _BatchSizeStat()
        self.queue_high_water: dict[int, int] = {}
        self.overloads = 0
        self.errors = 0
        self.connections_opened = 0
        self.connections_closed = 0

    # -- mutators (worker / server threads) --------------------------------

    def record_op(self, op: str, seconds: float) -> None:
        with self._lock:
            self.ops[op] = self.ops.get(op, 0) + 1
            hist = self.latency.get(op)
            if hist is None:
                hist = self.latency[op] = LatencyHistogram()
            hist.record(seconds)

    def record_get_batch(self, size: int) -> None:
        with self._lock:
            self.coalesced_gets.record(size)

    def record_write_batch(self, size: int) -> None:
        with self._lock:
            self.coalesced_writes.record(size)

    def record_queue_depth(self, shard_id: int, depth: int) -> None:
        with self._lock:
            if depth > self.queue_high_water.get(shard_id, 0):
                self.queue_high_water[shard_id] = depth

    def record_overload(self) -> None:
        with self._lock:
            self.overloads += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_connection(self, opened: bool) -> None:
        with self._lock:
            if opened:
                self.connections_opened += 1
            else:
                self.connections_closed += 1

    # -- snapshot ----------------------------------------------------------

    def snapshot(self, per_shard: list[dict[str, Any]] | None = None) -> dict[str, Any]:
        """One JSON-ready view of the serving layer and its engines.

        ``per_shard`` carries the shard entries collected via each
        worker's ``info`` op (see ``ShardWorker.snapshot_info``) — the
        stats object no longer reaches into engines directly, which is
        what lets process shards answer STATS over their RPC pipe.
        """
        with self._lock:
            out: dict[str, Any] = {
                "ops": dict(self.ops),
                "total_ops": sum(self.ops.values()),
                "latency": {op: h.to_dict() for op, h in self.latency.items()},
                "coalesced_gets": self.coalesced_gets.to_dict(),
                "coalesced_writes": self.coalesced_writes.to_dict(),
                "queue_high_water": dict(self.queue_high_water),
                "overloads": self.overloads,
                "errors": self.errors,
                "connections": {
                    "opened": self.connections_opened,
                    "closed": self.connections_closed,
                },
            }
        if per_shard is not None:
            out["shards"] = per_shard
        return out
