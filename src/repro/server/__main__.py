"""CLI: ``python -m repro.server`` — serve or benchmark the KV server.

Subcommands:

* ``serve`` — run a sharded server until SIGINT/SIGTERM, then drain
  gracefully (every acknowledged write is synced before exit)::

      python -m repro.server serve --path /tmp/kv --shards 4 --port 4440

* ``bench`` — start an in-process server, drive it with a YCSB mix
  through the pipelined (or blocking) client, print a JSON summary::

      python -m repro.server bench --workload C --shards 2 --duration 5
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import tempfile

from .loadgen import run_benchmark
from .server import KVServer


async def _serve(args: argparse.Namespace) -> int:
    server = KVServer(
        args.path,
        n_shards=args.shards,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        shard_mode=args.shard_mode,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            # Fallback: a plain signal handler runs between bytecodes on
            # the main thread, where this loop lives, so requesting the
            # drain directly is safe.
            signal.signal(sig, lambda *_: server.request_shutdown())
    print(
        f"serving {args.shards} {args.shard_mode} shard(s) at {args.path} "
        f"on {server.host}:{server.port}",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        # Signal-safe shutdown: whatever interrupted the wait — a
        # KeyboardInterrupt that raced the handler installation, an
        # exception mid-serve — the drain-and-sync path runs before the
        # loop is torn down (shutdown() is idempotent, and with process
        # shards it also reaps every child).
        await server.shutdown()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        code = asyncio.run(_serve(args))
    except KeyboardInterrupt:
        # The drain already ran in _serve's finally; the interrupt
        # simply unwound the loop afterwards.
        code = 0
    print("drained and closed", flush=True)
    return code


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.path is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-server-bench-")
        path = tmp.name
    else:
        tmp = None
        path = args.path
    try:
        result = run_benchmark(
            path,
            workload=args.workload,
            n_keys=args.keys,
            n_ops=args.ops,
            n_shards=args.shards,
            n_connections=args.connections,
            pipeline_depth=args.depth,
            pipelined=not args.no_pipeline,
            duration=args.duration,
            seed=args.seed,
            shard_mode=args.shard_mode,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    payload = result.to_dict()
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if result.ops_done <= 0:
        print("FAIL: zero throughput", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.server")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a sharded KV server")
    serve.add_argument("--path", required=True, help="root data directory")
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=4440)
    serve.add_argument("--queue-limit", type=int, default=1024)
    serve.add_argument("--shard-mode", choices=("thread", "process"),
                       default="thread",
                       help="worker threads (GIL-bound) or one process per shard")
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser("bench", help="YCSB benchmark against a fresh server")
    bench.add_argument("--workload", default="C", help="YCSB mix (A/B/C/E)")
    bench.add_argument("--path", default=None, help="data dir (default: temp dir)")
    bench.add_argument("--shards", type=int, default=4)
    bench.add_argument("--keys", type=int, default=2000)
    bench.add_argument("--ops", type=int, default=5000)
    bench.add_argument("--connections", type=int, default=8)
    bench.add_argument("--depth", type=int, default=8, help="pipeline depth")
    bench.add_argument("--duration", type=float, default=None, help="seconds")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--no-pipeline", action="store_true",
                       help="blocking client, one request in flight per connection")
    bench.add_argument("--stats-out", default=None, help="write JSON summary here")
    bench.add_argument("--shard-mode", choices=("thread", "process"),
                       default="thread",
                       help="worker threads (GIL-bound) or one process per shard")
    bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
