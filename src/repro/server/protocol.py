"""Wire protocol of the sharded key-value server.

Every message — request or response — is one length-prefixed frame::

    <u32 payload_len> <payload>

    request payload:  <u32 request_id> <u8 opcode> <body>
    response payload: <u32 request_id> <u8 status> <body>

The request id is chosen by the client and echoed verbatim; the server
answers each connection's requests *in arrival order*, so a pipelined
client may keep any number of requests in flight and match responses
positionally (the echoed id is a cheap integrity check).

Bodies reuse the storage codecs from :mod:`repro.lsm.disk_format`
(length-prefixed byte strings and the typed value codec), so anything
the engine can store travels the wire unchanged:

========== ============================== ===============================
opcode     request body                   OK response body
========== ============================== ===============================
GET        key                            value (NOT_FOUND if absent)
PUT        key value                      —
DELETE     key                            —
SCAN       low u32(count)                 u32(n) n*(key value)
COUNT      low high                       u64(count)  (approximate)
BATCH_GET  u32(n) n*key                   u32(n) n*(u8 present [value])
SYNC       —                              —
STATS      —                              UTF-8 JSON blob
SHUTDOWN   —                              — (server drains and exits)
REPL_APPLY u64(term) u32(shard) frames    u64(durable_seq of that shard)
WATERMARK  —                              u8(primary) u64(term)
                                          u32(n) n*(u32 shard,
                                          u64 disp, u64 appl)
GET_AT     key u64(min_seq)               value (LAGGING if behind)
PROMOTE    — | u64(new_term)              u64(term)
SNAP_BEGIN u64(term) u32(shard) json_doc  —
SNAP_CHUNK u64(term) u32(shard) name      —
           u64(offset) data
SNAP_COMMIT u64(term) u32(shard)          u64(snap_seq)
           u64(snap_seq)
MIGRATE    u32(shard) dst_group u32(n)    u64(handoff_seq)
           n*(host u32(port))
MIGRATE_COMMIT u32(shard) u64(seq)        —
SHARD_DETACH u32(shard) fwd_group         —
LEASE      u64(term) u32(ttl_ms)          —
========== ============================== ===============================

Non-OK statuses carry a UTF-8 message body.  ``OVERLOADED`` is the
explicit backpressure answer (a bounded shard queue was full);
``SHUTTING_DOWN`` answers requests that arrive during the drain.

Cluster extensions (PR 9): ``PUT``/``DELETE`` OK responses carry the
committed ``u64`` sequence number as the body — the causal token a
client hands to ``GET_AT`` to get read-your-writes on a follower.
``REPL_APPLY`` ships verbatim :mod:`repro.lsm.wal` frames to a
follower shard; ``LAGGING`` means the follower has not yet applied the
requested sequence, and ``NOT_PRIMARY`` rejects writes sent to a
follower.  Older clients that never send the new opcodes are
unaffected except for the now non-empty write-ack body, which they
ignored anyway.

Membership extensions (PR 10): shards live in a *global* shard space
(``route_key(key, n_shards)`` names the same shard on every node) and
a node may host only a subset.  ``NOT_OWNER`` answers an operation on
a shard this node does not serve; its body names the owning group when
known, and :class:`~repro.cluster.client.ClusterClient` re-routes and
retries.  Replication messages carry the group's election *term*;
``FENCED`` rejects a message from a stale term, which is what makes a
deposed primary's stream die loudly instead of silently forking a
follower.  ``SNAP_BEGIN``/``SNAP_CHUNK``/``SNAP_COMMIT`` ship a pinned
engine snapshot (manifest layout + SSTable bytes, CRC-checked per
file) to bootstrap a lagging, empty, or migrating-in shard;
``MIGRATE`` drives the source side of a live shard migration,
``MIGRATE_COMMIT``/``SHARD_DETACH`` flip ownership, and ``LEASE`` is
the primary's heartbeat that lease-based election watches.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from ..lsm import disk_format

# -- opcodes -----------------------------------------------------------------

GET = 1
PUT = 2
DELETE = 3
SCAN = 4
COUNT = 5
BATCH_GET = 6
SYNC = 7
STATS = 8
SHUTDOWN = 9
REPL_APPLY = 10
WATERMARK = 11
GET_AT = 12
PROMOTE = 13
SNAP_BEGIN = 14
SNAP_CHUNK = 15
SNAP_COMMIT = 16
MIGRATE = 17
MIGRATE_COMMIT = 18
SHARD_DETACH = 19
LEASE = 20

OP_NAMES = {
    GET: "get",
    PUT: "put",
    DELETE: "delete",
    SCAN: "scan",
    COUNT: "count",
    BATCH_GET: "batch_get",
    SYNC: "sync",
    STATS: "stats",
    SHUTDOWN: "shutdown",
    REPL_APPLY: "repl_apply",
    WATERMARK: "watermark",
    GET_AT: "get_at",
    PROMOTE: "promote",
    SNAP_BEGIN: "snap_begin",
    SNAP_CHUNK: "snap_chunk",
    SNAP_COMMIT: "snap_commit",
    MIGRATE: "migrate",
    MIGRATE_COMMIT: "migrate_commit",
    SHARD_DETACH: "shard_detach",
    LEASE: "lease",
}

# -- response statuses -------------------------------------------------------

OK = 0
NOT_FOUND = 1
OVERLOADED = 2
BAD_REQUEST = 3
SHUTTING_DOWN = 4
ERROR = 5
LAGGING = 6
NOT_PRIMARY = 7
NOT_OWNER = 8
FENCED = 9

STATUS_NAMES = {
    OK: "ok",
    NOT_FOUND: "not_found",
    OVERLOADED: "overloaded",
    BAD_REQUEST: "bad_request",
    SHUTTING_DOWN: "shutting_down",
    ERROR: "error",
    LAGGING: "lagging",
    NOT_PRIMARY: "not_primary",
    NOT_OWNER: "not_owner",
    FENCED: "fenced",
}

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_HEADER = struct.Struct("<IB")  # request_id, opcode/status

#: Upper bound on a single frame; a peer announcing more is corrupt or
#: hostile and the connection is dropped rather than the buffer grown.
MAX_FRAME_BYTES = 64 << 20


class ProtocolError(ValueError):
    """A malformed frame, body, or oversized length prefix."""


# -- framing -----------------------------------------------------------------


def frame(request_id: int, code: int, body: bytes = b"") -> bytes:
    """One wire frame (works for requests and responses alike)."""
    payload_len = _HEADER.size + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {payload_len} bytes exceeds MAX_FRAME_BYTES")
    return _U32.pack(payload_len) + _HEADER.pack(request_id, code) + body


def parse_payload(payload: bytes) -> tuple[int, int, bytes]:
    """Split a frame payload into (request_id, opcode/status, body)."""
    if len(payload) < _HEADER.size:
        raise ProtocolError("truncated frame payload")
    request_id, code = _HEADER.unpack_from(payload)
    return request_id, code, payload[_HEADER.size :]


def parse_length(prefix: bytes) -> int:
    """Decode and bound-check the 4-byte length prefix."""
    (length,) = _U32.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"announced frame of {length} bytes rejected")
    if length < _HEADER.size:
        raise ProtocolError("frame shorter than its header")
    return length


# -- request bodies ----------------------------------------------------------


def encode_key(key: bytes) -> bytes:
    return disk_format.pack_bytes(key)


def decode_key(body: bytes) -> bytes:
    key, off = disk_format.unpack_bytes(body, 0)
    if off != len(body):
        raise ProtocolError("trailing bytes after key")
    return key


def encode_key_value(key: bytes, value: Any) -> bytes:
    return disk_format.pack_bytes(key) + disk_format.pack_bytes(
        disk_format.encode_value(value)
    )


def decode_key_value(body: bytes) -> tuple[bytes, Any]:
    key, off = disk_format.unpack_bytes(body, 0)
    raw, off = disk_format.unpack_bytes(body, off)
    if off != len(body):
        raise ProtocolError("trailing bytes after value")
    return key, disk_format.decode_value(raw)


def encode_scan(low: bytes, count: int) -> bytes:
    return disk_format.pack_bytes(low) + _U32.pack(count)


def decode_scan(body: bytes) -> tuple[bytes, int]:
    low, off = disk_format.unpack_bytes(body, 0)
    if off + 4 != len(body):
        raise ProtocolError("bad scan body")
    (count,) = _U32.unpack_from(body, off)
    return low, count


def encode_range(low: bytes, high: bytes) -> bytes:
    return disk_format.pack_bytes(low) + disk_format.pack_bytes(high)


def decode_range(body: bytes) -> tuple[bytes, bytes]:
    low, off = disk_format.unpack_bytes(body, 0)
    high, off = disk_format.unpack_bytes(body, off)
    if off != len(body):
        raise ProtocolError("trailing bytes after range")
    return low, high


def encode_keys(keys: Sequence[bytes]) -> bytes:
    out = bytearray(_U32.pack(len(keys)))
    for key in keys:
        out += disk_format.pack_bytes(key)
    return bytes(out)


def decode_keys(body: bytes) -> list[bytes]:
    if len(body) < 4:
        raise ProtocolError("truncated key batch")
    (n,) = _U32.unpack_from(body, 0)
    off = 4
    keys = []
    for _ in range(n):
        key, off = disk_format.unpack_bytes(body, off)
        keys.append(key)
    if off != len(body):
        raise ProtocolError("trailing bytes after key batch")
    return keys


# -- response bodies ---------------------------------------------------------


def encode_value_body(value: Any) -> bytes:
    return disk_format.encode_value(value)


def decode_value_body(body: bytes) -> Any:
    return disk_format.decode_value(body)


def encode_pairs(pairs: Sequence[tuple[bytes, Any]]) -> bytes:
    out = bytearray(_U32.pack(len(pairs)))
    for key, value in pairs:
        out += disk_format.pack_bytes(key)
        out += disk_format.pack_bytes(disk_format.encode_value(value))
    return bytes(out)


def decode_pairs(body: bytes) -> list[tuple[bytes, Any]]:
    (n,) = _U32.unpack_from(body, 0)
    off = 4
    pairs = []
    for _ in range(n):
        key, off = disk_format.unpack_bytes(body, off)
        raw, off = disk_format.unpack_bytes(body, off)
        pairs.append((key, disk_format.decode_value(raw)))
    if off != len(body):
        raise ProtocolError("trailing bytes after pairs")
    return pairs


def encode_u64_body(n: int) -> bytes:
    return _U64.pack(n)


def decode_u64_body(body: bytes) -> int:
    if len(body) != 8:
        raise ProtocolError("bad u64 body")
    return _U64.unpack(body)[0]


def encode_repl_apply(term: int, shard: int, frames: bytes) -> bytes:
    """REPL_APPLY request: the sender's term, the target shard, plus
    verbatim WAL frames (already CRC-framed by
    :mod:`repro.lsm.disk_format`, so no extra length prefix is needed —
    the follower decodes them strictly)."""
    return _U64.pack(term) + _U32.pack(shard) + frames


def decode_repl_apply(body: bytes) -> tuple[int, int, bytes]:
    if len(body) < 12:
        raise ProtocolError("truncated repl_apply body")
    (term,) = _U64.unpack_from(body, 0)
    (shard,) = _U32.unpack_from(body, 8)
    return term, shard, body[12:]


def encode_get_at(key: bytes, min_seq: int) -> bytes:
    return disk_format.pack_bytes(key) + _U64.pack(min_seq)


def decode_get_at(body: bytes) -> tuple[bytes, int]:
    key, off = disk_format.unpack_bytes(body, 0)
    if off + 8 != len(body):
        raise ProtocolError("bad get_at body")
    (min_seq,) = _U64.unpack_from(body, off)
    return key, min_seq


def encode_watermarks(
    is_primary: bool, term: int, marks: dict[int, tuple[int, int]]
) -> bytes:
    """WATERMARK response: the node's role and term, then per *hosted*
    shard (dispatched, applied) — the highest sequence this follower
    has accepted into its apply queue and the highest durably applied
    one.  The primary resumes shipping from ``dispatched + 1`` (never
    lower: re-sending an already-queued record would double-apply it).
    Shard ids travel explicitly: a node may host any subset of the
    global shard space."""
    out = bytearray()
    out += b"\x01" if is_primary else b"\x00"
    out += _U64.pack(term)
    out += _U32.pack(len(marks))
    for shard in sorted(marks):
        dispatched, applied = marks[shard]
        out += _U32.pack(shard)
        out += _U64.pack(dispatched)
        out += _U64.pack(applied)
    return bytes(out)


def decode_watermarks(body: bytes) -> tuple[bool, int, dict[int, tuple[int, int]]]:
    if len(body) < 13:
        raise ProtocolError("truncated watermark body")
    is_primary = body[0] != 0
    (term,) = _U64.unpack_from(body, 1)
    (n,) = _U32.unpack_from(body, 9)
    if len(body) != 13 + 20 * n:
        raise ProtocolError("bad watermark body")
    off = 13
    marks: dict[int, tuple[int, int]] = {}
    for _ in range(n):
        shard, dispatched, applied = struct.unpack_from("<IQQ", body, off)
        off += 20
        marks[shard] = (dispatched, applied)
    return is_primary, term, marks


def encode_maybe_values(values: Sequence[Any], missing: object) -> bytes:
    """BATCH_GET response: a presence flag plus the value when present."""
    out = bytearray(_U32.pack(len(values)))
    for value in values:
        if value is missing:
            out += b"\x00"
        else:
            out += b"\x01"
            out += disk_format.pack_bytes(disk_format.encode_value(value))
    return bytes(out)


# -- membership bodies (PR 10) -----------------------------------------------


def encode_promote(new_term: int | None = None) -> bytes:
    """PROMOTE request: empty keeps the old "bump my term by one"
    behaviour; a u64 adopts exactly that term (election uses the
    highest term observed among live peers, plus one)."""
    return b"" if new_term is None else _U64.pack(new_term)


def decode_promote(body: bytes) -> int | None:
    if not body:
        return None
    if len(body) != 8:
        raise ProtocolError("bad promote body")
    return _U64.unpack(body)[0]


def encode_snap_begin(term: int, shard: int, doc: bytes) -> bytes:
    """SNAP_BEGIN request: the snapshot manifest document (UTF-8 JSON,
    see :mod:`repro.cluster.membership`) announcing every file about to
    be chunked over, with sizes and CRCs."""
    return _U64.pack(term) + _U32.pack(shard) + doc


def decode_snap_begin(body: bytes) -> tuple[int, int, bytes]:
    if len(body) < 12:
        raise ProtocolError("truncated snap_begin body")
    (term,) = _U64.unpack_from(body, 0)
    (shard,) = _U32.unpack_from(body, 8)
    return term, shard, body[12:]


def encode_snap_chunk(
    term: int, shard: int, name: str, offset: int, data: bytes
) -> bytes:
    return (
        _U64.pack(term)
        + _U32.pack(shard)
        + disk_format.pack_bytes(name.encode("utf-8"))
        + _U64.pack(offset)
        + data
    )


def decode_snap_chunk(body: bytes) -> tuple[int, int, str, int, bytes]:
    if len(body) < 12:
        raise ProtocolError("truncated snap_chunk body")
    (term,) = _U64.unpack_from(body, 0)
    (shard,) = _U32.unpack_from(body, 8)
    raw, off = disk_format.unpack_bytes(body, 12)
    if off + 8 > len(body):
        raise ProtocolError("truncated snap_chunk body")
    (offset,) = _U64.unpack_from(body, off)
    return term, shard, raw.decode("utf-8"), offset, body[off + 8 :]


def encode_snap_commit(term: int, shard: int, snap_seq: int) -> bytes:
    return _U64.pack(term) + _U32.pack(shard) + _U64.pack(snap_seq)


def decode_snap_commit(body: bytes) -> tuple[int, int, int]:
    if len(body) != 20:
        raise ProtocolError("bad snap_commit body")
    (term,) = _U64.unpack_from(body, 0)
    (shard,) = _U32.unpack_from(body, 8)
    (snap_seq,) = _U64.unpack_from(body, 12)
    return term, shard, snap_seq


def encode_migrate(
    shard: int, dst_group: str, targets: Sequence[tuple[str, int]]
) -> bytes:
    """MIGRATE request (to the source primary): move ``shard`` to
    ``dst_group``, shipping snapshot + delta to every target node."""
    out = bytearray(_U32.pack(shard))
    out += disk_format.pack_bytes(dst_group.encode("utf-8"))
    out += _U32.pack(len(targets))
    for host, port in targets:
        out += disk_format.pack_bytes(host.encode("utf-8"))
        out += _U32.pack(port)
    return bytes(out)


def decode_migrate(body: bytes) -> tuple[int, str, list[tuple[str, int]]]:
    if len(body) < 4:
        raise ProtocolError("truncated migrate body")
    (shard,) = _U32.unpack_from(body, 0)
    raw, off = disk_format.unpack_bytes(body, 4)
    dst_group = raw.decode("utf-8")
    if off + 4 > len(body):
        raise ProtocolError("truncated migrate body")
    (n,) = _U32.unpack_from(body, off)
    off += 4
    targets = []
    for _ in range(n):
        raw, off = disk_format.unpack_bytes(body, off)
        if off + 4 > len(body):
            raise ProtocolError("truncated migrate body")
        (port,) = _U32.unpack_from(body, off)
        off += 4
        targets.append((raw.decode("utf-8"), port))
    if off != len(body):
        raise ProtocolError("trailing bytes after migrate body")
    return shard, dst_group, targets


def encode_migrate_commit(shard: int, handoff_seq: int) -> bytes:
    return _U32.pack(shard) + _U64.pack(handoff_seq)


def decode_migrate_commit(body: bytes) -> tuple[int, int]:
    if len(body) != 12:
        raise ProtocolError("bad migrate_commit body")
    (shard,) = _U32.unpack_from(body, 0)
    (handoff_seq,) = _U64.unpack_from(body, 4)
    return shard, handoff_seq


def encode_shard_detach(shard: int, forward_group: str) -> bytes:
    """SHARD_DETACH request: drop ``shard``; remember ``forward_group``
    so late clients get a NOT_OWNER redirect instead of a dead end."""
    return _U32.pack(shard) + disk_format.pack_bytes(forward_group.encode("utf-8"))


def decode_shard_detach(body: bytes) -> tuple[int, str]:
    if len(body) < 4:
        raise ProtocolError("truncated shard_detach body")
    (shard,) = _U32.unpack_from(body, 0)
    raw, off = disk_format.unpack_bytes(body, 4)
    if off != len(body):
        raise ProtocolError("trailing bytes after shard_detach body")
    return shard, raw.decode("utf-8")


def encode_lease(term: int, ttl_ms: int) -> bytes:
    return _U64.pack(term) + _U32.pack(ttl_ms)


def decode_lease(body: bytes) -> tuple[int, int]:
    if len(body) != 12:
        raise ProtocolError("bad lease body")
    (term,) = _U64.unpack_from(body, 0)
    (ttl_ms,) = _U32.unpack_from(body, 8)
    return term, ttl_ms


def decode_maybe_values(body: bytes, missing: Any = None) -> list[Any]:
    (n,) = _U32.unpack_from(body, 0)
    off = 4
    values: list[Any] = []
    for _ in range(n):
        flag = body[off]
        off += 1
        if flag == 0:
            values.append(missing)
        else:
            raw, off = disk_format.unpack_bytes(body, off)
            values.append(disk_format.decode_value(raw))
    if off != len(body):
        raise ProtocolError("trailing bytes after value batch")
    return values
