"""Per-shard single-writer workers: queueing, coalescing, group commit.

Each shard owns one durable :class:`~repro.lsm.engine.LSMTree` and one
worker thread — the only thread that ever touches the engine, which
gives single-writer semantics without engine-side locking.  Requests
arrive through a *bounded* queue; a full queue is reported to the
caller synchronously (the server answers ``OVERLOADED``) instead of
buffering without limit.

The worker drains its queue in bursts and coalesces adjacent requests
of the same class, preserving arrival order across classes:

* a run of reads becomes **one** :meth:`LSMTree.get_many` call — under
  concurrent load the queue naturally accumulates in-flight GETs, so
  network concurrency feeds the PR 3 batch kernels without any client
  cooperation;
* a run of writes becomes **one** :meth:`LSMTree.write_batch` call —
  a single WAL group commit fsync acknowledges the whole run.

Splitting at class boundaries is what makes coalescing sound: a GET
pipelined after a PUT of the same key on one connection enters the
queue in order and is answered from post-write state.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from ..lsm.sstable import TOMBSTONE  # noqa: F401  (re-exported for the server)
from .stats import ServerStats

#: Largest number of requests drained in one burst.  Bounds the latency
#: a first-in request can accrue while the worker packs its batch.
MAX_BURST = 256

_SHUTDOWN = object()


class ShardDown(RuntimeError):
    """The shard's worker (thread or process) is dead; the request was
    refused immediately instead of queueing forever."""


class WorkerCrash(BaseException):
    """Internal: the shard's backing *process* died (broken pipe).

    Deliberately a :class:`BaseException`: per-request ``except
    Exception`` handlers must not swallow it — it has to escape to the
    worker loop's defensive handler, which marks the shard dead and
    fails everything queued.  It never reaches request futures (they
    get :class:`ShardDown`)."""


class ShardRequest:
    """One queued engine operation plus its completion plumbing.

    ``op`` is one of ``get`` (args: list of keys), ``write`` (args:
    list of ``(key, value)`` with TOMBSTONE for deletes), ``scan``
    (args: ``(low, count)``), ``count`` (args: ``(low, high)``), or
    ``sync``.  The result (or exception) is delivered to ``future`` on
    ``loop`` via ``call_soon_threadsafe``.
    """

    __slots__ = ("op", "args", "future", "loop", "enqueued_at")

    def __init__(self, op: str, args: Any, future: Any, loop: Any) -> None:
        self.op = op
        self.args = args
        self.future = future
        self.loop = loop
        self.enqueued_at = time.perf_counter()


class ShardWorker(threading.Thread):
    """The single thread allowed to touch one shard's engine."""

    def __init__(
        self,
        shard_id: int,
        engine: Any,
        stats: ServerStats,
        queue_limit: int = 1024,
        max_burst: int = MAX_BURST,
    ) -> None:
        super().__init__(name=f"shard-{shard_id}", daemon=True)
        self.shard_id = shard_id
        self.engine = engine
        self.stats = stats
        self.queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self.max_burst = max_burst
        self.closed = threading.Event()
        #: Exception (if any) that killed the worker loop itself;
        #: per-request engine errors are delivered to their futures.
        self.worker_error: BaseException | None = None
        #: Set when the worker loop died abnormally.  A dead shard
        #: refuses new submissions with :class:`ShardDown` instead of
        #: accepting enqueues nothing will ever drain.
        self.dead = False
        #: Set by stop(): the drain sentinel is (about to be) queued,
        #: so new submissions may never be served — the STATS path
        #: falls back to basic liveness info instead of submitting.
        self.stopping = False

    # -- producer side (event-loop thread) ---------------------------------

    def submit(self, request: ShardRequest) -> bool:
        """Enqueue; False means the bounded queue is full (backpressure).

        Raises :class:`ShardDown` when the worker has died — the caller
        answers with an error reply immediately rather than leaving the
        client waiting on a queue no worker drains.
        """
        if self.dead:
            raise ShardDown(self._down_message())
        try:
            self.queue.put_nowait(request)
        except queue.Full:
            return False
        if self.dead:
            # The worker died between the check above and the enqueue;
            # its death-drain may already have passed our request by.
            # Sweep again — failing an already-failed future is a no-op.
            self._drain_dead()
            raise ShardDown(self._down_message())
        self.stats.record_queue_depth(self.shard_id, self.queue.qsize())
        return True

    def _down_message(self) -> str:
        return f"shard {self.shard_id} is down: {self.worker_error!r}"

    def stop(self) -> None:
        """Ask the worker to drain everything queued so far, sync the
        engine, close it, and exit.  Blocking put: the worker is still
        consuming, so space always frees up."""
        self.stopping = True
        if self.dead:
            return  # death path already drained and cleaned up
        self.queue.put(_SHUTDOWN)

    # -- consumer side (this thread) ---------------------------------------

    def run(self) -> None:
        burst: list[Any] = []
        try:
            while True:
                burst = [self.queue.get()]
                while len(burst) < self.max_burst:
                    try:
                        burst.append(self.queue.get_nowait())
                    except queue.Empty:
                        break
                if self._process_burst(burst):
                    return
                burst = []
        except BaseException as exc:  # defensive: loop must never leak silently
            self.worker_error = exc
            self.dead = True
            # Fail whatever was mid-burst (already-completed futures
            # ignore a second delivery) and everything still queued,
            # then keep refusing in submit() — clients get an error
            # reply instead of hanging forever.
            down = ShardDown(self._down_message())
            for item in burst:
                if item is not _SHUTDOWN:
                    self._fail(item, down)
            self._drain_dead()
            self._cleanup()

    def _drain_dead(self) -> None:
        """Fail everything queued on a dead shard (idempotent)."""
        down = ShardDown(self._down_message())
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SHUTDOWN:
                self._fail(item, down)

    def _process_burst(self, burst: list[Any]) -> bool:
        """Handle one drained burst; True when shutdown was reached."""
        i = 0
        while i < len(burst):
            item = burst[i]
            if item is _SHUTDOWN:
                # Everything after the sentinel was enqueued during the
                # drain window; refuse it explicitly.
                for late in burst[i + 1 :]:
                    if late is not _SHUTDOWN:
                        self._fail(late, RuntimeError("shard is shut down"))
                self._cleanup()
                return True
            run = [item]
            i += 1
            if item.op in ("get", "write"):
                while i < len(burst) and burst[i] is not _SHUTDOWN and burst[i].op == item.op:
                    run.append(burst[i])
                    i += 1
            if item.op == "get":
                self._do_gets(run)
            elif item.op == "write":
                self._do_writes(run)
            else:
                self._do_single(item)
        return False

    def _do_gets(self, run: list[ShardRequest]) -> None:
        keys: list[bytes] = []
        spans: list[tuple[int, int]] = []
        for item in run:
            spans.append((len(keys), len(item.args)))
            keys.extend(item.args)
        try:
            values = self.engine.get_many(keys)
        except Exception as exc:
            for item in run:
                self._fail(item, exc)
            return
        self.stats.record_get_batch(len(keys))
        self._complete_many(
            [(item, values[start : start + n]) for item, (start, n) in zip(run, spans)]
        )

    def _do_writes(self, run: list[ShardRequest]) -> None:
        entries: list[tuple[bytes, Any]] = []
        for item in run:
            entries.extend(item.args)
        try:
            # One write_batch == one WAL group commit: a single fsync
            # acknowledges every write in the run.
            ret = self.engine.write_batch(entries)
        except Exception as exc:
            for item in run:
                self._fail(item, exc)
            return
        self.stats.record_write_batch(len(entries))
        # Every request in the run is acknowledged at the run's final
        # sequence number — the batch committed atomically, so that seq
        # is a valid (if conservative) causal token for each of them.
        last_seq = ret if isinstance(ret, int) else getattr(self.engine, "last_seq", 0)
        self._complete_many([(item, last_seq) for item in run])

    def _do_single(self, item: ShardRequest) -> None:
        try:
            if item.op == "scan":
                low, count = item.args
                result: Any = self.engine.scan(low, count)
            elif item.op == "count":
                low, high = item.args
                result = self.engine.count(low, high)
            elif item.op == "sync":
                self.engine.sync()
                result = None
            elif item.op == "info":
                # Engine detail for STATS, answered on the worker thread
                # so it never races the engine (or, for process shards,
                # the RPC pipe).
                result = self.snapshot_info(engine=True)
            else:
                raise ValueError(f"unknown shard op {item.op!r}")
        except Exception as exc:
            self._fail(item, exc)
            return
        self._complete(item, result)

    def _cleanup(self) -> None:
        """Final sync + close; engine errors (e.g. an injected power
        failure froze the filesystem, or a dead shard process raising
        WorkerCrash) must not block the drain."""
        try:
            self.engine.sync()
        except (Exception, WorkerCrash):
            pass
        try:
            self.engine.close()
        except (Exception, WorkerCrash):
            pass
        self.closed.set()

    # -- introspection -----------------------------------------------------

    def snapshot_info(self, engine: bool = False) -> dict[str, Any]:
        """Per-shard STATS entry.  ``engine=True`` adds engine counters
        and must only run on the worker thread (via the ``info`` op)."""
        info: dict[str, Any] = {
            "shard": self.shard_id,
            "alive": self.is_alive() and not self.dead,
            "worker_error": repr(self.worker_error) if self.worker_error else None,
            "queue_depth": self.queue.qsize(),
        }
        if engine:
            try:
                info.update(self.engine.info())
            except Exception as exc:
                info["engine_error"] = repr(exc)
        return info

    # -- completion plumbing ----------------------------------------------

    def _complete(self, item: ShardRequest, result: Any) -> None:
        self.stats.record_op(
            f"shard_{item.op}", time.perf_counter() - item.enqueued_at
        )
        self._deliver(item, lambda fut: fut.set_result(result))

    def _complete_many(self, completed: list[tuple[ShardRequest, Any]]) -> None:
        """Deliver a whole coalesced run with ONE loop wakeup per event
        loop — per-future ``call_soon_threadsafe`` costs a cross-thread
        wakeup each, which dominates once runs grow to dozens of
        requests."""
        now = time.perf_counter()
        by_loop: dict[Any, list[tuple[Any, Any]]] = {}
        for item, result in completed:
            self.stats.record_op(f"shard_{item.op}", now - item.enqueued_at)
            by_loop.setdefault(item.loop, []).append((item.future, result))
        for loop, pairs in by_loop.items():
            def apply(pairs=pairs) -> None:
                for fut, result in pairs:
                    if not fut.done():
                        fut.set_result(result)

            try:
                loop.call_soon_threadsafe(apply)
            except RuntimeError:
                pass  # event loop already gone (forced teardown)

    def _fail(self, item: ShardRequest, exc: BaseException) -> None:
        self._deliver(item, lambda fut: fut.set_exception(exc))

    def _deliver(self, item: ShardRequest, action: Callable[[Any], None]) -> None:
        def apply() -> None:
            if not item.future.done():
                action(item.future)

        try:
            item.loop.call_soon_threadsafe(apply)
        except RuntimeError:
            pass  # event loop already gone (forced teardown)
