"""repro: memory-efficient search trees for database management systems.

A from-scratch Python reproduction of Huanchen Zhang's thesis
(CMU-CS-20-101 / the SIGMOD 2021 dissertation-award work): the
Dynamic-to-Static rules, the Fast Succinct Trie, SuRF, the Hybrid
Index, and HOPE — plus every substrate the evaluation needs (dynamic
search trees, an LSM storage engine, a mini H-Store, filters, and the
YCSB/TPC-C workload generators).

Quick start::

    from repro.core import FST, surf_real, hybrid_btree, HopeEncoder

See README.md and DESIGN.md for the architecture and the experiment
index, and ``examples/`` for runnable scenarios.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
