"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``demo``         — a 10-second tour of the five building blocks;
* ``experiments``  — list every paper table/figure and its bench target;
* ``bench <id>``   — run one reproduction bench (wraps pytest).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

EXPERIMENTS = {
    "table1_1": "bench_table1_1_index_overhead.py",
    "fig2_5": "bench_fig2_5_dts_rules.py",
    "table2_2": "bench_table2_2_profiling.py",
    "fig3_4": "bench_fig3_4_fst_vs_pointer.py",
    "fig3_5": "bench_fig3_5_fst_vs_succinct.py",
    "fig3_6": "bench_fig3_6_breakdown.py",
    "fig3_7": "bench_fig3_7_dense_sparse_tradeoff.py",
    "fig4_4": "bench_fig4_4_fpr.py",
    "fig4_5": "bench_fig4_5_performance.py",
    "fig4_6": "bench_fig4_6_build_time.py",
    "fig4_7": "bench_fig4_7_scalability.py",
    "table4_1": "bench_table4_1_arf_vs_surf.py",
    "fig4_8": "bench_fig4_8_rocksdb_point_openseek.py",
    "fig4_9": "bench_fig4_9_rocksdb_closedseek.py",
    "fig4_11": "bench_fig4_11_worst_case.py",
    "fig5_3": "bench_fig5_3_to_5_6_hybrid.py",
    "fig5_7": "bench_fig5_7_merge_ratio.py",
    "fig5_8": "bench_fig5_8_merge_overhead.py",
    "fig5_9": "bench_fig5_9_auxiliary.py",
    "fig5_10": "bench_fig5_10_secondary.py",
    "fig5_11": "bench_fig5_11_to_5_13_hstore.py",
    "fig5_14": "bench_fig5_14_to_5_16_anticache.py",
    "fig6_8": "bench_fig6_8_sample_size.py",
    "fig6_9": "bench_fig6_9_to_6_11_hope_micro.py",
    "fig6_12": "bench_fig6_12_build_time.py",
    "fig6_13": "bench_fig6_13_batch.py",
    "fig6_14": "bench_fig6_14_distribution_change.py",
    "fig6_15": "bench_fig6_15_to_6_21_hope_trees.py",
    "ablation": "bench_ablation_merge_strategy.py",
}


def _demo() -> int:
    from repro.core import FST, HopeEncoder, hybrid_btree, surf_real
    from repro.workloads import email_keys

    keys = sorted(email_keys(2000, seed=1))
    fst = FST(keys, list(range(len(keys))))
    print(f"FST       : {len(keys):,} keys at {fst.bits_per_node():.1f} bits/node "
          f"({fst.memory_bytes():,} B)")
    surf = surf_real(keys, real_bits=8)
    print(f"SuRF      : {surf.bits_per_key():.1f} bits/key; "
          f"range [zz, {{) may contain keys: {surf.lookup_range(b'zz', b'{{')}")
    index = hybrid_btree()
    for i, k in enumerate(keys):
        index.insert(k, i)
    print(f"Hybrid    : {len(index):,} keys, {index.merge_count} merges, "
          f"{index.memory_bytes():,} B")
    enc = HopeEncoder.from_sample("3grams", keys[:400], dict_limit=1024)
    print(f"HOPE      : 3-Grams CPR {enc.compression_rate(keys):.2f}x, "
          f"dict {enc.dict_size():,} entries")
    print("\nRun `python -m repro experiments` for the full reproduction index.")
    return 0


def _experiments() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp_id, filename in EXPERIMENTS.items():
        print(f"{exp_id.ljust(width)}  benchmarks/{filename}")
    return 0


def _bench(exp_id: str) -> int:
    if exp_id not in EXPERIMENTS:
        print(f"unknown experiment {exp_id!r}; run `python -m repro experiments`",
              file=sys.stderr)
        return 2
    root = Path(__file__).resolve().parents[2]
    target = root / "benchmarks" / EXPERIMENTS[exp_id]
    return subprocess.call(
        [sys.executable, "-m", "pytest", str(target), "--benchmark-only", "-q", "-s"]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Memory-efficient search trees: paper reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="10-second tour of the building blocks")
    sub.add_parser("experiments", help="list paper experiments and bench targets")
    bench = sub.add_parser("bench", help="run one reproduction bench")
    bench.add_argument("experiment", help="experiment id, e.g. fig4_9")
    args = parser.parse_args(argv)
    try:
        if args.command == "demo":
            return _demo()
        if args.command == "experiments":
            return _experiments()
        if args.command == "bench":
            return _bench(args.experiment)
    except BrokenPipeError:  # e.g. `python -m repro experiments | head`
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
