"""Shared benchmark harness: scaling, timing, and table output.

Every benchmark reads ``REPRO_SCALE`` (``small`` by default, ``medium``
for 10x) so the whole suite stays CI-friendly while remaining
proportional to the paper's workloads.  Results are printed as aligned
tables mirroring the paper's figures and also appended to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

#: Scale factors relative to the `small` baseline.
SCALES = {"small": 1, "medium": 10}


def scale_factor() -> int:
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in SCALES:
        raise KeyError(f"REPRO_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def scaled(n: int) -> int:
    """Scale a `small` workload size by the configured factor."""
    return n * scale_factor()


@dataclass
class Measurement:
    """One measured cell: operations per second plus metadata."""

    ops_per_sec: float
    seconds: float
    n_ops: int


#: Floor on a measured interval: one tick of the perf counter.  Without
#: it a sub-resolution run reports infinite throughput, which poisons
#: downstream arithmetic (``equi_cost`` would turn inf ops/s into a
#: meaningless cost of 0).
MIN_TIMER_RESOLUTION = max(time.get_clock_info("perf_counter").resolution, 1e-9)


def measure_ops(fn: Callable[[], Any], n_ops: int, repeats: int = 3) -> Measurement:
    """Time ``fn``, attributing ``n_ops`` operations to the best of
    ``repeats`` runs (best-of-N suppresses scheduler noise, which
    matters for the shape assertions on small scaled workloads)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    best = max(best, MIN_TIMER_RESOLUTION)
    return Measurement(n_ops / best, best, n_ops)


def equi_cost(ops_per_sec: float, memory_bytes: int) -> float:
    """The paper's balanced cost function C = P * S (Section 3.7.1),
    with P as latency (1/throughput): lower is better."""
    latency = 1.0 / ops_per_sec if ops_per_sec else float("inf")
    return latency * memory_bytes


# -- output ------------------------------------------------------------------

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int) and abs(cell) >= 10000:
        return f"{cell:,}"
    return str(cell)


def report(name: str, title: str, headers: Sequence[str], rows) -> str:
    """Print a paper-shaped table and persist it under benchmarks/results.

    Two artifacts per experiment: the human-readable aligned table
    (``<name>.txt``, mirrored in EXPERIMENTS.md) and a machine-readable
    ``<name>.json`` so successive PRs can diff the perf trajectory.
    """
    rows = [list(row) for row in rows]
    text = format_table(title, headers, rows)
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "name": name,
        "title": title,
        "scale": os.environ.get("REPRO_SCALE", "small"),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "headers": list(headers),
        "rows": [[_json_cell(c) for c in row] for row in rows],
    }
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1) + "\n")
    return text


def _json_cell(cell: Any):
    """Coerce a table cell to a JSON-native value, unformatting numeric
    strings like ``"12,345"`` so consumers can compare runs directly."""
    if isinstance(cell, (int, float, bool)) or cell is None:
        return cell
    s = str(cell)
    stripped = s.replace(",", "")
    try:
        return int(stripped)
    except ValueError:
        try:
            return float(stripped)
        except ValueError:
            return s
