"""Measurement utilities: access-model profiling, memory accounting, harness."""

from .counters import COUNTERS, AccessProfile, CACHE_LINE_BYTES

__all__ = ["COUNTERS", "AccessProfile", "CACHE_LINE_BYTES"]
