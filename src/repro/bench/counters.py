"""Deterministic access-model profiling (substitute for PAPI, Table 2.2).

The thesis uses hardware counters (instructions, IPC, L1/L2 misses) to
show that tries touch far fewer cache lines per point query than
comparison-based trees.  Hardware counters are meaningless under an
interpreter, so the index implementations instead report their memory
access behaviour to this module:

* ``node_visit``  — one node dereference; contributes pointer chases and
  ``ceil(node_bytes_touched / 64)`` cache-line touches;
* ``key_compares``— number of key comparisons performed at the node.

The resulting counts measure exactly the structural property Table 2.2
demonstrates (B+tree/Masstree/Skip List chase long pointer paths and
touch many lines; ART touches few), independent of wall-clock noise.

Profiling is off by default and costs one attribute check per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CACHE_LINE_BYTES = 64


@dataclass
class AccessProfile:
    """Aggregated access-model counters for a measured region."""

    node_visits: int = 0
    pointer_derefs: int = 0
    cache_lines: int = 0
    compares: int = 0

    def merged(self, other: "AccessProfile") -> "AccessProfile":
        return AccessProfile(
            self.node_visits + other.node_visits,
            self.pointer_derefs + other.pointer_derefs,
            self.cache_lines + other.cache_lines,
            self.compares + other.compares,
        )


class _Counters:
    """Process-global profiler; use via the COUNTERS singleton."""

    __slots__ = ("enabled", "profile")

    def __init__(self) -> None:
        self.enabled = False
        self.profile = AccessProfile()

    def reset(self) -> None:
        self.profile = AccessProfile()

    def start(self) -> None:
        self.reset()
        self.enabled = True

    def stop(self) -> AccessProfile:
        self.enabled = False
        return self.profile

    def node_visit(self, node_bytes: int, lines_touched: int | None = None) -> None:
        """Record dereferencing one node of ``node_bytes`` bytes.

        ``lines_touched`` overrides the pessimistic whole-node estimate
        for structures that only touch part of a node (e.g. ART Node256
        reads one slot; binary search in a B+tree node touches
        ~log2(slots) lines).
        """
        if not self.enabled:
            return
        p = self.profile
        p.node_visits += 1
        p.pointer_derefs += 1
        if lines_touched is None:
            lines_touched = (node_bytes + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES
        p.cache_lines += lines_touched

    def key_compares(self, count: int) -> None:
        if not self.enabled:
            return
        self.profile.compares += count


COUNTERS = _Counters()
