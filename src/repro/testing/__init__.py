"""Differential-testing subsystem: oracles, fuzzing, shrinking.

The thesis's structures each carry subtle invariants — LOUDS-DS
navigation, SuRF's one-sided-error guarantee, merge-time key ordering,
order-preserving codes — and a tiny rank/select off-by-one silently
corrupts navigation rather than crashing.  This package checks every
structure against a trusted reference model on randomized workloads:

* :mod:`repro.testing.oracle` — ``SortedOracle`` (sorted-dict
  semantics) and ``FilterOracle`` (one-sided-error accounting);
* :mod:`repro.testing.ops` — seeded op-sequence generators over the
  paper's key distributions (int64 / email / URL, Zipf access);
* :mod:`repro.testing.adapters` — a uniform op vocabulary over every
  tree, compact structure, FST, SuRF, hybrid and HOPE-wrapped variant;
* :mod:`repro.testing.differential` — the op-by-op differential
  executor;
* :mod:`repro.testing.shrink` — greedy ddmin shrinker so every failure
  is a small, replayable script.

CLI: ``python -m repro.testing fuzz --seed 0 --ops 5000``.
"""

from .adapters import all_structures, make_adapter
from .differential import Failure, FuzzResult, fuzz_structure, run_sequence
from .ops import Op, generate_ops, ops_from_json, ops_to_json
from .oracle import FilterOracle, SortedOracle
from .shrink import shrink

__all__ = [
    "SortedOracle",
    "FilterOracle",
    "Op",
    "generate_ops",
    "ops_to_json",
    "ops_from_json",
    "all_structures",
    "make_adapter",
    "run_sequence",
    "fuzz_structure",
    "Failure",
    "FuzzResult",
    "shrink",
]
