"""CLI: ``python -m repro.testing`` — differential fuzzing.

Subcommands:

* ``fuzz``   — run a seeded differential fuzz across structures:
  ``python -m repro.testing fuzz --seed 0 --ops 5000``
* ``torture`` — threaded snapshot-consistency torture against the
  background-compaction LSM engine:
  ``python -m repro.testing torture --seed 0 --ops 1500 --readers 3``
* ``replay`` — re-run a repro script written by a failing fuzz:
  ``python -m repro.testing replay fuzz-repros/repro-fst-seed0.json``
* ``list``   — list the structures the harness can drive.

Every failure is shrunk to a minimal op sequence and written as a JSON
repro script (keys hex-encoded) that ``replay`` executes verbatim.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .adapters import all_structures, make_adapter
from .differential import fuzz_structure, run_sequence
from .ops import generate_ops, ops_from_json, ops_to_json


def _parse_structures(spec: str) -> list[str]:
    registry = all_structures()
    if spec == "all":
        return sorted(registry)
    names = [s.strip() for s in spec.split(",") if s.strip()]
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise SystemExit(
            f"unknown structures {unknown}; available: {sorted(registry)}"
        )
    return names


def _cmd_list() -> int:
    registry = all_structures()
    width = max(len(n) for n in registry)
    for name in sorted(registry):
        adapter = registry[name]()
        try:
            print(f"{name.ljust(width)}  kind={adapter.kind}  compare={adapter.compare}")
        finally:
            # Server adapters boot real worker threads/processes at
            # construction; a listing must not leave them running.
            adapter.close()
    print(f"\n{len(registry)} structures")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    registry = all_structures()
    names = _parse_structures(args.structures)
    ops = generate_ops(
        args.seed, args.ops, keyspace=args.keyspace, universe_size=args.universe
    )
    out_dir = Path(args.out_dir)
    print(
        f"fuzz: seed={args.seed} ops={len(ops)} keyspace={args.keyspace} "
        f"structures={len(names)}"
    )
    started = time.perf_counter()
    failures = 0
    width = max(len(n) for n in names)
    for name in names:
        elapsed = time.perf_counter() - started
        if args.time_budget and elapsed > args.time_budget:
            print(f"{name.ljust(width)}  SKIP (time budget {args.time_budget}s exhausted)")
            continue
        result = fuzz_structure(name, ops, registry[name])
        if result.ok:
            fp = f"  fp_rate={result.fp_rate:.4f}" if result.fp_rate else ""
            print(
                f"{name.ljust(width)}  PASS  applied={result.applied} "
                f"skipped={result.skipped}  {result.elapsed_seconds:.2f}s{fp}"
            )
            continue
        failures += 1
        out_dir.mkdir(parents=True, exist_ok=True)
        repro = out_dir / f"repro-{name}-seed{args.seed}.json"
        repro.write_text(
            ops_to_json(
                result.shrunk_ops or ops,
                structure=name,
                seed=args.seed,
                keyspace=args.keyspace,
                failure=result.failure.message,
            )
        )
        result.repro_path = str(repro)
        n_shrunk = len(result.shrunk_ops) if result.shrunk_ops else len(ops)
        print(f"{name.ljust(width)}  FAIL  shrunk to {n_shrunk} ops -> {repro}")
        print("  " + result.failure.describe().replace("\n", "\n  "))
    total = time.perf_counter() - started
    print(f"\n{len(names) - failures}/{len(names)} structures clean in {total:.1f}s")
    return 1 if failures else 0


def _cmd_torture(args: argparse.Namespace) -> int:
    from .ops import ops_to_json
    from .threaded import run_torture

    failures = 0
    for round_idx in range(args.rounds):
        seed = args.seed + round_idx
        result = run_torture(
            seed=seed,
            n_ops=args.ops,
            readers=args.readers,
            keyspace=args.keyspace,
        )
        if result.ok:
            info = result.engine_info
            print(
                f"seed {seed}  PASS  applied={result.applied} "
                f"snapshot_checks={result.snapshot_checks} "
                f"raw_checks={result.raw_checks} "
                f"flushes={info.get('flushes')} compactions={info.get('compactions')} "
                f"stalls={info.get('stalls')} slowdowns={info.get('slowdowns')}  "
                f"{result.elapsed_seconds:.2f}s"
            )
            continue
        failures += 1
        print(f"seed {seed}  FAIL  " + result.failure.describe().replace("\n", "\n  "))
        if result.shrunk_ops:
            out_dir = Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            repro = out_dir / f"repro-torture-seed{seed}.json"
            repro.write_text(
                ops_to_json(
                    result.shrunk_ops,
                    structure="lsm_bg",
                    seed=seed,
                    keyspace=args.keyspace,
                    failure=result.failure.describe(),
                    deterministic=result.replay_deterministic,
                )
            )
            kind = (
                "deterministic, ddmin-shrunk"
                if result.replay_deterministic
                else "interleaving-only; prefix kept"
            )
            print(f"  repro ({kind}, {len(result.shrunk_ops)} ops) -> {repro}")
    print(f"\n{args.rounds - failures}/{args.rounds} torture rounds clean")
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    text = Path(args.script).read_text()
    ops, meta = ops_from_json(text)
    structure = args.structure or meta.get("structure")
    if not structure:
        raise SystemExit("script has no 'structure' field; pass --structure")
    print(f"replay: {len(ops)} ops against {structure}")
    failure, stats = run_sequence(make_adapter(structure), ops)
    if failure is None:
        print(f"PASS — no divergence (applied={stats['applied']})")
        return 0
    print(failure.describe())
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Differential oracle fuzzing for every search tree and filter",
    )
    sub = parser.add_subparsers(dest="command")
    fuzz = sub.add_parser("fuzz", help="run a seeded differential fuzz")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--ops", type=int, default=2000, help="ops per structure")
    fuzz.add_argument(
        "--keyspace", default="mixed", choices=["int64", "email", "url", "mixed"]
    )
    fuzz.add_argument(
        "--structures", default="all", help="comma-separated names, or 'all'"
    )
    fuzz.add_argument("--universe", type=int, default=None, help="key-pool size")
    fuzz.add_argument(
        "--time-budget", type=float, default=None,
        help="stop starting new structures after SECONDS",
    )
    fuzz.add_argument(
        "--out-dir", default="fuzz-repros", help="where to write repro scripts"
    )
    torture = sub.add_parser(
        "torture", help="threaded snapshot-consistency torture (background LSM)"
    )
    torture.add_argument("--seed", type=int, default=0)
    torture.add_argument("--ops", type=int, default=1500, help="write ops per round")
    torture.add_argument("--readers", type=int, default=3)
    torture.add_argument("--rounds", type=int, default=1)
    torture.add_argument(
        "--keyspace", default="int64", choices=["int64", "email", "url", "mixed"]
    )
    torture.add_argument(
        "--out-dir", default="fuzz-repros", help="where to write repro scripts"
    )
    replay = sub.add_parser("replay", help="re-run a JSON repro script")
    replay.add_argument("script", help="path written by a failing fuzz run")
    replay.add_argument("--structure", default=None, help="override script structure")
    sub.add_parser("list", help="list drivable structures")
    args = parser.parse_args(argv)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "torture":
        return _cmd_torture(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "list":
        return _cmd_list()
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
