"""Seeded op-sequence generation over the paper's key distributions.

A sequence is a list of :class:`Op` records drawn deterministically
from one integer seed: the same ``(seed, n_ops, keyspace)`` triple
always produces byte-identical sequences, which is what makes replay
and shrinking possible.

Key selection follows the thesis workloads: the key *universe* comes
from :mod:`repro.workloads.keys` (64-bit integers, host-reversed
emails, URLs, or a mix), and *access* is Zipf-distributed so hot keys
are hit repeatedly (YCSB's request distribution).  A fraction of
accesses perturbs the drawn key (byte flip / extend / truncate) to
probe near-miss absent keys — the regime where off-by-one navigation
bugs hide.

Ops are grouped in write/read bursts (geometric lengths) rather than
i.i.d. draws so that structures rebuilt on read (the static D-to-S
variants) amortize rebuilds the way a merge-based deployment would.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Sequence

from ..workloads.keys import email_keys, random_u64_keys, url_keys

#: Ops a sequence may contain.  ``lower_bound`` and ``scan`` carry a
#: ``count`` limit; range ops carry ``high``; ``merge`` forces a stage
#: merge / rebuild; ``serialize`` forces a to_bytes/from_bytes
#: round-trip where the structure supports one.
OP_NAMES = (
    "insert",
    "update",
    "delete",
    "put_many",
    "get",
    "get_many",
    "contains",
    "lower_bound",
    "scan",
    "range",
    "count",
    "len",
    "items",
    "merge",
    "serialize",
)

_WRITE_OPS = ("insert", "update", "delete", "put_many")
_WRITE_WEIGHTS = (0.54, 0.16, 0.20, 0.10)
_READ_OPS = (
    "get", "contains", "lower_bound", "scan", "range", "count", "len",
    "get_many",
)
_READ_WEIGHTS = (0.36, 0.10, 0.16, 0.10, 0.12, 0.06, 0.06, 0.04)
#: Largest key batch drawn for a ``get_many`` op.
_MAX_BATCH_KEYS = 8

#: Mean burst length for the write/read phase structure.
_MEAN_BURST = 12
#: Probability of an ``items`` (full-iteration) op at a read-burst end.
_ITEMS_PROB = 0.05
#: Probability of a ``merge`` / ``serialize`` op at a burst boundary.
_MERGE_PROB = 0.06
_SERIALIZE_PROB = 0.05
#: Fraction of drawn keys perturbed into near-miss variants.
_PERTURB_PROB = 0.25
#: Zipf skew for key access (YCSB uses 0.99).
_ZIPF_THETA = 0.99


@dataclass(frozen=True)
class Op:
    """One operation of a differential sequence."""

    op: str
    key: bytes | None = None
    value: int | None = None
    high: bytes | None = None
    count: int | None = None
    keys: tuple[bytes, ...] | None = None
    #: Parallel to ``keys`` for ``put_many`` (one value per key;
    #: duplicate keys in a batch are last-wins).
    values: tuple[int, ...] | None = None

    def describe(self) -> str:
        parts = [self.op]
        if self.key is not None:
            parts.append(f"key={self.key!r}")
        if self.keys is not None:
            parts.append(f"keys={list(self.keys)!r}")
        if self.values is not None:
            parts.append(f"values={list(self.values)!r}")
        if self.high is not None:
            parts.append(f"high={self.high!r}")
        if self.value is not None:
            parts.append(f"value={self.value}")
        if self.count is not None:
            parts.append(f"count={self.count}")
        return " ".join(parts)


def key_universe(keyspace: str, n: int, seed: int) -> list[bytes]:
    """Deterministic key pool for a sequence (distinct, unsorted)."""
    if keyspace == "int64":
        return random_u64_keys(n, seed=seed + 11)
    if keyspace == "email":
        return email_keys(n, seed=seed + 13)
    if keyspace == "url":
        return url_keys(n, seed=seed + 17)
    if keyspace == "mixed":
        third = max(1, n // 3)
        pool = (
            random_u64_keys(third, seed=seed + 11)
            + email_keys(third, seed=seed + 13)
            + url_keys(n - 2 * third, seed=seed + 17)
        )
        return pool
    raise KeyError(f"unknown keyspace {keyspace!r}; choose int64|email|url|mixed")


def _zipf_ranks(rng: random.Random, n_items: int, n_draws: int) -> list[int]:
    """Zipf(theta)-distributed ranks in [0, n_items) via inverse CDF."""
    weights = [1.0 / (r + 1) ** _ZIPF_THETA for r in range(n_items)]
    total = sum(weights)
    cum = []
    acc = 0.0
    for w in weights:
        acc += w
        cum.append(acc / total)
    out = []
    for _ in range(n_draws):
        u = rng.random()
        lo, hi = 0, n_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cum[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


def _perturb(rng: random.Random, key: bytes) -> bytes:
    """A near-miss variant of ``key`` (deterministic in ``rng``)."""
    mode = rng.randrange(4)
    if mode == 0:  # append a byte
        return key + bytes([rng.randrange(256)])
    if mode == 1 and key:  # drop the last byte
        return key[:-1]
    if mode == 2 and key:  # flip one byte
        i = rng.randrange(len(key))
        return key[:i] + bytes([(key[i] + rng.randrange(1, 256)) % 256]) + key[i + 1 :]
    return bytes([rng.randrange(256)]) + key  # prepend


def generate_ops(
    seed: int,
    n_ops: int,
    keyspace: str = "mixed",
    universe_size: int | None = None,
) -> list[Op]:
    """The deterministic op sequence for ``seed``."""
    rng = random.Random(seed)
    if universe_size is None:
        universe_size = max(64, min(4096, n_ops))
    universe = key_universe(keyspace, universe_size, seed)
    # Shuffle so Zipf-hot ranks are not biased toward one distribution
    # in mixed mode.
    rng.shuffle(universe)
    ranks = _zipf_ranks(rng, len(universe), n_ops + n_ops // 2 + 16)
    rank_iter = iter(ranks)

    def draw_key() -> bytes:
        key = universe[next(rank_iter)]
        if rng.random() < _PERTURB_PROB:
            key = _perturb(rng, key)
        return key

    ops: list[Op] = []
    writing = True
    while len(ops) < n_ops:
        burst = 1 + min(int(rng.expovariate(1.0 / _MEAN_BURST)), 6 * _MEAN_BURST)
        names = _WRITE_OPS if writing else _READ_OPS
        weights = _WRITE_WEIGHTS if writing else _READ_WEIGHTS
        for name in rng.choices(names, weights=weights, k=burst):
            if len(ops) >= n_ops:
                break
            if name in ("insert", "update"):
                ops.append(Op(name, key=draw_key(), value=len(ops)))
            elif name == "put_many":
                # Batched upsert; duplicate keys probe last-wins.
                size = 1 + rng.randrange(_MAX_BATCH_KEYS)
                batch = tuple(draw_key() for _ in range(size))
                values = tuple(
                    len(ops) * _MAX_BATCH_KEYS + j for j in range(size)
                )
                ops.append(Op(name, keys=batch, values=values))
            elif name in ("delete", "get", "contains"):
                ops.append(Op(name, key=draw_key()))
            elif name in ("lower_bound", "scan"):
                ops.append(Op(name, key=draw_key(), count=1 + rng.randrange(32)))
            elif name in ("range", "count"):
                a, b = draw_key(), draw_key()
                low, high = (a, b) if a <= b else (b, a)
                ops.append(Op(name, key=low, high=high))
            elif name == "get_many":
                batch = tuple(
                    draw_key() for _ in range(1 + rng.randrange(_MAX_BATCH_KEYS))
                )
                ops.append(Op(name, keys=batch))
            else:  # len
                ops.append(Op("len"))
        # Burst boundary: occasional structural ops.
        if len(ops) < n_ops and rng.random() < _MERGE_PROB:
            ops.append(Op("merge"))
        if len(ops) < n_ops and rng.random() < _SERIALIZE_PROB:
            ops.append(Op("serialize"))
        if len(ops) < n_ops and not writing and rng.random() < _ITEMS_PROB:
            ops.append(Op("items"))
        writing = not writing
    return ops[:n_ops]


# -- replay scripts ---------------------------------------------------------


def ops_to_json(ops: Sequence[Op], **meta) -> str:
    """Serialize a sequence (keys hex-encoded) plus metadata."""
    records = []
    for op in ops:
        rec: dict = {"op": op.op}
        if op.key is not None:
            rec["key"] = op.key.hex()
        if op.high is not None:
            rec["high"] = op.high.hex()
        if op.value is not None:
            rec["value"] = op.value
        if op.count is not None:
            rec["count"] = op.count
        if op.keys is not None:
            rec["keys"] = [k.hex() for k in op.keys]
        if op.values is not None:
            rec["values"] = list(op.values)
        records.append(rec)
    return json.dumps({**meta, "ops": records}, indent=2)


def ops_from_json(text: str) -> tuple[list[Op], dict]:
    """Inverse of :func:`ops_to_json`: (ops, metadata)."""
    doc = json.loads(text)
    ops = []
    for rec in doc["ops"]:
        if rec["op"] not in OP_NAMES:
            raise ValueError(f"unknown op {rec['op']!r} in replay script")
        ops.append(
            Op(
                rec["op"],
                key=bytes.fromhex(rec["key"]) if "key" in rec else None,
                value=rec.get("value"),
                high=bytes.fromhex(rec["high"]) if "high" in rec else None,
                count=rec.get("count"),
                keys=tuple(bytes.fromhex(h) for h in rec["keys"])
                if "keys" in rec
                else None,
                values=tuple(rec["values"]) if "values" in rec else None,
            )
        )
    meta = {k: v for k, v in doc.items() if k != "ops"}
    return ops, meta
