"""Adapters giving every structure one op vocabulary.

The differential executor speaks a single op set (see
:mod:`repro.testing.ops`); each adapter translates it onto one concrete
structure:

* dynamic trees take the ops directly;
* static (D-to-S) structures buffer mutations in a pending dict and
  rebuild lazily before the next read — the executor still diffs every
  read against the oracle, so a bad build or a bad rank/select kernel
  surfaces at the first read after it;
* filters answer membership ops under one-sided-error comparison;
* HOPE-wrapped trees encode keys first; ordered results are compared
  by *value* sequence (encoded keys differ from raw keys, but their
  order must not).

``SKIPPED`` marks ops a structure legitimately cannot express (e.g.
``serialize`` on a pointer-based tree); the executor applies the op to
the oracle regardless so every structure sees the same logical state.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Sequence

from ..compact import (
    CompactART,
    CompactBPlusTree,
    CompactMasstree,
    CompactSkipList,
    CompressedBPlusTree,
)
from ..filters.bloom import BloomFilter
from ..filters.prefix_bloom import PrefixBloomFilter
from ..fst import FST
from ..hope import HopeEncoder, HopeIndex
from ..hybrid import (
    hybrid_art,
    hybrid_btree,
    hybrid_compressed_btree,
    hybrid_gapped,
    hybrid_masstree,
    hybrid_skiplist,
)
from ..surf import SuRF
from ..trees import (
    ART,
    BPlusTree,
    GappedBPlusTree,
    HOTrie,
    Masstree,
    PagedSkipList,
    PrefixBPlusTree,
    TTree,
)
from ..workloads.keys import email_keys
from .ops import Op

#: Sentinel: the op is outside this structure's vocabulary.
SKIPPED = object()

#: Clamp for iterator-derived range counts (keeps exact adapters from
#: walking arbitrarily large ranges on every ``count`` op).
COUNT_CLAMP = 64


class Adapter:
    """Base adapter: a named structure speaking the common op set."""

    #: "exact" adapters must match the oracle answer bit-for-bit;
    #: "filter" adapters are held to the one-sided-error contract.
    kind = "exact"
    #: "pairs" compares ordered results as (key, value) lists;
    #: "values" compares the value sequence only (HOPE-encoded keys).
    compare = "pairs"

    def __init__(self, name: str) -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        raise NotImplementedError

    def apply(self, op: Op) -> Any:
        raise NotImplementedError

    def close(self) -> None:
        """Release external resources (processes, sockets, threads).

        Most adapters are plain in-memory objects and need nothing; the
        server adapters override this to drain their shard workers —
        a leaked shard *process* would otherwise hang interpreter
        shutdown on multiprocessing's exit-time join.  Idempotent.
        """


def _bounded_pairs(iterator, count: int) -> list[tuple[bytes, Any]]:
    return list(islice(iterator, count))


def _range_answer(index, low: bytes, high: bytes) -> bool:
    first = next(iter(index.lower_bound(low)), None)
    return first is not None and first[0] < high


def _count_answer(index, low: bytes, high: bytes, clamp: int = COUNT_CLAMP) -> int:
    n = 0
    for k, _ in index.lower_bound(low):
        if k >= high or n >= clamp:
            break
        n += 1
    return n


class DynamicAdapter(Adapter):
    """Any mutable OrderedIndex taken as-is."""

    def __init__(self, name: str, factory: Callable[[], Any]) -> None:
        self._factory = factory
        super().__init__(name)

    def reset(self) -> None:
        self.index = self._factory()

    def apply(self, op: Op) -> Any:
        index = self.index
        if op.op == "insert":
            return index.insert(op.key, op.value)
        if op.op == "update":
            return index.update(op.key, op.value)
        if op.op == "delete":
            return index.delete(op.key)
        if op.op == "put_many":
            # OrderedIndex guarantees put_many (native batch kernels
            # override the scalar-loop default in base.py).
            index.put_many(list(zip(op.keys, op.values)))
            return None
        if op.op == "get":
            return index.get(op.key)
        if op.op == "get_many":
            return index.get_many(list(op.keys))
        if op.op == "contains":
            return op.key in index
        if op.op == "lower_bound":
            return _bounded_pairs(index.lower_bound(op.key), op.count)
        if op.op == "scan":
            return index.scan(op.key, op.count)
        if op.op == "range":
            return _range_answer(index, op.key, op.high)
        if op.op == "count":
            return _count_answer(index, op.key, op.high)
        if op.op == "len":
            return len(index)
        if op.op == "items":
            return list(index.items())
        if op.op == "merge":
            if hasattr(index, "merge"):
                index.merge()
                return None
            return SKIPPED
        if op.op == "serialize":
            return SKIPPED
        raise ValueError(f"unknown op {op.op!r}")


class GappedAdapter(DynamicAdapter):
    """GappedBPlusTree: DynamicAdapter plus a real serialize round-trip.

    ``serialize`` replaces the live tree with ``from_bytes(to_bytes())``
    so every later read runs against the deserialized instance — a
    leaf-packing or framing bug surfaces as a differential failure."""

    def apply(self, op: Op) -> Any:
        if op.op == "serialize":
            index = self.index
            self.index = type(index).from_bytes(index.to_bytes())
            return None
        return super().apply(op)


class StaticAdapter(Adapter):
    """D-to-S structure: pending mutations, lazy rebuild on read.

    ``merge`` forces a rebuild; ``serialize`` forces a
    to_bytes/from_bytes round-trip when the structure supports one, so
    later reads run against the deserialized instance.
    """

    def __init__(self, name: str, builder: Callable[[Sequence[tuple[bytes, Any]]], Any]) -> None:
        self._builder = builder
        super().__init__(name)

    def reset(self) -> None:
        self._pending: dict[bytes, Any] = {}
        self._dirty = True
        self.index: Any = None

    def _ensure(self) -> Any:
        if self._dirty:
            pairs = sorted(self._pending.items())
            self.index = self._builder(pairs)
            self._dirty = False
        return self.index

    def apply(self, op: Op) -> Any:
        if op.op == "insert":
            if op.key in self._pending:
                return False
            self._pending[op.key] = op.value
            self._dirty = True
            return True
        if op.op == "update":
            if op.key not in self._pending:
                return False
            self._pending[op.key] = op.value
            self._dirty = True
            return True
        if op.op == "delete":
            if op.key not in self._pending:
                return False
            del self._pending[op.key]
            self._dirty = True
            return True
        if op.op == "put_many":
            self._pending.update(zip(op.keys, op.values))
            self._dirty = True
            return None
        if op.op == "merge":
            self._dirty = True
            self._ensure()
            return None
        if op.op == "serialize":
            index = self._ensure()
            if not hasattr(index, "to_bytes"):
                return SKIPPED
            self.index = type(index).from_bytes(index.to_bytes())
            return None
        index = self._ensure()
        if op.op == "get":
            return index.get(op.key)
        if op.op == "get_many":
            batch = getattr(index, "get_many", None)
            if batch is None:
                return [index.get(k) for k in op.keys]
            return batch(list(op.keys))
        if op.op == "contains":
            return index.get(op.key) is not None
        if op.op == "lower_bound":
            return _bounded_pairs(index.lower_bound(op.key), op.count)
        if op.op == "scan":
            if hasattr(index, "scan"):
                return index.scan(op.key, op.count)
            return _bounded_pairs(index.lower_bound(op.key), op.count)
        if op.op == "range":
            return _range_answer(index, op.key, op.high)
        if op.op == "count":
            return _count_answer(index, op.key, op.high)
        if op.op == "len":
            return len(index)
        if op.op == "items":
            return list(index.items())
        raise ValueError(f"unknown op {op.op!r}")


class FstAdapter(StaticAdapter):
    """FST: like StaticAdapter, but ``count`` uses the native
    ``count_range`` (exact for complete tries) instead of iteration."""

    def __init__(self, name: str = "fst", **fst_kwargs) -> None:
        super().__init__(name, lambda pairs: FST([k for k, _ in pairs], [v for _, v in pairs], **fst_kwargs))

    def apply(self, op: Op) -> Any:
        if op.op == "count":
            index = self._ensure()
            return min(index.count_range(op.key, op.high), COUNT_CLAMP)
        return super().apply(op)


class FilterAdapter(Adapter):
    """Approximate-membership structure under one-sided comparison.

    The pending key set mirrors the oracle's keys exactly; reads
    rebuild lazily.  ``builder`` maps a sorted key list to a filter
    answering ``may_contain`` / ``may_contain_range``.
    """

    kind = "filter"

    def __init__(self, name: str, builder: Callable[[list[bytes]], Any],
                 supports_count: bool = False) -> None:
        self._builder = builder
        self._supports_count = supports_count
        super().__init__(name)

    def reset(self) -> None:
        self._pending: set[bytes] = set()
        self._dirty = True
        self.filter: Any = None

    def _ensure(self) -> Any:
        if self._dirty:
            self.filter = self._builder(sorted(self._pending))
            self._dirty = False
        return self.filter

    def apply(self, op: Op) -> Any:
        if op.op == "insert":
            if op.key in self._pending:
                return False
            self._pending.add(op.key)
            self._dirty = True
            return True
        if op.op == "update":
            return SKIPPED  # filters store no values
        if op.op == "delete":
            if op.key not in self._pending:
                return False
            self._pending.discard(op.key)
            self._dirty = True
            return True
        if op.op == "put_many":
            # Values are dropped, but the key set must keep mirroring
            # the oracle's (the oracle applies the batch regardless, so
            # skipping here would manufacture false negatives later).
            self._pending.update(op.keys)
            self._dirty = True
            return None
        if op.op == "merge":
            self._dirty = True
            self._ensure()
            return None
        if op.op == "serialize":
            flt = self._ensure()
            if not hasattr(flt, "to_bytes"):
                return SKIPPED
            self.filter = type(flt).from_bytes(flt.to_bytes())
            return None
        flt = self._ensure()
        if op.op in ("get", "contains"):
            return bool(flt.may_contain(op.key))
        if op.op == "get_many":
            batch = getattr(flt, "may_contain_many", None)
            scalar = [bool(flt.may_contain(k)) for k in op.keys]
            if batch is None:
                return scalar
            got = [bool(b) for b in batch(list(op.keys))]
            # The one-sided oracle contract alone could mask a batch
            # kernel that diverges from the scalar probe (both answers
            # may be legal false positives): enforce bit-for-bit
            # batch == scalar here so divergence is a shrinkable fuzz
            # failure, not a silent FPR shift.
            if got != scalar:
                raise RuntimeError(
                    f"batch/scalar divergence: batch={got} scalar={scalar}"
                )
            return got
        if op.op in ("lower_bound", "scan"):
            return SKIPPED  # no stored values to iterate
        if op.op == "range":
            return bool(flt.may_contain_range(op.key, op.high))
        if op.op == "count":
            if self._supports_count:
                return flt.count(op.key, op.high)
            return SKIPPED
        if op.op == "len":
            if hasattr(flt, "__len__"):
                return len(flt)
            return SKIPPED
        if op.op == "items":
            return SKIPPED
        raise ValueError(f"unknown op {op.op!r}")


class HopeAdapter(Adapter):
    """HOPE-wrapped dynamic tree: keys are encoded before every op.

    Encoded keys differ from raw keys, so ordered results compare by
    value sequence (``compare = "values"``), which the order-preserving
    property makes sound.  Zero-padding can (rarely) make two distinct
    raw keys encode identically; colliding inserts are absorbed into a
    shadow dict so the adapter still mirrors oracle semantics, and
    ordered ops are skipped while a shadow entry exists.
    """

    compare = "values"

    def __init__(self, name: str, tree_factory: Callable[[], Any],
                 scheme: str = "3grams", dict_limit: int = 256) -> None:
        # Deterministic dictionary: trained once on a fixed email
        # sample (HOPE encoders are complete, so they encode arbitrary
        # byte keys regardless of the training sample).
        self._encoder = HopeEncoder.from_sample(
            scheme, email_keys(256, seed=97), dict_limit=dict_limit
        )
        self._tree_factory = tree_factory
        super().__init__(name)

    def reset(self) -> None:
        self.index = HopeIndex(self._tree_factory, self._encoder)
        #: raw key -> encoded key, for every key the tree itself holds.
        self._enc_of: dict[bytes, bytes] = {}
        #: encoded key -> raw owner.
        self._owner: dict[bytes, bytes] = {}
        #: raw key -> value, for keys whose encoding collided.
        self._shadow: dict[bytes, Any] = {}

    def apply(self, op: Op) -> Any:
        if op.op == "insert":
            if op.key in self._enc_of or op.key in self._shadow:
                return False
            enc = self._encoder.encode(op.key)
            if enc in self._owner:  # padding collision with another raw key
                self._shadow[op.key] = op.value
                return True
            ok = self.index.insert(op.key, op.value)
            if ok:
                self._enc_of[op.key] = enc
                self._owner[enc] = op.key
            return ok
        if op.op == "update":
            if op.key in self._shadow:
                self._shadow[op.key] = op.value
                return True
            if op.key not in self._enc_of:
                return False
            return self.index.update(op.key, op.value)
        if op.op == "put_many":
            # Upsert pair-by-pair through the same collision
            # bookkeeping as insert/update (batch order = last wins).
            for k, v in zip(op.keys, op.values):
                if k in self._shadow:
                    self._shadow[k] = v
                elif k in self._enc_of:
                    self.index.update(k, v)
                else:
                    enc = self._encoder.encode(k)
                    if enc in self._owner:  # padding collision
                        self._shadow[k] = v
                    elif self.index.insert(k, v):
                        self._enc_of[k] = enc
                        self._owner[enc] = k
            return None
        if op.op == "delete":
            if op.key in self._shadow:
                del self._shadow[op.key]
                return True
            if op.key not in self._enc_of:
                return False
            ok = self.index.delete(op.key)
            if ok:
                del self._owner[self._enc_of.pop(op.key)]
            return ok
        if op.op == "get":
            if op.key in self._shadow:
                return self._shadow[op.key]
            if op.key not in self._enc_of:
                return None
            return self.index.get(op.key)
        if op.op == "get_many":
            # Shadowed / absent keys are answered from the collision
            # bookkeeping; the rest go down as one encoded batch.
            out: list[Any] = [None] * len(op.keys)
            batch_idx: list[int] = []
            for j, k in enumerate(op.keys):
                if k in self._shadow:
                    out[j] = self._shadow[k]
                elif k in self._enc_of:
                    batch_idx.append(j)
            if batch_idx:
                values = self.index.get_many([op.keys[j] for j in batch_idx])
                for j, v in zip(batch_idx, values):
                    out[j] = v
            return out
        if op.op == "contains":
            if op.key in self._shadow:
                return True
            return op.key in self.index
        if op.op == "len":
            return len(self.index) + len(self._shadow)
        if op.op in ("lower_bound", "scan", "range", "count", "items"):
            if self._shadow:
                return SKIPPED  # encoded order is incomplete under collisions
            # HopeIndex encodes bounds itself; returned keys are encoded,
            # so range comparisons below use the encoded high bound.
            if op.op == "lower_bound":
                return _bounded_pairs(self.index.lower_bound(op.key), op.count)
            if op.op == "scan":
                return self.index.scan(op.key, op.count)
            if op.op == "items":
                return list(self.index.items())
            enc_high = self._encoder.encode(op.high)
            enc_low = self._encoder.encode(op.key)
            # A query bound whose encoding collides with a stored key of
            # a *different* raw key makes the encoded range ambiguous.
            for enc_bound, raw_bound in ((enc_low, op.key), (enc_high, op.high)):
                if self._owner.get(enc_bound, raw_bound) != raw_bound:
                    return SKIPPED
            if op.op == "range":
                first = next(iter(self.index.lower_bound(op.key)), None)
                return first is not None and first[0] < enc_high
            n = 0
            for enc_k, _ in self.index.lower_bound(op.key):
                if enc_k >= enc_high or n >= COUNT_CLAMP:
                    break
                n += 1
            return n
        if op.op in ("merge", "serialize"):
            return SKIPPED
        raise ValueError(f"unknown op {op.op!r}")


class LsmAdapter(Adapter):
    """The durable LSM engine under the common op vocabulary.

    Runs against an in-memory fault-model filesystem (``MemFS``) with a
    deliberately tiny memtable/level configuration so a fuzz sequence
    of a few hundred ops crosses flushes, WAL rotations, and
    compactions.  The engine keeps no live-key count (tombstones hide
    it), so a ``_present`` set mirrors membership for the insert/
    update/delete return contract and ``len``.  ``merge`` forces a
    memtable flush; ``serialize`` closes the engine and recovers it
    from the filesystem — every read after it runs against recovered
    state, so a WAL/manifest/SSTable round-trip bug surfaces as a
    differential failure.

    With ``background=True`` the same op stream drives the freeze /
    background-flush / background-compaction lifecycle instead: answers
    must still match the oracle bit-for-bit no matter where the flusher
    and compactor happen to be, because every read pins a consistent
    view.  ``merge`` then drains the immutable queue and ``serialize``
    joins the background threads before recovering.
    """

    def __init__(
        self, name: str = "lsm", filter_factory=None, background: bool = False
    ) -> None:
        self._filter_factory = filter_factory
        self._background = background
        self._generation = 0
        super().__init__(name)

    def reset(self) -> None:
        from ..lsm import LSMTree
        from .faultfs import MemFS

        self._fs = MemFS()
        self._generation += 1
        self._path = f"lsm-fuzz-{self._generation}"
        self._config = dict(
            memtable_entries=16,
            sstable_entries=64,
            block_entries=8,
            level0_limit=2,
            block_cache_blocks=32,
            wal_sync_every=4,
            filter_factory=self._filter_factory,
            background=self._background,
        )
        self.index = LSMTree.open(self._path, fs=self._fs, **self._config)
        self._present: set[bytes] = set()

    def close(self) -> None:
        self.index.close()

    def apply(self, op: Op) -> Any:
        db = self.index
        if op.op == "insert":
            if op.key in self._present:
                return False
            db.put(op.key, op.value)
            self._present.add(op.key)
            return True
        if op.op == "update":
            if op.key not in self._present:
                return False
            db.put(op.key, op.value)
            return True
        if op.op == "delete":
            if op.key not in self._present:
                return False
            db.delete(op.key)
            self._present.discard(op.key)
            return True
        if op.op == "put_many":
            # One group-committed batch through the WAL and one
            # vectorized memtable apply (the gapped write path).
            db.put_many(list(zip(op.keys, op.values)))
            self._present.update(op.keys)
            return None
        if op.op == "get":
            return db.get(op.key)
        if op.op == "get_many":
            return [db.get(k) for k in op.keys]
        if op.op == "contains":
            return db.get(op.key) is not None
        if op.op == "lower_bound":
            return db.scan(op.key, op.count)
        if op.op == "scan":
            return db.scan(op.key, op.count)
        if op.op == "range":
            first = db.seek(op.key)
            return first is not None and first[0] < op.high
        if op.op == "count":
            hits = db.scan(op.key, COUNT_CLAMP)
            return sum(1 for k, _ in hits if k < op.high)
        if op.op == "len":
            return len(self._present)
        if op.op == "items":
            return db.scan(b"", len(self._present) + 1)
        if op.op == "merge":
            db.flush_memtable()
            return None
        if op.op == "serialize":
            from ..lsm import LSMTree

            db.close()
            self.index = LSMTree.open(self._path, fs=self._fs, **self._config)
            return None
        raise ValueError(f"unknown op {op.op!r}")


class ServerAdapter(Adapter):
    """The sharded KV server driven over a loopback client/server pair.

    Every op crosses the real stack: wire protocol framing, the asyncio
    front-end, hash sharding, the per-shard worker queues, and finally
    the durable engines (each shard on its own ``MemFS``).  ``merge``
    maps to a SYNC request (flush/commit is the server's concern);
    ``serialize`` is a full graceful drain — stop the server, restart
    it over the *same* in-memory filesystems, reconnect — so recovery
    of every shard plus the rebind handshake is exercised mid-sequence.
    ``get_many`` travels as one BATCH_GET, covering the scatter/gather
    and reassembly path.

    With ``shard_mode="process"`` every shard engine lives in a worker
    process; its MemFS is pickled to the child and merged back into the
    parent's object on drain, so the same restart-over-surviving-bytes
    ``serialize`` step exercises the full fs round-trip.
    """

    def __init__(self, name: str = "server", n_shards: int = 2,
                 shard_mode: str = "thread") -> None:
        self._n_shards = n_shards
        self._shard_mode = shard_mode
        self._runner = None
        self._client = None
        super().__init__(name)

    def _teardown(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None
        if self._runner is not None:
            self._runner.stop()
            self._runner = None

    close = _teardown

    def _start(self) -> None:
        from ..server import KVClient, KVServer, ServerThread

        shard_fss = self._fss
        server = KVServer(
            "server-fuzz",
            n_shards=self._n_shards,
            fs=lambda i: shard_fss[i],
            engine_config=self._config,
            shard_mode=self._shard_mode,
        )
        self._runner = ServerThread(server).start()
        self._client = KVClient(server.host, server.port)

    def reset(self) -> None:
        from .faultfs import MemFS

        self._teardown()
        self._fss = [MemFS() for _ in range(self._n_shards)]
        self._config = dict(
            memtable_entries=16,
            sstable_entries=64,
            block_entries=8,
            level0_limit=2,
            block_cache_blocks=32,
            wal_sync_every=4,
        )
        self._start()
        self._present: set[bytes] = set()

    def apply(self, op: Op) -> Any:
        client = self._client
        if op.op == "insert":
            if op.key in self._present:
                return False
            client.put(op.key, op.value)
            self._present.add(op.key)
            return True
        if op.op == "update":
            if op.key not in self._present:
                return False
            client.put(op.key, op.value)
            return True
        if op.op == "delete":
            if op.key not in self._present:
                return False
            client.delete(op.key)
            self._present.discard(op.key)
            return True
        if op.op == "put_many":
            # The wire protocol has no batch-put frame; the batch still
            # lands pair-by-pair in op order (last wins per key).
            for k, v in zip(op.keys, op.values):
                client.put(k, v)
            self._present.update(op.keys)
            return None
        if op.op == "get":
            return client.get(op.key)
        if op.op == "get_many":
            return client.get_many(op.keys)
        if op.op == "contains":
            return client.get(op.key) is not None
        if op.op in ("lower_bound", "scan"):
            return client.scan(op.key, op.count)
        if op.op == "range":
            hits = client.scan(op.key, 1)
            return bool(hits) and hits[0][0] < op.high
        if op.op == "count":
            hits = client.scan(op.key, COUNT_CLAMP)
            return sum(1 for k, _ in hits if k < op.high)
        if op.op == "len":
            return len(self._present)
        if op.op == "items":
            return client.scan(b"", len(self._present) + 1)
        if op.op == "merge":
            client.sync()
            return None
        if op.op == "serialize":
            # Graceful drain, then recover every shard from its MemFS.
            self._teardown()
            self._start()
            return None
        raise ValueError(f"unknown op {op.op!r}")


class ClusterAdapter(Adapter):
    """A full replication group (primary + follower) behind the
    cluster client, checked differentially against the oracle.

    Every write crosses the primary's serving stack *and* the WAL
    shipping path (the ack waits for the follower's durable apply);
    every point read goes to the follower as a ``GET_AT`` gated on the
    session's causal token, so read-your-writes is checked on every
    single ``get`` the fuzzer issues.  ``serialize`` is a cluster-wide
    graceful drain: stop both nodes (the primary drains its
    replication link first), then bring the same group back up over
    the surviving ``MemFS`` bytes — follower recovery, the watermark
    handshake, and the resume-from-floor path all run mid-sequence.
    """

    def __init__(self, name: str = "cluster", n_shards: int = 2) -> None:
        self._n_shards = n_shards
        self._cluster = None
        self._client = None
        super().__init__(name)

    def _teardown(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None
        if self._cluster is not None:
            self._cluster.stop()
            self._cluster = None

    close = _teardown

    def _start(self) -> None:
        from ..cluster import ClusterClient, build_local_cluster

        fss = self._fss
        self._cluster = build_local_cluster(
            "cluster-fuzz",
            n_groups=1,
            followers_per_group=1,
            n_shards=self._n_shards,
            fs_for=lambda node, shard: fss[(node, shard)],
            engine_config=self._config,
        ).start()
        self._client = ClusterClient(self._cluster.topology())

    def reset(self) -> None:
        from .faultfs import MemFS

        self._teardown()
        self._fss = {
            (f"g0-n{n}", s): MemFS()
            for n in range(2)
            for s in range(self._n_shards)
        }
        self._config = dict(
            memtable_entries=16,
            sstable_entries=64,
            block_entries=8,
            level0_limit=2,
            block_cache_blocks=32,
            wal_sync_every=4,
        )
        self._start()
        self._present: set[bytes] = set()

    def apply(self, op: Op) -> Any:
        client = self._client
        if op.op == "insert":
            if op.key in self._present:
                return False
            client.put(op.key, op.value)
            self._present.add(op.key)
            return True
        if op.op == "update":
            if op.key not in self._present:
                return False
            client.put(op.key, op.value)
            return True
        if op.op == "delete":
            if op.key not in self._present:
                return False
            client.delete(op.key)
            self._present.discard(op.key)
            return True
        if op.op == "put_many":
            for k, v in zip(op.keys, op.values):
                client.put(k, v)
            self._present.update(op.keys)
            return None
        if op.op == "get":
            return client.get(op.key)
        if op.op == "get_many":
            return client.get_many(op.keys)
        if op.op == "contains":
            return client.get(op.key) is not None
        if op.op in ("lower_bound", "scan"):
            return client.scan(op.key, op.count)
        if op.op == "range":
            hits = client.scan(op.key, 1)
            return bool(hits) and hits[0][0] < op.high
        if op.op == "count":
            hits = client.scan(op.key, COUNT_CLAMP)
            return sum(1 for k, _ in hits if k < op.high)
        if op.op == "len":
            return len(self._present)
        if op.op == "items":
            return client.scan(b"", len(self._present) + 1)
        if op.op == "merge":
            client.sync()
            return None
        if op.op == "serialize":
            # Drain the whole group, then recover it from the MemFSes.
            self._teardown()
            self._start()
            return None
        raise ValueError(f"unknown op {op.op!r}")


# -- registry ----------------------------------------------------------------


def _surf_builder(suffix_type: str, **kw) -> Callable[[list[bytes]], SuRF]:
    return lambda keys: SuRF(keys, suffix_type=suffix_type, **kw)


def _lsm_surf_filter(keys: Sequence[bytes]) -> SuRF:
    """Per-SSTable SuRF for the ``lsm_surf`` adapter (real-bit suffixes
    exercise the truncated-prefix seek path)."""
    return SuRF(sorted(keys), suffix_type="real", real_bits=4)


def all_structures() -> dict[str, Callable[[], Adapter]]:
    """Every structure the differential executor can drive."""
    return {
        # dynamic trees (Chapter 2 baselines + HOPE-study extras)
        "btree": lambda: DynamicAdapter("btree", BPlusTree),
        "skiplist": lambda: DynamicAdapter("skiplist", PagedSkipList),
        "art": lambda: DynamicAdapter("art", ART),
        "masstree": lambda: DynamicAdapter("masstree", Masstree),
        "prefix_btree": lambda: DynamicAdapter("prefix_btree", PrefixBPlusTree),
        "hot": lambda: DynamicAdapter("hot", HOTrie),
        "ttree": lambda: DynamicAdapter("ttree", TTree),
        # gapped batch-insert tree (tiny leaves force splits/rebalances)
        "gapped": lambda: GappedAdapter(
            "gapped", lambda: GappedBPlusTree(leaf_capacity=16)
        ),
        # D-to-S compact structures
        "compact_btree": lambda: StaticAdapter("compact_btree", CompactBPlusTree),
        "compact_skiplist": lambda: StaticAdapter("compact_skiplist", CompactSkipList),
        "compact_art": lambda: StaticAdapter("compact_art", CompactART),
        "compact_masstree": lambda: StaticAdapter("compact_masstree", CompactMasstree),
        "compressed_btree": lambda: StaticAdapter("compressed_btree", CompressedBPlusTree),
        # succinct trie
        "fst": lambda: FstAdapter("fst"),
        # filters (one-sided comparison)
        "surf_base": lambda: FilterAdapter(
            "surf_base", _surf_builder("none"), supports_count=True
        ),
        "surf_hash": lambda: FilterAdapter(
            "surf_hash", _surf_builder("hash", hash_bits=8), supports_count=True
        ),
        "surf_real": lambda: FilterAdapter(
            "surf_real", _surf_builder("real", real_bits=8), supports_count=True
        ),
        "bloom": lambda: FilterAdapter(
            "bloom", lambda keys: BloomFilter(keys, bits_per_key=10)
        ),
        "prefix_bloom": lambda: FilterAdapter(
            "prefix_bloom", lambda keys: PrefixBloomFilter(keys, prefix_len=4)
        ),
        # hybrid dual-stage indexes
        "hybrid_btree": lambda: DynamicAdapter(
            "hybrid_btree", lambda: hybrid_btree(min_merge_size=64)
        ),
        "hybrid_skiplist": lambda: DynamicAdapter(
            "hybrid_skiplist", lambda: hybrid_skiplist(min_merge_size=64)
        ),
        "hybrid_art": lambda: DynamicAdapter(
            "hybrid_art", lambda: hybrid_art(min_merge_size=64)
        ),
        "hybrid_masstree": lambda: DynamicAdapter(
            "hybrid_masstree", lambda: hybrid_masstree(min_merge_size=64)
        ),
        "hybrid_compressed_btree": lambda: DynamicAdapter(
            "hybrid_compressed_btree",
            lambda: hybrid_compressed_btree(min_merge_size=64),
        ),
        "hybrid_gapped": lambda: DynamicAdapter(
            "hybrid_gapped", lambda: hybrid_gapped(min_merge_size=64)
        ),
        # HOPE-wrapped trees
        "hope_btree": lambda: HopeAdapter("hope_btree", BPlusTree),
        "hope_art": lambda: HopeAdapter("hope_art", ART, scheme="single"),
        # durable LSM engine (WAL + manifest + on-disk SSTables on MemFS)
        "lsm": lambda: LsmAdapter("lsm"),
        "lsm_bg": lambda: LsmAdapter("lsm_bg", background=True),
        "lsm_surf": lambda: LsmAdapter(
            "lsm_surf",
            filter_factory=lambda keys: _lsm_surf_filter(keys),
        ),
        # the sharded KV server, loopback TCP through the real protocol
        "server": lambda: ServerAdapter("server"),
        "server_proc": lambda: ServerAdapter(
            "server_proc", shard_mode="process"
        ),
        # a replication group (primary + follower, follower reads)
        "cluster": lambda: ClusterAdapter("cluster"),
    }


def make_adapter(name: str) -> Adapter:
    registry = all_structures()
    if name not in registry:
        raise KeyError(
            f"unknown structure {name!r}; choose from {sorted(registry)}"
        )
    return registry[name]()
