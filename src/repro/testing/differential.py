"""Op-by-op differential execution against the reference oracle.

Every op is applied to the trusted :class:`SortedOracle` and to the
structure's adapter; answers are diffed immediately so a failure names
the exact op that first diverged.  Exact structures must match the
oracle bit-for-bit; filters are held to the one-sided-error contract
through :class:`FilterOracle` (false positives counted, false
negatives fatal).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .adapters import COUNT_CLAMP, SKIPPED, Adapter
from .ops import Op
from .oracle import FilterOracle, SortedOracle


@dataclass
class Failure:
    """The first divergence between a structure and the oracle."""

    structure: str
    op_index: int
    op: Op
    expected: Any
    got: Any
    message: str

    def describe(self) -> str:
        return (
            f"{self.structure}: op #{self.op_index} ({self.op.describe()}) — "
            f"{self.message}\n  expected: {self.expected!r}\n  got:      {self.got!r}"
        )


@dataclass
class FuzzResult:
    structure: str
    n_ops: int
    applied: int = 0
    skipped: int = 0
    failure: Failure | None = None
    fp_rate: float = 0.0
    elapsed_seconds: float = 0.0
    shrunk_ops: list[Op] | None = None
    repro_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _oracle_answer(oracle: SortedOracle, op: Op) -> Any:
    """Apply ``op`` to the oracle and return the reference answer."""
    if op.op == "insert":
        return oracle.insert(op.key, op.value)
    if op.op == "update":
        return oracle.update(op.key, op.value)
    if op.op == "delete":
        return oracle.delete(op.key)
    if op.op == "put_many":
        oracle.put_many(zip(op.keys, op.values))
        return None
    if op.op == "get":
        return oracle.get(op.key)
    if op.op == "get_many":
        # The batch reference is element-wise scalar gets: batch/scalar
        # divergence in a structure shows up as an oracle mismatch.
        return [oracle.get(k) for k in op.keys]
    if op.op == "contains":
        return op.key in oracle
    if op.op == "lower_bound" or op.op == "scan":
        return oracle.scan(op.key, op.count)
    if op.op == "range":
        return oracle.range_any(op.key, op.high)
    if op.op == "count":
        return min(oracle.range_count(op.key, op.high), COUNT_CLAMP)
    if op.op == "len":
        return len(oracle)
    if op.op == "items":
        return list(oracle.items())
    if op.op in ("merge", "serialize"):
        return None
    raise ValueError(f"unknown op {op.op!r}")


def _values_only(result: Any) -> Any:
    """Project (key, value) lists to value lists (HOPE comparisons).

    Batch results (``get_many``) are already plain value lists and pass
    through unchanged."""
    if isinstance(result, list) and (not result or isinstance(result[0], tuple)):
        return [v for _k, v in result]
    return result


def run_sequence(
    adapter: Adapter, ops: Sequence[Op]
) -> tuple[Failure | None, dict[str, Any]]:
    """Run ``ops`` through ``adapter`` and the oracle; diff op-by-op.

    Returns the first :class:`Failure` (or None) plus run statistics.
    The adapter is reset first, so a fresh run is always deterministic,
    and closed afterwards — server adapters own real worker threads
    and processes, and every caller (fuzz, shrink, replay, CLI) funnels
    through here, so this is where leaks are made impossible.
    """
    try:
        return _diff_sequence(adapter, ops)
    finally:
        adapter.close()


def _diff_sequence(
    adapter: Adapter, ops: Sequence[Op]
) -> tuple[Failure | None, dict[str, Any]]:
    adapter.reset()
    oracle = SortedOracle()
    filter_oracle = FilterOracle(oracle) if adapter.kind == "filter" else None
    applied = skipped = 0
    for i, op in enumerate(ops):
        is_read = op.op in (
            "get", "get_many", "contains", "lower_bound", "scan", "range",
            "count", "len", "items",
        )
        # Filters check reads against the *pre-op* oracle state; the
        # oracle only mutates on write ops, so order per-op is safe.
        try:
            got = adapter.apply(op)
        except Exception:
            _oracle_answer(oracle, op)  # keep oracle state consistent
            return (
                Failure(
                    adapter.name,
                    i,
                    op,
                    expected="no exception",
                    got=traceback.format_exc(limit=8),
                    message="adapter raised",
                ),
                {"applied": applied, "skipped": skipped, "fp_rate": 0.0},
            )
        expected = _oracle_answer(oracle, op)
        if got is SKIPPED:
            skipped += 1
            continue
        applied += 1
        if filter_oracle is not None and is_read:
            if op.op in ("get", "contains"):
                verdict = filter_oracle.check_point(op.key, bool(got))
            elif op.op == "get_many":
                verdict = "ok"
                for k, answer in zip(op.keys, got):
                    v = filter_oracle.check_point(k, bool(answer))
                    if v not in ("ok", "fp"):
                        verdict = v
                        break
            elif op.op == "range":
                verdict = filter_oracle.check_range(op.key, op.high, bool(got))
            elif op.op == "count":
                verdict = filter_oracle.check_count(op.key, op.high, got)
            elif op.op == "len":
                verdict = "ok" if got == expected else "false_negative"
            else:
                verdict = "ok"
            if verdict not in ("ok", "fp"):
                return (
                    Failure(
                        adapter.name, i, op,
                        expected=f"one-sided answer consistent with oracle "
                                 f"(truth: {expected!r})",
                        got=got,
                        message=verdict,
                    ),
                    {"applied": applied, "skipped": skipped,
                     "fp_rate": filter_oracle.fp_rate()},
                )
            continue
        if adapter.compare == "values":
            expected_cmp, got_cmp = _values_only(expected), _values_only(got)
        else:
            expected_cmp, got_cmp = expected, got
        if got_cmp != expected_cmp:
            return (
                Failure(
                    adapter.name, i, op,
                    expected=expected_cmp, got=got_cmp,
                    message="answer diverged from oracle",
                ),
                {"applied": applied, "skipped": skipped,
                 "fp_rate": filter_oracle.fp_rate() if filter_oracle else 0.0},
            )
    return (
        None,
        {
            "applied": applied,
            "skipped": skipped,
            "fp_rate": filter_oracle.fp_rate() if filter_oracle else 0.0,
        },
    )


def fuzz_structure(
    name: str,
    ops: Sequence[Op],
    adapter_factory: Callable[[], Adapter],
    shrink_on_failure: bool = True,
) -> FuzzResult:
    """Differential-fuzz one structure over a prepared op sequence."""
    from .shrink import shrink  # local import: shrink uses run_sequence

    started = time.perf_counter()
    adapter = adapter_factory()
    failure, stats = run_sequence(adapter, ops)
    result = FuzzResult(
        structure=name,
        n_ops=len(ops),
        applied=stats["applied"],
        skipped=stats["skipped"],
        failure=failure,
        fp_rate=stats["fp_rate"],
    )
    if failure is not None and shrink_on_failure:
        result.shrunk_ops = shrink(adapter_factory, list(ops[: failure.op_index + 1]))
        # Re-run the shrunk sequence so the reported failure describes it.
        refailure, _ = run_sequence(adapter_factory(), result.shrunk_ops)
        if refailure is not None:
            result.failure = refailure
    result.elapsed_seconds = time.perf_counter() - started
    return result
