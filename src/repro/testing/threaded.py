"""Concurrency torture: readers race a writer over the background LSM.

The single-threaded differential fuzzer (:mod:`.differential`) proves
the engine answers match the oracle when ops are applied one at a
time.  This module attacks the part that harness cannot see: a
``background=True`` engine whose flusher and compactor rewrite levels
*while* reads are in flight.

One writer thread applies a deterministic write-only op sequence —
every op allocates exactly one sequence number, so **op ``i`` commits
at sequence ``i``** (1-based).  Reader threads run concurrently and
check two kinds of invariants:

* **Snapshot consistency** (the strong oracle): a reader pins
  ``engine.snapshot()`` at some sequence ``S`` and requires every read
  through it — full scan, point gets, batched gets, seeks, range
  counts — to equal a model built by replaying exactly ``ops[:S]``.
  Because the snapshot must *replay to the oracle state at pin time*,
  any torn read (a flush or compaction swapping state mid-scan), lost
  update, or premature table unlink is an immediate failure.

* **Raw-read sanity** (the loose oracle): non-snapshot ``get``/
  ``seek``/``scan`` calls race the writer, so their answers are only
  required to be *plausible*: a returned value must be one the op
  sequence actually wrote to that key, and scans must return strictly
  ascending keys.  This catches cross-key corruption and invented
  values without over-constraining legal interleavings.

When a snapshot check fails, the failure is bridged back into the
deterministic differential harness: the write prefix ``ops[:S]`` is
converted to standard :class:`~.ops.Op` records, probes for the
mismatched keys plus a full ``items`` comparison are appended, and the
sequence is replayed through the ``lsm_bg`` adapter with ddmin
shrinking — a state bug (as opposed to a pure race) comes back as a
minimal repro script, same as any other fuzz failure.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .ops import Op, key_universe

#: One torture write op: ("put", key, value) or ("delete", key, None).
WriteOp = tuple[str, bytes, Any]

#: Tiny engine geometry so a short run crosses many freezes, flushes,
#: and compactions (mirrors LsmAdapter's inline config, plus the
#: background lifecycle knobs).
TORTURE_CONFIG = dict(
    memtable_entries=16,
    sstable_entries=64,
    block_entries=8,
    level0_limit=2,
    block_cache_blocks=16,
    wal_sync_every=4,
    background=True,
    max_immutables=2,
    slowdown_sleep=0.0002,
)


def generate_write_ops(
    seed: int,
    n_ops: int,
    keyspace: str = "int64",
    universe_size: int | None = None,
    delete_fraction: float = 0.25,
) -> list[WriteOp]:
    """A deterministic write-only sequence; op ``i`` == sequence ``i+1``.

    Values encode their own op index (``i + 1``), so any value the
    engine ever returns names the exact write that produced it — the
    raw-read checks lean on that.
    """
    rng = random.Random(seed ^ 0x70871)
    if universe_size is None:
        universe_size = max(32, min(512, n_ops // 3))
    universe = key_universe(keyspace, universe_size, seed)
    ops: list[WriteOp] = []
    for i in range(n_ops):
        key = universe[rng.randrange(len(universe))]
        if rng.random() < delete_fraction:
            ops.append(("delete", key, None))
        else:
            ops.append(("put", key, i + 1))
    return ops


def model_after(ops: Sequence[WriteOp], k: int) -> dict[bytes, Any]:
    """The exact key→value state after the first ``k`` ops."""
    model: dict[bytes, Any] = {}
    for kind, key, value in ops[:k]:
        if kind == "put":
            model[key] = value
        else:
            model.pop(key, None)
    return model


@dataclass
class TortureFailure:
    """One invariant violation observed by a reader thread."""

    kind: str  # "snapshot" | "raw" | "exception"
    seq: int  # snapshot sequence (snapshot kind) or applied floor (raw)
    check: str  # which read diverged (scan/get/seek/count/...)
    expected: Any
    got: Any

    def describe(self) -> str:
        return (
            f"{self.kind} divergence at seq {self.seq} ({self.check})\n"
            f"  expected: {self.expected!r}\n  got:      {self.got!r}"
        )


@dataclass
class TortureResult:
    seed: int
    n_ops: int
    readers: int
    applied: int = 0
    snapshot_checks: int = 0
    raw_checks: int = 0
    elapsed_seconds: float = 0.0
    engine_info: dict = field(default_factory=dict)
    failure: TortureFailure | None = None
    shrunk_ops: list[Op] | None = None
    replay_deterministic: bool | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


class _ReaderState:
    """Per-reader incremental oracle: replays forward as seq grows."""

    def __init__(self, ops: Sequence[WriteOp]) -> None:
        self._ops = ops
        self._model: dict[bytes, Any] = {}
        self._k = 0

    def at(self, seq: int) -> dict[bytes, Any]:
        """Model after ``seq`` ops.  Sequences only grow, so this is an
        O(delta) forward replay, never a restart."""
        if seq < self._k:  # snapshot older than cache: rebuild (rare)
            self._model, self._k = {}, 0
        for kind, key, value in self._ops[self._k : seq]:
            if kind == "put":
                self._model[key] = value
            else:
                self._model.pop(key, None)
        self._k = seq
        return self._model


class _Torture:
    def __init__(
        self,
        seed: int,
        ops: list[WriteOp],
        readers: int,
        engine_config: dict | None,
    ) -> None:
        from ..lsm import LSMTree
        from .faultfs import MemFS

        self.seed = seed
        self.ops = ops
        self.n_readers = readers
        self.fs = MemFS()
        config = dict(TORTURE_CONFIG)
        if engine_config:
            config.update(engine_config)
        self.engine = LSMTree.open("torture-db", fs=self.fs, **config)
        # Every value each key ever takes (plus "absent") — the loose
        # envelope raw reads are checked against.
        self.ever: dict[bytes, set] = {}
        for kind, key, value in ops:
            self.ever.setdefault(key, set())
            if kind == "put":
                self.ever[key].add(value)
        self.keys = sorted(self.ever)
        self.applied = 0  # monotone: ops[:applied] fully acked
        self.stop = threading.Event()
        self.failures: list[TortureFailure] = []
        self.lock = threading.Lock()
        self.snapshot_checks = 0
        self.raw_checks = 0

    # -- failure funnel ----------------------------------------------------

    def _fail(self, kind: str, seq: int, check: str, expected, got) -> None:
        with self.lock:
            self.failures.append(TortureFailure(kind, seq, check, expected, got))
        self.stop.set()

    # -- writer ------------------------------------------------------------

    def _writer(self) -> None:
        try:
            for i, (kind, key, value) in enumerate(self.ops):
                if self.stop.is_set():
                    return
                if kind == "put":
                    self.engine.put(key, value)
                else:
                    self.engine.delete(key)
                self.applied = i + 1
        except Exception as exc:  # engine/WAL error is a hard failure
            self._fail("exception", self.applied, "writer", "no exception", repr(exc))
        finally:
            self.stop.set()

    # -- readers -----------------------------------------------------------

    def _reader(self, idx: int) -> None:
        rng = random.Random((self.seed << 8) ^ (0xB0B + idx))
        oracle = _ReaderState(self.ops)
        try:
            while not self.stop.is_set():
                if rng.random() < 0.6:
                    self._snapshot_check(rng, oracle)
                else:
                    self._raw_check(rng)
            # One final check at the full sequence so every run ends
            # with a whole-state snapshot comparison.
            self._snapshot_check(rng, oracle, hold=0.0)
        except Exception as exc:
            self._fail("exception", self.applied, f"reader-{idx}", "no exception",
                       repr(exc))

    def _snapshot_check(self, rng: random.Random, oracle: _ReaderState,
                        hold: float | None = None) -> None:
        with self.engine.snapshot() as snap:
            seq = snap.seq
            # Hold the pin across a beat so flush/compaction commit
            # underneath — the refcount protocol is what keeps the
            # tables this snapshot reads alive.
            if hold is None:
                hold = rng.random() * 0.002
            if hold:
                time.sleep(hold)
            model = oracle.at(seq)
            expected_items = sorted(model.items())
            got = snap.scan(b"", len(model) + 1)
            if got != expected_items:
                self._fail("snapshot", seq, "scan", expected_items, got)
                return
            sample = [self.keys[rng.randrange(len(self.keys))] for _ in range(4)]
            for key in sample:
                v = snap.get(key)
                if v != model.get(key):
                    self._fail("snapshot", seq, f"get {key!r}", model.get(key), v)
                    return
            batch = snap.get_many(sample)
            if batch != [model.get(k) for k in sample]:
                self._fail("snapshot", seq, f"get_many {sample!r}",
                           [model.get(k) for k in sample], batch)
                return
            low = sample[0]
            want = next(((k, v) for k, v in expected_items if k >= low), None)
            if snap.seek(low) != want:
                self._fail("snapshot", seq, f"seek {low!r}", want, snap.seek(low))
                return
            a, b = sorted((sample[1], sample[2]))
            # LSM range count is approximate by contract (stale versions
            # across runs may be double-counted), but it must never
            # undercount the live keys a pinned snapshot can see.
            want_n = sum(1 for k, _ in expected_items if a <= k < b)
            got_n = snap.count(a, b)
            if got_n < want_n:
                self._fail("snapshot", seq, f"count [{a!r},{b!r})",
                           f">= {want_n}", got_n)
                return
        with self.lock:
            self.snapshot_checks += 1

    def _raw_check(self, rng: random.Random) -> None:
        key = self.keys[rng.randrange(len(self.keys))]
        v = self.engine.get(key)
        if v is not None and v not in self.ever[key]:
            self._fail("raw", self.applied, f"get {key!r}",
                       f"None or one of {sorted(self.ever[key])!r}", v)
            return
        hits = self.engine.scan(key, 1 + rng.randrange(8))
        prev = None
        for k, val in hits:
            if k < key or (prev is not None and k <= prev):
                self._fail("raw", self.applied, f"scan {key!r}",
                           "strictly ascending keys >= low", [k for k, _ in hits])
                return
            if val not in self.ever.get(k, ()):
                self._fail("raw", self.applied, f"scan {key!r} hit {k!r}",
                           f"one of {sorted(self.ever.get(k, ()))!r}", val)
                return
            prev = k
        with self.lock:
            self.raw_checks += 1

    # -- run ---------------------------------------------------------------

    def run(self) -> TortureResult:
        started = time.perf_counter()
        writer = threading.Thread(target=self._writer, name="torture-writer")
        readers = [
            threading.Thread(target=self._reader, args=(i,), name=f"torture-reader-{i}")
            for i in range(self.n_readers)
        ]
        writer.start()
        for t in readers:
            t.start()
        writer.join()
        for t in readers:
            t.join()
        result = TortureResult(
            seed=self.seed,
            n_ops=len(self.ops),
            readers=self.n_readers,
            applied=self.applied,
            snapshot_checks=self.snapshot_checks,
            raw_checks=self.raw_checks,
            failure=self.failures[0] if self.failures else None,
        )
        try:
            if result.ok:
                # Quiesce and take one last full-state reading through a
                # recovered engine: close + reopen over the same fs, then
                # compare against the complete model (durability of the
                # whole torture run, not just in-memory agreement).
                self.engine.wait_idle()
                result.engine_info = self.engine.info()
                self.engine.close()
                from ..lsm import LSMTree

                reopened = LSMTree.open("torture-db", fs=self.fs, **{
                    **TORTURE_CONFIG, "background": False})
                try:
                    model = model_after(self.ops, len(self.ops))
                    got = reopened.scan(b"", len(model) + 1)
                    if got != sorted(model.items()):
                        result.failure = TortureFailure(
                            "snapshot", len(self.ops), "post-recovery scan",
                            sorted(model.items()), got)
                finally:
                    reopened.close()
            else:
                result.engine_info = self.engine.info()
                self.engine.close()
        except Exception as exc:
            if result.failure is None:
                result.failure = TortureFailure(
                    "exception", self.applied, "shutdown", "clean close", repr(exc))
        result.elapsed_seconds = time.perf_counter() - started
        return result


def repro_ops_for(
    write_ops: Sequence[WriteOp], seq: int, probe_keys: Sequence[bytes] = ()
) -> list[Op]:
    """Convert a torture prefix into a differential-harness sequence.

    The adapter vocabulary distinguishes insert/update and skips
    deletes of absent keys, so membership is tracked while translating;
    the resulting sequence drives the engine through the same key/value
    history.  Probes for the diverged keys plus a full ``items``
    comparison are appended so a deterministic state bug fails the
    replay at the same place the torture run did.
    """
    present: set[bytes] = set()
    out: list[Op] = []
    for kind, key, value in write_ops[:seq]:
        if kind == "put":
            out.append(Op("update" if key in present else "insert",
                          key=key, value=value))
            present.add(key)
        elif key in present:
            out.append(Op("delete", key=key))
            present.discard(key)
    for key in probe_keys:
        out.append(Op("get", key=key))
    out.append(Op("items"))
    return out


def run_torture(
    seed: int = 0,
    n_ops: int = 1500,
    readers: int = 3,
    keyspace: str = "int64",
    engine_config: dict | None = None,
    shrink_on_failure: bool = True,
    adapter_factory: Callable | None = None,
) -> TortureResult:
    """Run one seeded torture round; bridge failures to ddmin shrinking.

    If a snapshot invariant fails, the offending prefix is replayed
    deterministically through the ``lsm_bg`` differential adapter.  A
    reproducing replay is shrunk with ddmin (``result.shrunk_ops``,
    ``replay_deterministic=True``); a passing replay marks the failure
    as interleaving-only (``replay_deterministic=False``) and keeps the
    full prefix.
    """
    ops = generate_write_ops(seed, n_ops, keyspace=keyspace)
    result = _Torture(seed, ops, readers, engine_config).run()
    if result.failure is not None and result.failure.kind != "exception":
        from .adapters import make_adapter
        from .differential import fuzz_structure

        factory = adapter_factory or (lambda: make_adapter("lsm_bg"))
        seq = min(max(result.failure.seq, 1), len(ops))
        probe = [k for k in _probe_keys(result.failure) if isinstance(k, bytes)]
        repro = repro_ops_for(ops, seq, probe)
        fuzz = fuzz_structure("lsm_bg", repro, factory,
                              shrink_on_failure=shrink_on_failure)
        result.replay_deterministic = not fuzz.ok
        if not fuzz.ok:
            result.shrunk_ops = fuzz.shrunk_ops or repro
        else:
            result.shrunk_ops = repro
    return result


def _probe_keys(failure: TortureFailure) -> list:
    """Best-effort keys worth probing in the deterministic replay."""
    text = failure.check
    # check strings embed reprs like b'...'; cheapest is to re-parse
    # nothing and just return [] when the check wasn't key-specific.
    for prefix in ("get ", "seek ", "get_many "):
        if text.startswith(prefix):
            try:
                parsed = eval(text[len(prefix):], {"__builtins__": {}}, {})  # noqa: S307
            except Exception:
                return []
            if isinstance(parsed, bytes):
                return [parsed]
            if isinstance(parsed, (list, tuple)):
                return [k for k in parsed if isinstance(k, bytes)]
    return []
