"""Fault-injecting filesystem: power failures at every durability point.

:class:`MemFS` implements the :class:`repro.lsm.fs.FileSystem`
interface entirely in memory, but — crucially — models the
durable/volatile split of a real disk: appended bytes sit in a
*volatile* tail until ``sync()`` promotes them to the *durable*
prefix.  Metadata operations (``rename``, ``remove``, ``mkdir``)
behave like a journaled filesystem: atomic and immediately durable.

:class:`FaultFS` adds the crash machinery.  Every durability point —
each ``sync()`` and each ``rename()`` — increments a counter; when the
counter reaches ``fail_at``, the operation does *not* take effect and
:class:`PowerFailure` is raised.  From that moment the filesystem is
frozen (all further access raises), and :meth:`FaultFS.crashed_view`
reconstructs what a machine would find after reboot under a chosen
torn-write model:

* ``"drop"``    — every unsynced tail is lost entirely;
* ``"keep"``    — every unsynced tail survived (the OS got it out);
* ``"torn"``    — half of each unsynced tail survived (a torn write);
* ``"corrupt"`` — the tail survived but one byte flipped in flight.

A recovery procedure is correct iff it restores a state containing
every acknowledged (synced) write and nothing the op stream never
produced — under *all four* models at *every* crash point, which is
exactly what ``tests/test_lsm_durability.py`` enumerates.
"""

from __future__ import annotations

import threading

from ..lsm.fs import FileSystem, WritableFile


class PowerFailure(Exception):
    """The simulated machine lost power mid-operation."""


class _MemFile:
    __slots__ = ("durable", "volatile")

    def __init__(self) -> None:
        self.durable = b""
        self.volatile = bytearray()

    @property
    def content(self) -> bytes:
        return self.durable + bytes(self.volatile)

    def survivor(self, mode: str) -> bytes:
        """Post-crash content under one torn-write model."""
        tail = bytes(self.volatile)
        if mode == "drop" or not tail:
            return self.durable
        if mode == "keep":
            return self.durable + tail
        if mode == "torn":
            return self.durable + tail[: (len(tail) + 1) // 2]
        if mode == "corrupt":
            # Deterministic single-bit-ish damage: flip one byte in the
            # middle of the unsynced tail.
            i = len(tail) // 2
            return self.durable + tail[:i] + bytes([tail[i] ^ 0xA5]) + tail[i + 1 :]
        raise ValueError(f"unknown crash mode {mode!r}")


#: The torn-write models :meth:`FaultFS.crashed_view` accepts.
CRASH_MODES = ("drop", "keep", "torn", "corrupt")


class _MemWritableFile(WritableFile):
    def __init__(self, fs: "MemFS", path: str) -> None:
        self._fs = fs
        self._path = path
        self._open = True

    def append(self, data: bytes) -> None:
        with self._fs._lock:
            self._fs._check_alive()
            if not self._open:
                raise ValueError("file is closed")
            self._fs._files[self._path].volatile += data

    def sync(self) -> None:
        with self._fs._lock:
            self._fs._check_alive()
            self._fs._durability_point(f"sync {self._path}")
            f = self._fs._files.get(self._path)
            if f is not None:
                f.durable += bytes(f.volatile)
                f.volatile = bytearray()

    def close(self) -> None:
        self._open = False


class MemFS(FileSystem):
    """In-memory filesystem with an explicit durable/volatile split.

    Thread-safe: a background-mode LSM engine has its flusher and
    compactor writing tables and manifests while the writer thread
    appends WAL records, so every operation — including the durability
    point counter FaultFS layers on top — runs under one lock, which
    also gives crash injection a single global order across threads.
    The lock is skipped when pickling (process shards ship their fs to
    a spawned child) and recreated on unpickle.
    """

    def __init__(self) -> None:
        self._files: dict[str, _MemFile] = {}
        self._dirs: set[str] = set()
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- crash hooks (no-ops here; FaultFS overrides) ----------------------

    def _check_alive(self) -> None:
        pass

    def _durability_point(self, label: str) -> None:
        pass

    # -- FileSystem interface ----------------------------------------------

    def mkdir(self, path: str) -> None:
        with self._lock:
            self._check_alive()
            self._dirs.add(path.rstrip("/"))

    def exists(self, path: str) -> bool:
        with self._lock:
            self._check_alive()
            return path in self._files or path.rstrip("/") in self._dirs

    def listdir(self, path: str) -> list[str]:
        with self._lock:
            self._check_alive()
            prefix = path.rstrip("/") + "/"
            return sorted(
                {
                    name[len(prefix) :].split("/", 1)[0]
                    for name in self._files
                    if name.startswith(prefix)
                }
            )

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        with self._lock:
            self._check_alive()
            if path not in self._files:
                raise FileNotFoundError(path)
            data = self._files[path].content
            if length is None:
                return data[offset:]
            return data[offset : offset + length]

    def create(self, path: str) -> WritableFile:
        with self._lock:
            self._check_alive()
            self._files[path] = _MemFile()
            return _MemWritableFile(self, path)

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            self._check_alive()
            if src not in self._files:
                raise FileNotFoundError(src)
            self._durability_point(f"rename {src} -> {dst}")
            self._files[dst] = self._files.pop(src)

    def remove(self, path: str) -> None:
        with self._lock:
            self._check_alive()
            if path not in self._files:
                raise FileNotFoundError(path)
            del self._files[path]


class FaultFS(MemFS):
    """MemFS that loses power at the ``fail_at``-th durability point."""

    def __init__(self, fail_at: int | None = None) -> None:
        super().__init__()
        self.fail_at = fail_at
        self.sync_points = 0
        self.crashed = False
        self.crash_label: str | None = None

    def _check_alive(self) -> None:
        if self.crashed:
            raise PowerFailure("filesystem is down (crash already injected)")

    def _durability_point(self, label: str) -> None:
        self.sync_points += 1
        if self.fail_at is not None and self.sync_points >= self.fail_at:
            self.crashed = True
            self.crash_label = label
            raise PowerFailure(f"power failure at point {self.sync_points}: {label}")

    def crashed_view(self, mode: str = "drop") -> MemFS:
        """The filesystem a rebooted machine would mount.

        Durable prefixes survive verbatim; each file's unsynced tail is
        transformed per ``mode`` (see module docstring).  The returned
        :class:`MemFS` is fully live — recovery code runs against it
        without further fault injection.
        """
        if mode not in CRASH_MODES:
            raise ValueError(f"unknown crash mode {mode!r}; choose {CRASH_MODES}")
        view = MemFS()
        with self._lock:
            view._dirs = set(self._dirs)
            for path, f in self._files.items():
                nf = _MemFile()
                nf.durable = f.survivor(mode)
                view._files[path] = nf
        return view
