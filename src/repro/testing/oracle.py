"""Reference models the differential executor trusts.

``SortedOracle`` implements the :class:`repro.trees.base.OrderedIndex`
contract with a plain dict plus a sorted key list — the simplest
possible implementation, kept deliberately free of any of the cleverness
(succinct encodings, stage merging, key compression) under test.

``FilterOracle`` wraps the same key set for approximate-membership
structures and enforces the one-sided-error contract of Chapter 4:
false positives are allowed (and counted, so FPR regressions are
visible), false negatives are fatal.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class SortedOracle:
    """Sorted-dict reference model for ordered-index semantics."""

    def __init__(self) -> None:
        self._map: dict[bytes, Any] = {}
        self._keys: list[bytes] = []

    # -- mutations (OrderedIndex contract) ---------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        if key in self._map:
            return False
        self._map[key] = value
        bisect.insort(self._keys, key)
        return True

    def update(self, key: bytes, value: Any) -> bool:
        if key not in self._map:
            return False
        self._map[key] = value
        return True

    def put_many(self, pairs) -> None:
        """Sequential upsert (the batched-write reference: last wins)."""
        for key, value in pairs:
            if not self.insert(key, value):
                self.update(key, value)

    def delete(self, key: bytes) -> bool:
        if key not in self._map:
            return False
        del self._map[key]
        idx = bisect.bisect_left(self._keys, key)
        del self._keys[idx]
        return True

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        return self._map.get(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        idx = bisect.bisect_left(self._keys, key)
        for k in self._keys[idx:]:
            yield k, self._map[k]

    def scan(self, key: bytes, count: int) -> list[tuple[bytes, Any]]:
        idx = bisect.bisect_left(self._keys, key)
        return [(k, self._map[k]) for k in self._keys[idx : idx + count]]

    def items(self) -> Iterator[tuple[bytes, Any]]:
        for k in self._keys:
            yield k, self._map[k]

    def range_any(self, low: bytes, high: bytes, inclusive_high: bool = False) -> bool:
        """Is any stored key in [low, high) (or [low, high])?"""
        idx = bisect.bisect_left(self._keys, low)
        if idx >= len(self._keys):
            return False
        k = self._keys[idx]
        return k < high or (inclusive_high and k == high)

    def range_count(self, low: bytes, high: bytes) -> int:
        """Number of stored keys in [low, high)."""
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_left(self._keys, high)
        return max(0, hi - lo)


class FilterOracle:
    """One-sided-error referee for approximate membership filters.

    Verdicts: ``"ok"`` (answer consistent), ``"fp"`` (false positive —
    allowed, counted), ``"false_negative"`` (fatal: the filter denied a
    key/range the oracle knows is present — Chapter 4's contract says a
    negative answer *proves* absence).
    """

    def __init__(self, oracle: SortedOracle) -> None:
        self.oracle = oracle
        self.point_queries = 0
        self.range_queries = 0
        self.false_positives = 0

    def check_point(self, key: bytes, answer: bool) -> str:
        self.point_queries += 1
        present = key in self.oracle
        if present and not answer:
            return "false_negative"
        if not present and answer:
            self.false_positives += 1
            return "fp"
        return "ok"

    def check_range(
        self, low: bytes, high: bytes, answer: bool, inclusive_high: bool = False
    ) -> str:
        self.range_queries += 1
        present = self.oracle.range_any(low, high, inclusive_high)
        if present and not answer:
            return "false_negative"
        if not present and answer:
            self.false_positives += 1
            return "fp"
        return "ok"

    def check_count(self, low: bytes, high: bytes, answer: int, slack: int = 2) -> str:
        """Approximate counts may over-count by ``slack`` at truncated
        boundaries (Section 4.1.5) but must never under-count."""
        true_count = self.oracle.range_count(low, high)
        if answer < true_count:
            return "false_negative"
        if answer > true_count + slack:
            return "over_count"
        if answer != true_count:
            self.false_positives += 1
            return "fp"
        return "ok"

    def fp_rate(self) -> float:
        total = self.point_queries + self.range_queries
        return self.false_positives / total if total else 0.0
