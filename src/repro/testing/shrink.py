"""Greedy sequence minimization (ddmin) for failing differential runs.

Replaying is cheap and deterministic, so shrinking is just repeated
re-execution: remove chunks of decreasing size while the sequence still
fails, then sweep single ops until a fixpoint.  The result is the small
reproducible script the fuzz CLI writes out — a failure report nobody
can act on is a failure report nobody reads.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .adapters import Adapter
from .ops import Op

#: Safety bound on predicate evaluations per shrink.
MAX_EVALS = 2000


def shrink(
    adapter_factory: Callable[[], Adapter],
    ops: Sequence[Op],
    max_evals: int = MAX_EVALS,
) -> list[Op]:
    """Minimal-ish failing subsequence of ``ops`` (order preserved).

    ``ops`` must already fail for the adapter; if it does not, it is
    returned unchanged.
    """
    from .differential import run_sequence

    evals = 0

    def fails(seq: list[Op]) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False  # out of budget: treat as not reproducing
        evals += 1
        failure, _ = run_sequence(adapter_factory(), seq)
        return failure is not None

    current = list(ops)
    if not fails(current):
        return current

    # -- ddmin over chunk complements --------------------------------------
    n_chunks = 2
    while len(current) >= 2 and evals < max_evals:
        chunk = max(1, len(current) // n_chunks)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and fails(candidate):
                current = candidate
                reduced = True
                # Re-try from the same offset: the next chunk shifted in.
            else:
                start += chunk
        if reduced:
            n_chunks = max(n_chunks - 1, 2)
        elif chunk == 1:
            break
        else:
            n_chunks = min(len(current), n_chunks * 2)

    # -- single-op sweep to fixpoint ---------------------------------------
    changed = True
    while changed and evals < max_evals:
        changed = False
        i = len(current) - 1
        while i >= 0 and evals < max_evals:
            candidate = current[:i] + current[i + 1 :]
            if candidate and fails(candidate):
                current = candidate
                changed = True
            i -= 1
    return current
