"""Approximate membership filters (Chapter 4 substrate and baselines)."""

from .bloom import BloomFilter, hash64
from .prefix_bloom import PrefixBloomFilter
from .arf import AdaptiveRangeFilter

__all__ = ["BloomFilter", "PrefixBloomFilter", "AdaptiveRangeFilter", "hash64"]
