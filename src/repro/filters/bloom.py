"""A standard Bloom filter (Section 4.2's baseline).

Uses the double-hashing scheme (h1 + i*h2) over a 64-bit FNV-1a base
hash, the same construction RocksDB's full-key Bloom filters use.  The
number of probes is chosen optimally for the configured bits per key
(k = bits_per_key * ln 2).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

import zlib

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def hash64(key: bytes, seed: int = 0) -> int:
    """Deterministic 64-bit hash of ``key`` (seeded).

    Built from two C-speed CRC32 rounds plus a splitmix-style finaliser
    — a filter probe must not cost a per-byte interpreted loop (the
    paper's point is that Bloom probes are nearly free).
    """
    lo = zlib.crc32(key, seed & 0xFFFFFFFF)
    hi = zlib.crc32(key, (seed >> 32) ^ 0xDEADBEEF & 0xFFFFFFFF)
    h = (lo | (hi << 32)) & _MASK64
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK64
    return h ^ (h >> 31)


class BloomFilter:
    """Approximate membership filter with one-sided error."""

    def __init__(
        self,
        keys: Sequence[bytes],
        bits_per_key: float = 10.0,
        expected_keys: int | None = None,
    ) -> None:
        """``expected_keys`` sizes the bit array for filters that are
        filled incrementally after construction (e.g. the hybrid
        index's dynamic-stage filter)."""
        self.n_keys = len(keys)
        self.bits_per_key = bits_per_key
        n_bits = max(64, int(max(len(keys), expected_keys or 0) * bits_per_key))
        self.n_bits = n_bits
        self.k = max(1, round(bits_per_key * math.log(2)))
        self._words = np.zeros((n_bits + 63) // 64, dtype=np.uint64)
        # Python-int mirror of the words: scalar probes read this to
        # avoid boxing a numpy scalar per probe (the batch path gathers
        # from the numpy array directly).  Built lazily on view-backed
        # filters (:meth:`from_bytes` with ``copy=False``).
        self._word_ints: list[int] | None = self._words.tolist()
        self.n_keys = 0
        self.add_many(keys)

    def _probes(self, key: bytes) -> Iterable[int]:
        h1 = hash64(key, 0)
        h2 = hash64(key, _GOLDEN) | 1
        for i in range(self.k):
            yield ((h1 + i * h2) & _MASK64) % self.n_bits

    def _set(self, key: bytes) -> None:
        if not self._words.flags.writeable:
            # A view-backed filter (from_bytes(copy=False)) aliases a
            # caller-owned read-only buffer — typically an mmap'd
            # SSTable.  Mutating it would either raise a cryptic numpy
            # error or silently corrupt the shared file; refuse loudly.
            raise ValueError(
                "cannot insert into a read-only BloomFilter deserialized "
                "with copy=False; reload with copy=True to mutate"
            )
        for bit in self._probes(key):
            self._words[bit >> 6] |= np.uint64(1 << (bit & 63))
            if self._word_ints is not None:
                self._word_ints[bit >> 6] |= 1 << (bit & 63)

    def add(self, key: bytes) -> None:
        """Insert one key incrementally (no rebuild).  Raises on
        read-only view-backed filters, like :meth:`add_many`."""
        self._set(key)
        self.n_keys += 1

    def add_many(self, keys: Sequence[bytes]) -> None:
        """Vectorized bulk insert: all ``k * N`` probe positions are
        computed as one uint64 array and OR-scattered into the word
        array in a single ufunc pass — the write-side twin of
        :meth:`may_contain_many`."""
        n = len(keys)
        if n == 0:
            return
        if not self._words.flags.writeable:
            raise ValueError(
                "cannot insert into a read-only BloomFilter deserialized "
                "with copy=False; reload with copy=True to mutate"
            )
        h1 = np.fromiter((hash64(k, 0) for k in keys), dtype=np.uint64, count=n)
        h2 = np.fromiter(
            (hash64(k, _GOLDEN) | 1 for k in keys), dtype=np.uint64, count=n
        )
        steps = np.arange(self.k, dtype=np.uint64)
        bits = (h1[:, None] + steps[None, :] * h2[:, None]) % np.uint64(self.n_bits)
        flat = bits.ravel()
        masks = np.uint64(1) << (flat & np.uint64(63))
        np.bitwise_or.at(self._words, (flat >> np.uint64(6)).astype(np.int64), masks)
        # The int mirror is stale now; scalar probes rebuild it lazily.
        self._word_ints = None
        self.n_keys += n

    def may_contain(self, key: bytes) -> bool:
        words = self._word_ints
        if words is None:
            words = self._word_ints = self._words.tolist()
        for bit in self._probes(key):
            if not (words[bit >> 6] >> (bit & 63)) & 1:
                return False
        return True

    def may_contain_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Batched :meth:`may_contain`: all ``k * N`` probe positions are
        computed as one uint64 array and tested with a single gather."""
        n = len(keys)
        if n == 0:
            return []
        h1 = np.fromiter((hash64(k, 0) for k in keys), dtype=np.uint64, count=n)
        h2 = np.fromiter(
            (hash64(k, _GOLDEN) | 1 for k in keys), dtype=np.uint64, count=n
        )
        # uint64 arithmetic wraps modulo 2^64, matching ``& _MASK64``.
        steps = np.arange(self.k, dtype=np.uint64)
        bits = (h1[:, None] + steps[None, :] * h2[:, None]) % np.uint64(self.n_bits)
        words = self._words[(bits >> np.uint64(6)).astype(np.int64)]
        present = (words >> (bits & np.uint64(63))) & np.uint64(1)
        return present.all(axis=1).tolist()

    # Bloom filters cannot answer range queries: every range probe must
    # conservatively return True (this is the Figure 4.9 comparison).
    def may_contain_range(self, low: bytes, high: bytes) -> bool:
        return True

    def may_contain_range_many(
        self, pairs: Sequence[tuple[bytes, bytes]]
    ) -> list[bool]:
        return [True] * len(pairs)

    #: SuRF-vocabulary aliases: every filter answers lookup/lookup_range
    #: and may_contain/may_contain_range interchangeably.
    lookup = may_contain
    lookup_range = may_contain_range
    lookup_many = may_contain_many
    lookup_range_many = may_contain_range_many

    def size_bits(self) -> int:
        return self.n_bits

    def memory_bytes(self) -> int:
        return (self.n_bits + 7) // 8

    # -- serialization (persisted per-SSTable by the durable LSM) ---------

    def to_bytes(self) -> bytes:
        """Little-endian header + the raw bit-array words."""
        import struct

        header = struct.pack(
            "<4sQQdI", b"BLM1", self.n_keys, self.n_bits, self.bits_per_key, self.k
        )
        return header + self._words.tobytes()

    @classmethod
    def from_bytes(cls, data, copy: bool = True) -> "BloomFilter":
        """Deserialize from :meth:`to_bytes` output (any bytes-like).

        ``copy=True`` (default): the word array is an owned copy —
        safe to mutate, independent of ``data``'s lifetime.

        ``copy=False``: the word array is an ``np.frombuffer`` *view*
        aliasing ``data`` — zero-copy, read-only (:meth:`_set`
        refuses), and alive only as long as the caller keeps the
        backing buffer alive.  This is the mmap'd-SSTable path.
        """
        import struct

        header_size = struct.calcsize("<4sQQdI")
        magic, n_keys, n_bits, bits_per_key, k = struct.unpack_from(
            "<4sQQdI", data, 0
        )
        if magic != b"BLM1":
            raise ValueError("not a BloomFilter blob (bad magic)")
        words = np.frombuffer(data[header_size:], dtype=np.uint64)
        if copy:
            words = words.copy()
        if len(words) != (n_bits + 63) // 64:
            raise ValueError("corrupt BloomFilter blob: word count mismatch")
        flt = cls.__new__(cls)
        flt.n_keys = n_keys
        flt.bits_per_key = bits_per_key
        flt.n_bits = n_bits
        flt.k = k
        flt._words = words
        # Deferred: scalar probes build the int mirror on first use, so
        # deserializing N filters costs no per-word Python loop.
        flt._word_ints = None
        return flt
