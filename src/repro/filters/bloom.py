"""A standard Bloom filter (Section 4.2's baseline).

Uses the double-hashing scheme (h1 + i*h2) over a 64-bit FNV-1a base
hash, the same construction RocksDB's full-key Bloom filters use.  The
number of probes is chosen optimally for the configured bits per key
(k = bits_per_key * ln 2).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

import zlib

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def hash64(key: bytes, seed: int = 0) -> int:
    """Deterministic 64-bit hash of ``key`` (seeded).

    Built from two C-speed CRC32 rounds plus a splitmix-style finaliser
    — a filter probe must not cost a per-byte interpreted loop (the
    paper's point is that Bloom probes are nearly free).
    """
    lo = zlib.crc32(key, seed & 0xFFFFFFFF)
    hi = zlib.crc32(key, (seed >> 32) ^ 0xDEADBEEF & 0xFFFFFFFF)
    h = (lo | (hi << 32)) & _MASK64
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK64
    return h ^ (h >> 31)


class BloomFilter:
    """Approximate membership filter with one-sided error."""

    def __init__(
        self,
        keys: Sequence[bytes],
        bits_per_key: float = 10.0,
        expected_keys: int | None = None,
    ) -> None:
        """``expected_keys`` sizes the bit array for filters that are
        filled incrementally after construction (e.g. the hybrid
        index's dynamic-stage filter)."""
        self.n_keys = len(keys)
        self.bits_per_key = bits_per_key
        n_bits = max(64, int(max(len(keys), expected_keys or 0) * bits_per_key))
        self.n_bits = n_bits
        self.k = max(1, round(bits_per_key * math.log(2)))
        self._words = np.zeros((n_bits + 63) // 64, dtype=np.uint64)
        for key in keys:
            self._set(key)

    def _probes(self, key: bytes) -> Iterable[int]:
        h1 = hash64(key, 0)
        h2 = hash64(key, _GOLDEN) | 1
        for i in range(self.k):
            yield ((h1 + i * h2) & _MASK64) % self.n_bits

    def _set(self, key: bytes) -> None:
        for bit in self._probes(key):
            self._words[bit >> 6] |= np.uint64(1 << (bit & 63))

    def may_contain(self, key: bytes) -> bool:
        for bit in self._probes(key):
            if not (int(self._words[bit >> 6]) >> (bit & 63)) & 1:
                return False
        return True

    # Bloom filters cannot answer range queries: every range probe must
    # conservatively return True (this is the Figure 4.9 comparison).
    def may_contain_range(self, low: bytes, high: bytes) -> bool:
        return True

    #: SuRF-vocabulary aliases: every filter answers lookup/lookup_range
    #: and may_contain/may_contain_range interchangeably.
    lookup = may_contain
    lookup_range = may_contain_range

    def size_bits(self) -> int:
        return self.n_bits

    def memory_bytes(self) -> int:
        return (self.n_bits + 7) // 8
