"""A prefix Bloom filter (Section 4.2 related work).

RocksDB's prefix Bloom filters hash a fixed-length key prefix so that
queries constrained to one prefix ("where email starts with com.foo@")
can be filtered.  As the thesis notes, they are inflexible: a point
query for an absent key sharing a present key's prefix always false
positives, and general range queries cannot use them at all.
"""

from __future__ import annotations

from typing import Sequence

from .bloom import BloomFilter


class PrefixBloomFilter:
    """Bloom filter over fixed-length key prefixes."""

    def __init__(
        self,
        keys: Sequence[bytes],
        prefix_len: int,
        bits_per_key: float = 10.0,
    ) -> None:
        if prefix_len < 1:
            raise ValueError("prefix_len must be >= 1")
        self.prefix_len = prefix_len
        prefixes = sorted({k[:prefix_len] for k in keys})
        self._bloom = BloomFilter(prefixes, bits_per_key)

    def may_contain(self, key: bytes) -> bool:
        """Point probe: positive whenever the key's prefix is present."""
        return self._bloom.may_contain(key[: self.prefix_len])

    def may_contain_prefix(self, prefix: bytes) -> bool:
        """Prefix probe; only valid for exactly ``prefix_len`` bytes."""
        if len(prefix) != self.prefix_len:
            return True  # cannot answer: be conservative
        return self._bloom.may_contain(prefix)

    def may_contain_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Batched :meth:`may_contain`: one vectorized probe pass over
        the truncated prefixes."""
        return self._bloom.may_contain_many([k[: self.prefix_len] for k in keys])

    def may_contain_range(self, low: bytes, high: bytes) -> bool:
        """General ranges may span prefixes: conservatively True unless
        both bounds share one filterable prefix."""
        if low[: self.prefix_len] == high[: self.prefix_len]:
            return self.may_contain_prefix(low[: self.prefix_len])
        return True

    def may_contain_range_many(
        self, pairs: Sequence[tuple[bytes, bytes]]
    ) -> list[bool]:
        return [self.may_contain_range(low, high) for low, high in pairs]

    #: SuRF-vocabulary aliases (see :class:`~repro.filters.bloom.BloomFilter`).
    lookup = may_contain
    lookup_range = may_contain_range
    lookup_many = may_contain_many
    lookup_range_many = may_contain_range_many

    def size_bits(self) -> int:
        return self._bloom.size_bits()

    def memory_bytes(self) -> int:
        return self._bloom.memory_bytes()
