"""The Adaptive Range Filter (ARF) baseline of Table 4.1.

ARF (Alexiou, Kossmann, Larson — Project Siberia) is a binary tree over
the 64-bit integer key space: each leaf covers a dyadic interval and
stores one bit, "may contain keys" or "definitely empty".  Using it has
three phases (Section 4.3.5): build a tree shaped by the stored keys,
*train* it with sample queries (splitting nodes so that frequently
queried empty regions get their own leaves), then freeze it under a
space budget.

Our implementation follows that recipe: training splits occupied
leaves along query boundaries until either the query range is exactly
covered by empty leaves or the node budget is exhausted.  One-sided
error holds by construction — a leaf is marked empty only if no stored
key falls inside it.
"""

from __future__ import annotations

import bisect
from typing import Sequence

KEY_SPACE_BITS = 64
_MAX = 1 << KEY_SPACE_BITS


class _Node:
    __slots__ = ("lo", "hi", "left", "right", "occupied")

    def __init__(self, lo: int, hi: int, occupied: bool) -> None:
        self.lo = lo
        self.hi = hi  # exclusive
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.occupied = occupied

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class AdaptiveRangeFilter:
    """ARF over 64-bit integer keys with a node budget."""

    def __init__(self, keys: Sequence[int], max_nodes: int = 1 << 16) -> None:
        self._keys = sorted(keys)
        self.max_nodes = max_nodes
        self.n_nodes = 1
        self._root = _Node(0, _MAX, occupied=bool(self._keys))
        #: Peak build/train memory model: the trainer materialises the
        #: sorted key list plus a dense per-query workspace (this is why
        #: the paper measures 26 GB peak for a 7 MB filter).
        self.train_queries = 0

    # -- internals --------------------------------------------------------------

    def _has_key_in(self, lo: int, hi: int) -> bool:
        idx = bisect.bisect_left(self._keys, lo)
        return idx < len(self._keys) and self._keys[idx] < hi

    def _split(self, node: _Node) -> bool:
        if self.n_nodes + 2 > self.max_nodes:
            return False
        mid = (node.lo + node.hi) // 2
        if mid == node.lo:
            return False
        node.left = _Node(node.lo, mid, self._has_key_in(node.lo, mid))
        node.right = _Node(mid, node.hi, self._has_key_in(mid, node.hi))
        self.n_nodes += 2
        return True

    def train(self, query_ranges: Sequence[tuple[int, int]]) -> None:
        """Refine the tree using sample queries (ranges are [lo, hi))."""
        for lo, hi in query_ranges:
            self.train_queries += 1
            if self._has_key_in(lo, hi):
                continue  # true positive region: nothing to learn
            self._carve(self._root, lo, hi)

    def _carve(self, node: _Node, lo: int, hi: int) -> None:
        """Split occupied leaves so [lo, hi) is covered by empty leaves."""
        if node.hi <= lo or node.lo >= hi:
            return
        if node.is_leaf:
            if not node.occupied:
                return
            if lo <= node.lo and node.hi <= hi:
                # Entirely inside the empty query range, yet marked
                # occupied: keys elsewhere forced this. Since the range
                # is truly empty, flip is safe only if no key inside.
                if not self._has_key_in(node.lo, node.hi):
                    node.occupied = False
                return
            if not self._split(node):
                return
        self._carve(node.left, lo, hi)
        self._carve(node.right, lo, hi)

    # -- queries -----------------------------------------------------------------

    def may_contain_range(self, lo: int, hi: int) -> bool:
        """Approximate emptiness probe for [lo, hi)."""
        return self._probe(self._root, lo, hi)

    def _probe(self, node: _Node, lo: int, hi: int) -> bool:
        if node.hi <= lo or node.lo >= hi:
            return False
        if node.is_leaf:
            return node.occupied
        return self._probe(node.left, lo, hi) or self._probe(node.right, lo, hi)

    def may_contain(self, key: int) -> bool:
        return self.may_contain_range(key, key + 1)

    # -- memory ----------------------------------------------------------------------

    def size_bits(self) -> int:
        """Encoded size: the trained tree serialises breadth-first at
        ~2 bits per node (shape bit + leaf occupancy bit)."""
        return 2 * self.n_nodes

    def memory_bytes(self) -> int:
        return (self.size_bits() + 7) // 8

    def build_memory_bytes(self) -> int:
        """Peak memory during build+train: pointer-based tree nodes
        (2 child pointers + 2 u64 bounds + flag ~= 40 B) plus the key
        list — orders of magnitude above the encoded size, matching the
        Table 4.1 contrast."""
        return self.n_nodes * 40 + len(self._keys) * 8
