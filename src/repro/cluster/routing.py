"""Key routing shared by every layer that places data.

Two routing primitives live here — and *only* here, so the mapping can
never drift between layers:

* :func:`route_key` — the CRC32-modulo shard hash.  The single-node
  server has always placed keys with ``zlib.crc32(key) % n_shards``;
  every on-disk shard directory layout depends on that exact mapping,
  so the server front-end, the shard-RPC children, the load generator,
  and the cluster router all import this one function (a golden-value
  test pins the mapping so old data directories stay readable).

* :class:`HashRing` — consistent hashing across *nodes*.  Each node
  owns ``vnodes`` pseudo-random points on a 32-bit ring (CRC32 of
  ``"<node>#<i>"``); a key belongs to the first point clockwise of its
  own CRC32.  Adding or removing one node therefore only moves the keys
  adjacent to that node's points (~1/N of the keyspace), which is what
  makes shard rebalancing incremental instead of a full reshuffle.

Within a node, :func:`route_key` then picks the shard — the cluster
layer composes the two: modulo → *global* shard id, placement map →
group.  :func:`default_placement` derives the initial shard→group map
from the ring (``shard-N`` tokens), and live migration
(:mod:`repro.cluster.membership`) edits the map one shard at a time —
the ring bounds how much data a group add/remove moves, the map makes
the current ownership explicit and mutable.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Sequence


def route_key(key: bytes, n_shards: int) -> int:
    """Stable hash sharding; CRC32 so any client can compute it.

    This is THE shard mapping: changing it orphans every existing
    ``shard-NN`` directory.  See ``tests/test_cluster.py`` for the
    golden values that pin it.
    """
    return zlib.crc32(key) % n_shards


class HashRing:
    """Consistent-hash ring over named nodes.

    Deterministic: the ring is fully defined by the sorted node names
    and ``vnodes``, so every client that knows the topology computes
    identical routes with no coordination.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate node names")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes = sorted(nodes)
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for i in range(vnodes):
                points.append((zlib.crc32(f"{node}#{i}".encode()), node))
        # Ties (two vnodes hashing identically) resolve by node name so
        # the ring stays deterministic regardless of insertion order.
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    def node_for(self, key: bytes) -> str:
        """The node owning ``key``: first ring point clockwise of it."""
        h = zlib.crc32(key)
        i = bisect.bisect_left(self._hashes, h)
        if i == len(self._hashes):  # wrap past the top of the ring
            i = 0
        return self._owners[i]

    def without(self, node: str) -> "HashRing":
        """The ring after removing ``node`` (for failover re-routing of
        a whole node group, or future rebalancing)."""
        rest = [n for n in self._nodes if n != node]
        return HashRing(rest, vnodes=self.vnodes)


def default_placement(
    groups: Sequence[str], n_shards: int, vnodes: int = 64
) -> dict[int, str]:
    """The derived shard→group ownership map: each global shard id
    lands on the ring via its ``shard-N`` token.  Deterministic from
    the topology, so every client starts with the same map; migrations
    then mutate a *copy* per cluster, never this function's output.
    A golden test pins the default map — changing it strands existing
    multi-group data directories."""
    ring = HashRing(list(groups), vnodes)
    return {s: ring.node_for(b"shard-%d" % s) for s in range(n_shards)}
