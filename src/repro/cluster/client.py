"""Cluster-aware client: consistent-hash routing + read-your-writes.

A cluster is a set of *replication groups*.  Each group is one primary
:class:`~repro.server.server.KVServer` plus its WAL-shipping followers
(every node in a group holds the same keys, sharded identically).
Keys route to groups over the :class:`~repro.cluster.routing.HashRing`
— deterministic from the topology alone, so every client computes the
same placement with no coordination — and within a node the server's
own :func:`~repro.cluster.routing.route_key` picks the shard.

Reads prefer followers (round-robin) to scale the YCSB-C hot tail
across replicas.  Read-your-writes holds per client session: every
write ack carries the committed per-shard sequence, the client
remembers the latest token per (group, shard), and follower reads go
out as ``GET_AT`` gated on that token — a follower that has not
caught up answers ``LAGGING`` and the read falls back to the primary
(counted in :attr:`ClusterClient.lagging_reads`).

Failover is explicit: :meth:`ClusterClient.repoint` swaps a group's
primary after a promotion (see :mod:`repro.cluster.failover`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..server.client import (
    DEFAULT_MAX_RETRIES,
    FollowerLaggingError,
    KVClient,
)
from .routing import HashRing, route_key


@dataclass(frozen=True)
class NodeAddress:
    """One server process/thread the client can dial."""

    name: str
    host: str
    port: int


@dataclass
class GroupTopology:
    """One replication group: a primary and its followers."""

    name: str
    primary: NodeAddress
    followers: list[NodeAddress] = field(default_factory=list)

    def nodes(self) -> list[NodeAddress]:
        return [self.primary, *self.followers]


@dataclass
class ClusterTopology:
    """The full cluster: groups, shard fan-out, ring geometry."""

    groups: list[GroupTopology]
    n_shards: int
    vnodes: int = 64

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a cluster needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError("duplicate group names")

    def group(self, name: str) -> GroupTopology:
        for g in self.groups:
            if g.name == name:
                return g
        raise KeyError(name)


class ClusterClient:
    """Routes every operation to the right node of the right group.

    Not thread-safe (like :class:`KVClient`); give each worker its own.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        read_from_followers: bool = True,
        timeout: float = 30.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        self.topology = topology
        self.read_from_followers = read_from_followers
        self._timeout = timeout
        self._max_retries = max_retries
        self._ring = HashRing([g.name for g in topology.groups], topology.vnodes)
        self._conns: dict[tuple[str, int], KVClient] = {}
        #: Session causal tokens: (group, shard) -> latest acked seq.
        self._tokens: dict[tuple[str, int], int] = {}
        self._rr = 0
        #: Follower reads that had to fall back to the primary.
        self.lagging_reads = 0

    # -- connections -------------------------------------------------------

    def _conn(self, node: NodeAddress) -> KVClient:
        key = (node.host, node.port)
        client = self._conns.get(key)
        if client is None:
            client = KVClient(
                node.host, node.port,
                timeout=self._timeout, max_retries=self._max_retries,
            )
            self._conns[key] = client
        return client

    def _drop_conn(self, node: NodeAddress) -> None:
        client = self._conns.pop((node.host, node.port), None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def close(self) -> None:
        for client in self._conns.values():
            try:
                client.close()
            except Exception:
                pass
        self._conns.clear()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def retries(self) -> int:
        """Total OVERLOADED retries absorbed across all connections."""
        return sum(c.retries for c in self._conns.values())

    # -- routing -----------------------------------------------------------

    def group_for(self, key: bytes) -> GroupTopology:
        return self.topology.group(self._ring.node_for(key))

    def _read_node(self, group: GroupTopology) -> NodeAddress:
        if not self.read_from_followers or not group.followers:
            return group.primary
        self._rr += 1
        return group.followers[self._rr % len(group.followers)]

    def repoint(
        self,
        group_name: str,
        primary: NodeAddress,
        followers: Sequence[NodeAddress] = (),
    ) -> None:
        """Re-point a group after failover: new primary, new follower
        set.  Dead nodes' connections are dropped; causal tokens are
        kept — the promotion contract guarantees the new primary holds
        every acked sequence, so the tokens stay valid."""
        group = self.topology.group(group_name)
        for node in group.nodes():
            self._drop_conn(node)
        group.primary = primary
        group.followers = list(followers)

    # -- operations --------------------------------------------------------

    def put(self, key: bytes, value: Any) -> int | None:
        group = self.group_for(key)
        seq = self._conn(group.primary).put(key, value)
        self._note_token(group, key, seq)
        return seq

    def delete(self, key: bytes) -> int | None:
        group = self.group_for(key)
        seq = self._conn(group.primary).delete(key)
        self._note_token(group, key, seq)
        return seq

    def _note_token(self, group: GroupTopology, key: bytes, seq: int | None) -> None:
        if seq is not None:
            slot = (group.name, route_key(key, self.topology.n_shards))
            if seq > self._tokens.get(slot, 0):
                self._tokens[slot] = seq

    def get(self, key: bytes) -> Any | None:
        group = self.group_for(key)
        node = self._read_node(group)
        if node is group.primary:
            return self._conn(node).get(key)
        token = self._tokens.get(
            (group.name, route_key(key, self.topology.n_shards)), 0
        )
        try:
            return self._conn(node).get_at(key, token)
        except FollowerLaggingError:
            self.lagging_reads += 1
            return self._conn(group.primary).get(key)

    def get_many(self, keys: Sequence[bytes], missing: Any = None) -> list[Any]:
        """Batched get, fanned out per group (served by primaries: a
        cross-group batch has no single watermark to gate on)."""
        by_group: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            by_group.setdefault(self.group_for(key).name, []).append(i)
        out: list[Any] = [missing] * len(keys)
        for name, idxs in by_group.items():
            group = self.topology.group(name)
            values = self._conn(group.primary).get_many(
                [keys[i] for i in idxs], missing=missing
            )
            for i, value in zip(idxs, values):
                out[i] = value
        return out

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Merged scan across groups (groups are disjoint by hash, so a
        straight key merge suffices).  Served by primaries for a
        consistent-as-of-ack picture."""
        per_group = [
            self._conn(g.primary).scan(low, count) for g in self.topology.groups
        ]
        merged = heapq.merge(*per_group, key=lambda kv: kv[0])
        out: list[tuple[bytes, Any]] = []
        for pair in merged:
            out.append(pair)
            if len(out) >= count:
                break
        return out

    def count(self, low: bytes, high: bytes) -> int:
        return sum(
            self._conn(g.primary).count(low, high) for g in self.topology.groups
        )

    def sync(self) -> None:
        for g in self.topology.groups:
            self._conn(g.primary).sync()

    def stats(self) -> dict[str, dict]:
        """Per-node STATS snapshots keyed by node name."""
        out: dict[str, dict] = {}
        for g in self.topology.groups:
            for node in g.nodes():
                out[node.name] = self._conn(node).stats()
        return out
