"""Cluster-aware client: placement routing + read-your-writes.

A cluster is a set of *replication groups*.  Each group is one primary
:class:`~repro.server.server.KVServer` plus its WAL-shipping followers
(every node in a group hosts the same shard subset).  Keys hash into a
**global shard space** (:func:`~repro.cluster.routing.route_key` over
``n_shards``); a *placement map* — shard id → group name, seeded from
the consistent-hash ring by
:func:`~repro.cluster.routing.default_placement` and mutated one shard
at a time by live migration — names the owning group.  Every client
derives the same initial map from the topology alone; divergence after
a migration self-heals through redirects.

Reads prefer followers (round-robin) to scale the YCSB-C hot tail
across replicas.  Read-your-writes holds per client session: every
write ack carries the committed per-shard sequence, the client
remembers the latest token per global shard, and follower reads go out
as ``GET_AT`` gated on that token — a follower that has not caught up
answers ``LAGGING`` and the read falls back to the primary (counted in
:attr:`ClusterClient.lagging_reads`).

Ownership moves (PR 10): a node answering ``NOT_OWNER`` means the
shard is not served there — mid-migration (sealed source, uncommitted
target) or after it moved.  The client adopts the redirect hint into
its placement map when one is present and retries; without a hint it
backs off briefly (the handoff write-pause) and retries the same
route.  Retried-and-succeeded operations count in
:attr:`ClusterClient.moved_ops`; nothing surfaces to the caller unless
the retries are exhausted.

Failover is explicit: :meth:`ClusterClient.repoint` swaps a group's
primary after a promotion (see :mod:`repro.cluster.failover`).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..server.client import (
    DEFAULT_MAX_RETRIES,
    FollowerLaggingError,
    KVClient,
    NotOwnerError,
)
from .routing import default_placement, route_key

#: NOT_OWNER redirect budget per operation: enough to ride out a
#: migration handoff pause (seal → detach → commit) with backoff.
NOT_OWNER_RETRIES = 25
NOT_OWNER_BACKOFF = 0.02


@dataclass(frozen=True)
class NodeAddress:
    """One server process/thread the client can dial."""

    name: str
    host: str
    port: int


@dataclass
class GroupTopology:
    """One replication group: a primary and its followers."""

    name: str
    primary: NodeAddress
    followers: list[NodeAddress] = field(default_factory=list)

    def nodes(self) -> list[NodeAddress]:
        return [self.primary, *self.followers]


@dataclass
class ClusterTopology:
    """The full cluster: groups, shard fan-out, shard placement."""

    groups: list[GroupTopology]
    n_shards: int
    vnodes: int = 64
    #: Global shard id -> owning group name.  None derives the default
    #: ring placement; a cluster that migrated shards passes its map.
    placement: dict[int, str] | None = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a cluster needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError("duplicate group names")
        if self.placement is None:
            self.placement = default_placement(names, self.n_shards, self.vnodes)
        else:
            self.placement = dict(self.placement)
        valid = set(names)
        for shard_id in range(self.n_shards):
            owner = self.placement.get(shard_id)
            if owner not in valid:
                raise ValueError(f"shard {shard_id} placed on unknown group {owner!r}")

    def group(self, name: str) -> GroupTopology:
        for g in self.groups:
            if g.name == name:
                return g
        raise KeyError(name)

    def owner(self, shard_id: int) -> GroupTopology:
        return self.group(self.placement[shard_id])


class ClusterClient:
    """Routes every operation to the right node of the right group.

    Not thread-safe (like :class:`KVClient`); give each worker its own.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        read_from_followers: bool = True,
        timeout: float = 30.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        self.topology = topology
        self.read_from_followers = read_from_followers
        self._timeout = timeout
        self._max_retries = max_retries
        self._conns: dict[tuple[str, int], KVClient] = {}
        #: Session causal tokens: global shard id -> latest acked seq.
        #: Keyed by shard, not (group, shard): the migration contract
        #: is that the receiving group holds the shard's full history
        #: through the handoff, so tokens survive the move.
        self._tokens: dict[int, int] = {}
        self._rr = 0
        #: Follower reads that had to fall back to the primary.
        self.lagging_reads = 0
        #: Operations that needed at least one NOT_OWNER redirect.
        self.moved_ops = 0

    # -- connections -------------------------------------------------------

    def _conn(self, node: NodeAddress) -> KVClient:
        key = (node.host, node.port)
        client = self._conns.get(key)
        if client is None:
            client = KVClient(
                node.host, node.port,
                timeout=self._timeout, max_retries=self._max_retries,
            )
            self._conns[key] = client
        return client

    def _drop_conn(self, node: NodeAddress) -> None:
        client = self._conns.pop((node.host, node.port), None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def close(self) -> None:
        for client in self._conns.values():
            try:
                client.close()
            except Exception:
                pass
        self._conns.clear()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def retries(self) -> int:
        """Total OVERLOADED retries absorbed across all connections."""
        return sum(c.retries for c in self._conns.values())

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: bytes) -> int:
        return route_key(key, self.topology.n_shards)

    def group_for(self, key: bytes) -> GroupTopology:
        return self.topology.owner(self.shard_for(key))

    def _read_node(self, group: GroupTopology) -> NodeAddress:
        if not self.read_from_followers or not group.followers:
            return group.primary
        self._rr += 1
        return group.followers[self._rr % len(group.followers)]

    def repoint(
        self,
        group_name: str,
        primary: NodeAddress,
        followers: Sequence[NodeAddress] = (),
    ) -> None:
        """Re-point a group after failover: new primary, new follower
        set.  Dead nodes' connections are dropped; causal tokens are
        kept — the promotion contract guarantees the new primary holds
        every acked sequence, so the tokens stay valid."""
        group = self.topology.group(group_name)
        for node in group.nodes():
            self._drop_conn(node)
        group.primary = primary
        group.followers = list(followers)

    def _routed(self, shard_id: int, op: Callable[[GroupTopology], Any]) -> Any:
        """Run ``op`` against the shard's owner, following NOT_OWNER
        redirects: adopt the hint when one names a known group, back
        off briefly when none does (mid-handoff pause)."""
        redirected = False
        last: NotOwnerError | None = None
        for attempt in range(NOT_OWNER_RETRIES):
            group = self.topology.owner(shard_id)
            try:
                result = op(group)
                if redirected:
                    self.moved_ops += 1
                return result
            except NotOwnerError as exc:
                last = exc
                redirected = True
                hint = exc.owner
                known = {g.name for g in self.topology.groups}
                if hint and hint in known and hint != group.name:
                    self.topology.placement[shard_id] = hint
                else:
                    time.sleep(NOT_OWNER_BACKOFF * min(attempt + 1, 10))
        assert last is not None
        raise last

    # -- operations --------------------------------------------------------

    def put(self, key: bytes, value: Any) -> int | None:
        shard_id = self.shard_for(key)

        def op(group: GroupTopology) -> int | None:
            seq = self._conn(group.primary).put(key, value)
            self._note_token(shard_id, seq)
            return seq

        return self._routed(shard_id, op)

    def delete(self, key: bytes) -> int | None:
        shard_id = self.shard_for(key)

        def op(group: GroupTopology) -> int | None:
            seq = self._conn(group.primary).delete(key)
            self._note_token(shard_id, seq)
            return seq

        return self._routed(shard_id, op)

    def _note_token(self, shard_id: int, seq: int | None) -> None:
        if seq is not None and seq > self._tokens.get(shard_id, 0):
            self._tokens[shard_id] = seq

    def get(self, key: bytes) -> Any | None:
        shard_id = self.shard_for(key)

        def op(group: GroupTopology) -> Any | None:
            node = self._read_node(group)
            if node is not group.primary:
                try:
                    return self._conn(node).get_at(
                        key, self._tokens.get(shard_id, 0)
                    )
                except FollowerLaggingError:
                    self.lagging_reads += 1
            return self._conn(group.primary).get(key)

        return self._routed(shard_id, op)

    def get_many(self, keys: Sequence[bytes], missing: Any = None) -> list[Any]:
        """Batched get, fanned out per group (served by primaries: a
        cross-group batch has no single watermark to gate on).  A group
        answering NOT_OWNER (a shard in the batch moved) degrades to
        per-key routed gets for that group's keys."""
        by_group: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            by_group.setdefault(self.group_for(key).name, []).append(i)
        out: list[Any] = [missing] * len(keys)
        for name, idxs in by_group.items():
            group = self.topology.group(name)
            try:
                values = self._conn(group.primary).get_many(
                    [keys[i] for i in idxs], missing=missing
                )
            except NotOwnerError:
                values = []
                for i in idxs:
                    value = self.get(keys[i])
                    values.append(value if value is not None else missing)
            for i, value in zip(idxs, values):
                out[i] = value
        return out

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Merged scan across groups (groups are disjoint by hash, so a
        straight key merge suffices).  Served by primaries for a
        consistent-as-of-ack picture."""
        per_group = [
            self._conn(g.primary).scan(low, count) for g in self.topology.groups
        ]
        merged = heapq.merge(*per_group, key=lambda kv: kv[0])
        out: list[tuple[bytes, Any]] = []
        for pair in merged:
            out.append(pair)
            if len(out) >= count:
                break
        return out

    def count(self, low: bytes, high: bytes) -> int:
        return sum(
            self._conn(g.primary).count(low, high) for g in self.topology.groups
        )

    def sync(self) -> None:
        for g in self.topology.groups:
            self._conn(g.primary).sync()

    def stats(self) -> dict[str, dict]:
        """Per-node STATS snapshots keyed by node name."""
        out: dict[str, dict] = {}
        for g in self.topology.groups:
            for node in g.nodes():
                out[node.name] = self._conn(node).stats()
        return out
