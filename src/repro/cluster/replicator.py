"""Primary→follower WAL shipping (synchronous replication).

The primary's engines are opened with a WAL commit observer (see
:mod:`repro.lsm.wal`): every time a group commit makes records durable
locally, the exact on-disk frames land in an in-memory per-shard
:class:`ReplicationLog`.  One :class:`_FollowerLink` thread per
follower drains those logs over the ordinary wire protocol
(``REPL_APPLY`` frames on one connection, so the stream can never race
itself) and records the follower's *durable* applied watermark from
each acknowledgement.

The contract that makes failover lossless:

* the observer only ever sees frames that are already durable on the
  primary, so a follower can never get ahead of the primary's own
  recovery;
* the primary's client ack for a write at sequence ``q`` waits (via
  :meth:`PrimaryReplication.wait_durable`) until every configured
  follower has durably applied ``q`` — so an OK the client observed is
  recoverable from *any* node, and a promoted follower's state is
  always an exact prefix of the primary's log at a sequence >= the
  maximum observed ack;
* a follower resumes from its ``dispatched`` watermark (never lower),
  so reconnect resends are deduplicated by sequence instead of
  double-applied.

A follower whose watermark has fallen below the log floor (the oldest
sequence the primary still buffers — e.g. it attached after the
primary already served traffic without it) cannot catch up by
streaming; it needs a snapshot resync, which this layer does not do
yet (ROADMAP: shard migration).  The link fails loudly instead.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..server.client import KVClient

#: Cap on one REPL_APPLY payload; well under protocol.MAX_FRAME_BYTES
#: so a burst of commits becomes several frames, not one giant one.
MAX_BATCH_BYTES = 1 << 20

#: Sender idle poll (also the stop/drain responsiveness bound).
_IDLE_WAIT = 0.05


class ReplicationError(RuntimeError):
    """A follower link is down or cannot catch up; writes that were
    waiting on it are NOT acknowledged."""


class _ShardLog:
    """Append-only buffer of committed WAL frames for one shard.

    ``floor`` is the sequence just below the oldest buffered frame:
    followers must already hold everything <= floor.  Frames below the
    confirmed-durable-everywhere point can be trimmed away.
    """

    __slots__ = ("floor", "entries")

    def __init__(self) -> None:
        self.floor: int | None = None  # unknown until bind()
        self.entries: list[tuple[int, bytes]] = []

    @property
    def end_seq(self) -> int:
        if self.entries:
            return self.entries[-1][0]
        return self.floor or 0

    def append(self, frames: list[tuple[int, bytes]]) -> None:
        last = self.entries[-1][0] if self.entries else None
        for seq, frame in frames:
            if last is not None and seq <= last:
                continue  # recovery re-log resyncing an already-seen tail
            self.entries.append((seq, frame))
            last = seq

    def batch_after(self, cursor: int) -> tuple[bytes, int] | None:
        """Concatenated frames covering (cursor, ...] up to the byte
        cap, plus the last covered sequence; None when caught up."""
        out = bytearray()
        last = cursor
        for seq, frame in self.entries:
            if seq <= cursor:
                continue
            if out and len(out) + len(frame) > MAX_BATCH_BYTES:
                break
            out += frame
            last = seq
        if not out:
            return None
        return bytes(out), last

    def trim_below(self, seq: int) -> None:
        """Drop frames every attached follower has durably applied."""
        keep = 0
        while keep < len(self.entries) and self.entries[keep][0] <= seq:
            keep += 1
        if keep:
            del self.entries[:keep]
            self.floor = max(self.floor or 0, seq)


class _FollowerLink(threading.Thread):
    """One follower: a connection, a cursor, a durable watermark."""

    def __init__(self, coord: "PrimaryReplication", host: str, port: int) -> None:
        super().__init__(name=f"repl-{host}:{port}", daemon=True)
        self.coord = coord
        self.host = host
        self.port = port
        #: Highest sequence shipped per shard (the follower's
        #: ``dispatched``, refreshed from its WATERMARK on connect).
        self.cursor: dict[int, int] = {}
        #: Highest durably applied sequence per shard, from acks.
        self.durable: dict[int, int] = {}
        self.dead: str | None = None
        self._client: KVClient | None = None

    def durable_for(self, shard_id: int) -> int:
        return self.durable.get(shard_id, -1)

    def run(self) -> None:
        coord = self.coord
        try:
            # No client-side OVERLOADED retries: REPL_APPLY bypasses the
            # bounded shard queues only in the sense that a refused
            # batch is simply resent from the same cursor.
            self._client = KVClient(self.host, self.port)
            marks = self._client.watermark()
            with coord._cond:
                for shard_id, (dispatched, applied) in enumerate(marks):
                    log = coord._log(shard_id)
                    floor = log.floor or 0
                    if dispatched < floor:
                        raise ReplicationError(
                            f"follower {self.host}:{self.port} shard {shard_id} "
                            f"is at seq {dispatched} < log floor {floor}: "
                            "requires resync (snapshot shipping is future work)"
                        )
                    self.cursor[shard_id] = dispatched
                    self.durable[shard_id] = applied
            coord._advance()
            self._stream()
        except BaseException as exc:
            self.dead = repr(exc)
            coord._link_failed(self)
        finally:
            if self._client is not None:
                try:
                    self._client.close()
                except Exception:
                    pass

    def _stream(self) -> None:
        coord = self.coord
        client = self._client
        assert client is not None
        while True:
            work: list[tuple[int, bytes, int]] = []
            with coord._cond:
                while True:
                    for shard_id in sorted(coord._logs):
                        log = coord._logs[shard_id]
                        cursor = self.cursor.get(shard_id, log.floor or 0)
                        batch = log.batch_after(cursor)
                        if batch is not None:
                            work.append((shard_id, batch[0], batch[1]))
                    if work or coord._stopped:
                        break
                    if coord._draining:
                        return  # caught up and the primary is shutting down
                    coord._cond.wait(_IDLE_WAIT)
                if coord._stopped and not work:
                    return
            for shard_id, frames, last in work:
                applied = client.repl_apply(shard_id, frames)
                self.cursor[shard_id] = last
                self.durable[shard_id] = max(self.durable.get(shard_id, -1), applied)
            coord._advance()


class PrimaryReplication:
    """Coordinator a primary :class:`~repro.server.server.KVServer`
    attaches at construction: installs the WAL observers, owns the
    per-shard logs and follower links, and gates write acks."""

    def __init__(self, auto_trim: bool = True) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._logs: dict[int, _ShardLog] = {}
        self._links: list[_FollowerLink] = []
        self._pending_followers: list[tuple[str, int]] = []
        self._server: Any = None
        self._loop: Any = None
        #: Per-shard waiters: (seq, asyncio future), kept sorted enough
        #: by append order (seqs are assigned monotonically per shard).
        self._waiters: dict[int, list[tuple[int, Any]]] = {}
        self._auto_trim = auto_trim
        self._draining = False
        self._stopped = False

    # -- wiring (called by KVServer) ---------------------------------------

    def _log(self, shard_id: int) -> _ShardLog:
        log = self._logs.get(shard_id)
        if log is None:
            log = self._logs[shard_id] = _ShardLog()
        return log

    def observer_for(self, shard_id: int) -> Callable[[list[tuple[int, bytes]]], None]:
        """The WAL commit observer for one shard's engine.  Fires on
        that shard's writer thread with frames that just became durable
        locally; appending is the only work done there."""

        def observe(frames: list[tuple[int, bytes]]) -> None:
            with self._cond:
                self._log(shard_id).append(frames)
                self._cond.notify_all()

        return observe

    def bind(self, server: Any) -> None:
        """Anchor the logs to the opened engines and start the links.

        Called by :meth:`KVServer.start` after every engine has
        recovered: a shard whose log is still empty has all of its data
        in SSTables (nothing to stream), so its floor is the engine's
        last sequence; a shard that buffered frames during recovery
        (the re-logged WAL tail) starts its floor just below them.
        """
        with self._cond:
            self._server = server
            self._loop = server._loop
            for shard_id, worker in enumerate(server.shards):
                log = self._log(shard_id)
                if log.floor is None:
                    if log.entries:
                        log.floor = log.entries[0][0] - 1
                    else:
                        log.floor = worker.engine.last_seq
            pending, self._pending_followers = self._pending_followers, []
        for host, port in pending:
            self.add_follower(host, port)

    # -- topology ----------------------------------------------------------

    def add_follower(self, host: str, port: int) -> None:
        """Attach one follower; before :meth:`bind` it is queued."""
        with self._cond:
            if self._server is None:
                self._pending_followers.append((host, port))
                return
            link = _FollowerLink(self, host, port)
            self._links.append(link)
        link.start()

    def remove_follower(self, host: str, port: int) -> None:
        """Detach a (possibly dead) follower — failover re-pointing.
        Writes blocked on it are re-evaluated against the rest."""
        with self._cond:
            for link in list(self._links):
                if (link.host, link.port) == (host, port):
                    self._links.remove(link)
                    link.dead = link.dead or "detached"
            self._cond.notify_all()
        self._advance()

    @property
    def followers(self) -> list[tuple[str, int]]:
        with self._lock:
            return [(link.host, link.port) for link in self._links]

    # -- the ack gate (event loop side) ------------------------------------

    def wait_durable(self, shard_id: int, seq: int) -> Any:
        """An awaitable that resolves once every attached follower has
        durably applied ``seq`` on ``shard_id`` (immediately when no
        follower is attached — standalone mode).  Raises
        :class:`ReplicationError` through the future when a link dies:
        the write is NOT acknowledged rather than silently
        under-replicated."""
        assert self._loop is not None, "bind() first"
        fut = self._loop.create_future()
        with self._cond:
            dead = [link for link in self._links if link.dead]
            if dead:
                fut.set_exception(
                    ReplicationError(f"follower link down: {dead[0].dead}")
                )
            elif self._durable_min_locked(shard_id) >= seq:
                fut.set_result(True)
            else:
                self._waiters.setdefault(shard_id, []).append((seq, fut))
        return fut

    def _durable_min_locked(self, shard_id: int) -> float:
        if not self._links:
            return float("inf")
        return min(link.durable_for(shard_id) for link in self._links)

    # -- sender-thread callbacks -------------------------------------------

    def _advance(self) -> None:
        """Re-evaluate waiters after acks arrived / topology changed."""
        resolved: list[Any] = []
        with self._cond:
            if self._loop is None:
                return
            for shard_id, waiters in self._waiters.items():
                floor = self._durable_min_locked(shard_id)
                still = []
                for seq, fut in waiters:
                    if seq <= floor:
                        resolved.append(fut)
                    else:
                        still.append((seq, fut))
                self._waiters[shard_id] = still
                if self._auto_trim and self._links and floor != float("inf"):
                    self._logs.get(shard_id, _ShardLog()).trim_below(int(floor))
        for fut in resolved:
            self._loop.call_soon_threadsafe(
                lambda f=fut: f.done() or f.set_result(True)
            )

    def _link_failed(self, link: _FollowerLink) -> None:
        """Fail every waiter: with one configured follower down, no
        write can reach full replication until it is detached."""
        failed: list[Any] = []
        with self._cond:
            for waiters in self._waiters.values():
                failed.extend(fut for _, fut in waiters)
            self._waiters.clear()
            self._cond.notify_all()
        exc = ReplicationError(f"follower link down: {link.dead}")
        if self._loop is not None:
            for fut in failed:
                self._loop.call_soon_threadsafe(
                    lambda f=fut: f.done() or f.set_exception(exc)
                )

    # -- shutdown ----------------------------------------------------------

    def drain_and_stop(self, timeout: float = 30.0) -> None:
        """Let live links finish shipping everything buffered, then
        stop them.  Called off the event loop during server shutdown
        (workers already stopped, so the logs are final)."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            links = list(self._links)
        for link in links:
            if link.is_alive():
                link.join(timeout=timeout)
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for link in links:
            if link.is_alive():
                link.join(timeout=5.0)
