"""Primary→follower WAL shipping: synchronous replication, snapshot
resync, and the source side of live shard migration.

The primary's engines are opened with a WAL commit observer (see
:mod:`repro.lsm.wal`): every time a group commit makes records durable
locally, the exact on-disk frames land in an in-memory per-shard
:class:`_ShardLog`.  One :class:`_FollowerLink` thread per follower
drains those logs over the ordinary wire protocol (``REPL_APPLY``
frames on one connection, so the stream can never race itself) and
records the follower's *durable* applied watermark from each
acknowledgement.

The contract that makes failover lossless:

* the observer only ever sees frames that are already durable on the
  primary, so a follower can never get ahead of the primary's own
  recovery;
* the primary's client ack for a write at sequence ``q`` waits (via
  :meth:`PrimaryReplication.wait_durable`) until every **voting**
  follower has durably applied ``q`` — so an OK the client observed is
  recoverable from any voting node, and a promoted follower's state is
  always an exact prefix of the primary's log at a sequence >= the
  maximum observed ack;
* a follower resumes from its ``dispatched`` watermark (never lower),
  so reconnect resends are deduplicated by sequence instead of
  double-applied.

Link lifecycle (PR 10).  A link is a small state machine —
``connecting → handshake → [resync →] streaming``, with ``retrying``
on any connection loss — and only a ``streaming`` link *votes* in the
ack gate.  A dropped link fails the writes that were already waiting
on it (typed, loud — nothing is silently under-replicated) but does
NOT block subsequent writes: the link keeps reconnecting with backoff
as a non-voting learner, and rejoins the gate the moment it streams
again.  The window where fewer replicas vote is visible in ``STATS``.

A follower below the log floor (it attached late, restarted from an
empty disk, or the capped log trimmed past it while it was down) is
bootstrapped by **snapshot resync**: the primary pins an engine
:class:`~repro.lsm.engine.Snapshot`, ships the manifest layout plus
every referenced SSTable's bytes over ``SNAP_*`` frames (the merged
memtable rides along as one synthetic L0 table), the follower installs
it atomically and re-enters WAL streaming at the snapshot's sequence.
The same machinery rewinds a *diverged* follower (one whose watermark
is ahead of this primary's log after an election).  Passing
``allow_resync=False`` restores the old refuse-loudly behaviour, now
as the typed :class:`FollowerBehindError` instead of a silent link
death.

Replication messages carry the group's election *term*; a ``FENCED``
answer (the follower knows a newer primary) kills the link permanently
and fails writes with :class:`ReplicationFencedError` — the deposed
primary's cue to step down.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable

from ..server.client import FencedError, KVClient
from . import membership

#: Cap on one REPL_APPLY payload; well under protocol.MAX_FRAME_BYTES
#: so a burst of commits becomes several frames, not one giant one.
MAX_BATCH_BYTES = 1 << 20

#: Default cap on a shard log's buffered frame bytes.  Beyond it the
#: oldest frames are trimmed even without follower acks (bounded by
#: what connected links still need) — a long-dead follower costs a
#: snapshot resync on return instead of unbounded primary memory.
DEFAULT_LOG_CAP_BYTES = 4 << 20

#: Sender idle poll (also the stop/drain responsiveness bound).
_IDLE_WAIT = 0.05

#: Reconnect backoff bounds for a retrying link.
_RECONNECT_MIN = 0.05
_RECONNECT_MAX = 1.0

#: Link states that pin the log trim floor: these links have announced
#: (or are about to announce) a cursor they still need frames above.
_TRIM_STATES = ("handshake", "resync", "streaming")


class ReplicationError(RuntimeError):
    """A follower link is down or cannot catch up; writes that were
    waiting on it are NOT acknowledged."""


class FollowerBehindError(ReplicationError):
    """A follower's watermark is below the primary's log floor (or
    diverged past its end) and snapshot resync is disabled."""


class ReplicationFencedError(ReplicationError):
    """A follower refused this primary's term: a newer primary was
    elected.  This node must stop acting as primary."""


class _ShardLog:
    """Append-only buffer of committed WAL frames for one shard.

    ``floor`` is the sequence just below the oldest buffered frame:
    followers must already hold everything <= floor.  Frames below the
    confirmed-durable-everywhere point can be trimmed away.
    """

    __slots__ = ("floor", "entries", "buffered_bytes")

    def __init__(self) -> None:
        self.floor: int | None = None  # unknown until bind()
        self.entries: list[tuple[int, bytes]] = []
        self.buffered_bytes = 0

    @property
    def end_seq(self) -> int:
        if self.entries:
            return self.entries[-1][0]
        return self.floor or 0

    def append(self, frames: list[tuple[int, bytes]]) -> None:
        last = self.entries[-1][0] if self.entries else None
        for seq, frame in frames:
            if last is not None and seq <= last:
                continue  # recovery re-log resyncing an already-seen tail
            self.entries.append((seq, frame))
            self.buffered_bytes += len(frame)
            last = seq

    def batch_after(self, cursor: int) -> tuple[bytes, int] | None:
        """Concatenated frames covering (cursor, ...] up to the byte
        cap, plus the last covered sequence; None when caught up."""
        out = bytearray()
        last = cursor
        for seq, frame in self.entries:
            if seq <= cursor:
                continue
            if out and len(out) + len(frame) > MAX_BATCH_BYTES:
                break
            out += frame
            last = seq
        if not out:
            return None
        return bytes(out), last

    def trim_below(self, seq: int) -> None:
        """Drop frames every attached follower has durably applied."""
        keep = 0
        while keep < len(self.entries) and self.entries[keep][0] <= seq:
            self.buffered_bytes -= len(self.entries[keep][1])
            keep += 1
        if keep:
            del self.entries[:keep]
            self.floor = max(self.floor or 0, seq)

    def trim_to_cap(self, cap_bytes: int, limit: int | None) -> None:
        """Enforce the byte cap by dropping the oldest frames, but
        never past ``limit`` (the lowest sequence a connected link or a
        resync/migration pin still needs).  ``limit=None`` means
        nothing pins the log."""
        keep = 0
        dropped = 0
        while (
            keep < len(self.entries)
            and self.buffered_bytes - dropped > cap_bytes
            and (limit is None or self.entries[keep][0] <= limit)
        ):
            dropped += len(self.entries[keep][1])
            keep += 1
        if keep:
            floor = self.entries[keep - 1][0]
            self.buffered_bytes -= dropped
            del self.entries[:keep]
            self.floor = max(self.floor or 0, floor)


class _FollowerLink(threading.Thread):
    """One follower: a connection, per-shard cursors, durable marks,
    and a reconnect loop.  Votes in the ack gate only while streaming."""

    def __init__(self, coord: "PrimaryReplication", host: str, port: int) -> None:
        super().__init__(name=f"repl-{host}:{port}", daemon=True)
        self.coord = coord
        self.host = host
        self.port = port
        #: Highest sequence shipped per shard (the follower's
        #: ``dispatched``, refreshed from its WATERMARK on connect).
        self.cursor: dict[int, int] = {}
        #: Highest durably applied sequence per shard, from acks.
        self.durable: dict[int, int] = {}
        self.state = "connecting"
        self.last_error: str | None = None
        #: Completed snapshot resyncs over this link's lifetime.
        self.resyncs = 0
        self.reconnects = 0
        self._stop_evt = threading.Event()
        self._client: KVClient | None = None

    @property
    def voting(self) -> bool:
        return self.state == "streaming"

    def durable_for(self, shard_id: int) -> int:
        return self.durable.get(shard_id, -1)

    def stop(self) -> None:
        self._stop_evt.set()

    def _halted(self) -> bool:
        return self._stop_evt.is_set() or self.coord._stopped

    def _set_state(self, state: str) -> None:
        with self.coord._cond:
            self.state = state
            self.coord._cond.notify_all()

    def run(self) -> None:
        coord = self.coord
        backoff = _RECONNECT_MIN
        try:
            while not self._halted():
                try:
                    self._client = KVClient(self.host, self.port)
                    self._handshake()
                    backoff = _RECONNECT_MIN
                    self._stream()
                    self._set_state("stopped")
                    break  # clean drain/stop exit
                except FencedError as exc:
                    self.last_error = repr(exc)
                    self._set_state("fenced")
                    coord._fail_waiters(
                        ReplicationFencedError(
                            f"follower {self.host}:{self.port} fenced this "
                            f"primary: {exc}"
                        )
                    )
                    break
                except FollowerBehindError as exc:
                    self.last_error = str(exc)
                    self._set_state("needs_resync")
                    coord._fail_waiters(exc)
                    break
                except BaseException as exc:
                    self.last_error = repr(exc)
                    self._close_client()
                    if self._halted() or coord._draining:
                        self._set_state("stopped")
                        break
                    # Transient: writes already waiting on this link
                    # fail loudly; new writes proceed without its vote
                    # while it reconnects as a learner.
                    self._set_state("retrying")
                    coord._fail_waiters(
                        ReplicationError(
                            f"follower link {self.host}:{self.port} lost: {exc!r}"
                        )
                    )
                    coord._advance()
                    self._stop_evt.wait(backoff)
                    backoff = min(backoff * 2, _RECONNECT_MAX)
                    self.reconnects += 1
        finally:
            self._close_client()
            with coord._cond:
                coord._cond.notify_all()

    def _close_client(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None

    def _handshake(self) -> None:
        """Fetch the follower's watermarks; stream, or resync first."""
        coord = self.coord
        client = self._client
        assert client is not None
        self._set_state("handshake")
        reply = client.watermark()
        behind: list[tuple[int, str]] = []
        with coord._cond:
            for shard_id in sorted(coord._logs):
                if shard_id in coord._ingest:
                    continue
                log = coord._logs[shard_id]
                floor = log.floor or 0
                mark = reply.marks.get(shard_id)
                if mark is None:
                    behind.append((shard_id, "does not host the shard"))
                    continue
                dispatched, applied = mark
                if dispatched < floor:
                    behind.append(
                        (shard_id, f"at seq {dispatched} < log floor {floor}")
                    )
                elif dispatched > log.end_seq:
                    # Diverged: it holds sequences this primary's log
                    # never saw (e.g. acked by a deposed primary).  A
                    # snapshot rewinds it to this primary's history.
                    behind.append(
                        (shard_id,
                         f"at seq {dispatched} > log end {log.end_seq} (diverged)")
                    )
                else:
                    self.cursor[shard_id] = dispatched
                    self.durable[shard_id] = applied
        if behind:
            if not coord._allow_resync:
                shard_id, why = behind[0]
                raise FollowerBehindError(
                    f"follower {self.host}:{self.port} shard {shard_id} {why}: "
                    "requires snapshot resync (disabled on this primary)"
                )
            self._set_state("resync")
            for shard_id, _ in behind:
                snap_seq = self._resync_shard(shard_id)
                with coord._cond:
                    self.cursor[shard_id] = snap_seq
                    self.durable[shard_id] = snap_seq
                self.resyncs += 1
        self._set_state("streaming")
        coord._advance()

    def _resync_shard(self, shard_id: int) -> int:
        """Ship a pinned engine snapshot for one shard; returns the
        sequence the follower installed (its new watermark)."""
        coord = self.coord
        server = coord._server
        worker = server.shards.get(shard_id) if server is not None else None
        if worker is None:
            raise ReplicationError(
                f"cannot resync shard {shard_id}: not hosted by this primary"
            )
        snap_seq, doc, files = membership.build_snapshot(
            worker.engine, purpose="resync"
        )
        membership.ship_snapshot(
            self._client, server.term, shard_id, snap_seq, doc, files
        )
        return snap_seq

    def _stream(self) -> None:
        coord = self.coord
        client = self._client
        assert client is not None
        while True:
            work: list[tuple[int, bytes, int]] = []
            with coord._cond:
                while True:
                    for shard_id in sorted(coord._logs):
                        if shard_id in coord._ingest:
                            continue
                        log = coord._logs[shard_id]
                        cursor = self.cursor.get(shard_id, log.floor or 0)
                        batch = log.batch_after(cursor)
                        if batch is not None:
                            work.append((shard_id, batch[0], batch[1]))
                    if work or coord._stopped or self._stop_evt.is_set():
                        break
                    if coord._draining:
                        return  # caught up and the primary is shutting down
                    coord._cond.wait(_IDLE_WAIT)
                if (coord._stopped or self._stop_evt.is_set()) and not work:
                    return
            term = coord._server.term if coord._server is not None else 0
            for shard_id, frames, last in work:
                applied = client.repl_apply(term, shard_id, frames)
                self.cursor[shard_id] = last
                self.durable[shard_id] = max(self.durable.get(shard_id, -1), applied)
            coord._advance()


class PrimaryReplication:
    """Coordinator a primary :class:`~repro.server.server.KVServer`
    attaches at construction: installs the WAL observers, owns the
    per-shard logs and follower links, and gates write acks."""

    def __init__(
        self,
        auto_trim: bool = True,
        allow_resync: bool = True,
        log_cap_bytes: int = DEFAULT_LOG_CAP_BYTES,
    ) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._logs: dict[int, _ShardLog] = {}
        self._links: list[_FollowerLink] = []
        self._pending_followers: list[tuple[str, int]] = []
        self._server: Any = None
        self._loop: Any = None
        #: Per-shard waiters: (seq, asyncio future), kept sorted enough
        #: by append order (seqs are assigned monotonically per shard).
        self._waiters: dict[int, list[tuple[int, Any]]] = {}
        self._auto_trim = auto_trim
        self._allow_resync = allow_resync
        self._log_cap_bytes = log_cap_bytes
        #: Shards this node is *ingesting* via migration: their logs
        #: are neither streamed to followers nor trimmed until commit.
        self._ingest: set[int] = set()
        #: Explicit trim pins: shard -> {token: sequence}.  Resync and
        #: migration register one so the delta they still have to ship
        #: cannot be trimmed away under them.
        self._pins: dict[int, dict[Any, int]] = {}
        #: Live outbound migrations: shard -> phase string (STATS).
        self._migrations: dict[int, str] = {}
        self._draining = False
        self._stopped = False

    # -- wiring (called by KVServer) ---------------------------------------

    def _log(self, shard_id: int) -> _ShardLog:
        log = self._logs.get(shard_id)
        if log is None:
            log = self._logs[shard_id] = _ShardLog()
        return log

    def observer_for(self, shard_id: int) -> Callable[[list[tuple[int, bytes]]], None]:
        """The WAL commit observer for one shard's engine.  Fires on
        that shard's writer thread with frames that just became durable
        locally; appending is the only work done there."""

        def observe(frames: list[tuple[int, bytes]]) -> None:
            with self._cond:
                log = self._log(shard_id)
                log.append(frames)
                # Enforce the byte cap here, not only on acks: with no
                # follower attached (or all of them down) nothing else
                # runs, and an unbounded log would defeat the cap.
                if self._auto_trim and log.buffered_bytes > self._log_cap_bytes:
                    log.trim_to_cap(
                        self._log_cap_bytes, self._trim_limit_locked(shard_id)
                    )
                self._cond.notify_all()

        return observe

    def bind(self, server: Any) -> None:
        """Anchor the logs to the opened engines and start the links.

        Called by :meth:`KVServer.start` after every engine has
        recovered: a shard whose log is still empty has all of its data
        in SSTables (nothing to stream), so its floor is the engine's
        last sequence; a shard that buffered frames during recovery
        (the re-logged WAL tail) starts its floor just below them.
        """
        with self._cond:
            self._server = server
            self._loop = server._loop
            for shard_id, worker in server.shards.items():
                log = self._log(shard_id)
                if log.floor is None:
                    if log.entries:
                        log.floor = log.entries[0][0] - 1
                    else:
                        log.floor = worker.engine.last_seq
            pending, self._pending_followers = self._pending_followers, []
        for host, port in pending:
            self.add_follower(host, port)

    def reset_shard(self, shard_id: int, seq: int) -> None:
        """Re-anchor one shard's log at ``seq`` (snapshot install on a
        follower, or migration commit on the receiving primary): the
        buffered history below it is obsolete."""
        with self._cond:
            log = self._log(shard_id)
            log.entries.clear()
            log.buffered_bytes = 0
            log.floor = seq
            self._cond.notify_all()

    def detach_shard(self, shard_id: int) -> None:
        """Forget a migrated-away shard entirely."""
        with self._cond:
            self._logs.pop(shard_id, None)
            self._ingest.discard(shard_id)
            self._pins.pop(shard_id, None)
            self._migrations.pop(shard_id, None)
            for link in self._links:
                link.cursor.pop(shard_id, None)
                link.durable.pop(shard_id, None)
            self._cond.notify_all()
        self._advance()

    def set_ingest(self, shard_id: int, ingesting: bool) -> None:
        with self._cond:
            if ingesting:
                self._ingest.add(shard_id)
            else:
                self._ingest.discard(shard_id)
            self._cond.notify_all()

    # -- topology ----------------------------------------------------------

    def add_follower(self, host: str, port: int) -> None:
        """Attach one follower; before :meth:`bind` it is queued.
        Idempotent: an address that already has a live link is kept."""
        with self._cond:
            if self._server is None:
                self._pending_followers.append((host, port))
                return
            for link in self._links:
                if (link.host, link.port) == (host, port):
                    return
            link = _FollowerLink(self, host, port)
            self._links.append(link)
        link.start()

    def remove_follower(self, host: str, port: int) -> None:
        """Detach a (possibly dead) follower — failover re-pointing.
        Writes blocked on it are re-evaluated against the rest."""
        removed = []
        with self._cond:
            for link in list(self._links):
                if (link.host, link.port) == (host, port):
                    self._links.remove(link)
                    removed.append(link)
            self._cond.notify_all()
        for link in removed:
            link.stop()
        self._advance()

    @property
    def followers(self) -> list[tuple[str, int]]:
        with self._lock:
            return [(link.host, link.port) for link in self._links]

    # -- the ack gate (event loop side) ------------------------------------

    def wait_durable(self, shard_id: int, seq: int) -> Any:
        """An awaitable that resolves once every *voting* follower has
        durably applied ``seq`` on ``shard_id`` (immediately when no
        voting follower is attached — standalone mode, or every link
        mid-resync/reconnect).  Raises :class:`ReplicationError`
        through the future when a link is terminally broken: the write
        is NOT acknowledged rather than silently under-replicated."""
        assert self._loop is not None, "bind() first"
        fut = self._loop.create_future()
        with self._cond:
            broken = [
                link for link in self._links
                if link.state in ("fenced", "needs_resync")
            ]
            if broken:
                link = broken[0]
                exc: ReplicationError
                if link.state == "fenced":
                    exc = ReplicationFencedError(
                        f"fenced by follower {link.host}:{link.port}: "
                        f"{link.last_error}"
                    )
                else:
                    exc = FollowerBehindError(
                        f"follower {link.host}:{link.port} needs resync: "
                        f"{link.last_error}"
                    )
                fut.set_exception(exc)
            elif self._durable_min_locked(shard_id) >= seq:
                fut.set_result(True)
            else:
                self._waiters.setdefault(shard_id, []).append((seq, fut))
        return fut

    def _durable_min_locked(self, shard_id: int) -> float:
        voting = [link for link in self._links if link.voting]
        if not voting:
            return float("inf")
        return min(link.durable_for(shard_id) for link in voting)

    def _trim_limit_locked(self, shard_id: int) -> int | None:
        """Lowest sequence any connected link or pin still needs; None
        when nothing pins the log (trim freely)."""
        vals = [
            link.cursor.get(shard_id, -1)
            for link in self._links
            if link.state in _TRIM_STATES
        ]
        vals.extend(self._pins.get(shard_id, {}).values())
        return min(vals) if vals else None

    # -- sender-thread callbacks -------------------------------------------

    def _advance(self) -> None:
        """Re-evaluate waiters after acks arrived / topology changed."""
        resolved: list[Any] = []
        with self._cond:
            if self._loop is None:
                return
            for shard_id, waiters in self._waiters.items():
                floor = self._durable_min_locked(shard_id)
                still = []
                for seq, fut in waiters:
                    if seq <= floor:
                        resolved.append(fut)
                    else:
                        still.append((seq, fut))
                self._waiters[shard_id] = still
            if self._auto_trim:
                self._trim_locked()
        for fut in resolved:
            self._loop.call_soon_threadsafe(
                lambda f=fut: f.done() or f.set_result(True)
            )

    def _trim_locked(self) -> None:
        voting = [link for link in self._links if link.voting]
        for shard_id, log in self._logs.items():
            if shard_id in self._ingest:
                continue
            if voting:
                floor = min(link.durable_for(shard_id) for link in voting)
                limit = self._trim_limit_locked(shard_id)
                if limit is not None:
                    floor = min(floor, limit)
                if floor > (log.floor or 0):
                    log.trim_below(int(floor))
            if log.buffered_bytes > self._log_cap_bytes:
                log.trim_to_cap(
                    self._log_cap_bytes, self._trim_limit_locked(shard_id)
                )

    def _fail_waiters(self, exc: ReplicationError) -> None:
        """Fail every write currently waiting on replication: its
        durability across the configured set can no longer be promised.
        Future writes re-evaluate against whoever is voting then."""
        failed: list[Any] = []
        with self._cond:
            for waiters in self._waiters.values():
                failed.extend(fut for _, fut in waiters)
            self._waiters.clear()
            self._cond.notify_all()
        if self._loop is not None:
            for fut in failed:
                self._loop.call_soon_threadsafe(
                    lambda f=fut: f.done() or f.set_exception(exc)
                )

    # -- outbound migration (runs on an executor thread) --------------------

    def migrate_out(
        self, shard_id: int, dst_group: str, targets: list[tuple[str, int]]
    ) -> int:
        """Move one shard's data to every target node of the receiving
        group: pinned snapshot, catch-up delta under live traffic, then
        seal + final delta.  Returns the handoff sequence — every
        target holds the shard's exact history through it."""
        server = self._server
        if server is None:
            raise ReplicationError("replication not bound to a server")
        worker = server.shards.get(shard_id)
        if worker is None:
            raise ReplicationError(f"shard {shard_id} not hosted")
        token = object()
        with self._cond:
            log = self._log(shard_id)
            self._pins.setdefault(shard_id, {})[token] = log.floor or 0
            self._migrations[shard_id] = "snapshot"
        clients: list[KVClient] = []
        try:
            snap_seq, doc, files = membership.build_snapshot(
                worker.engine, purpose="migrate"
            )
            cursors: dict[int, int] = {}
            for host, port in targets:
                client = KVClient(host, port)
                clients.append(client)
                membership.ship_snapshot(
                    client, server.term, shard_id, snap_seq, doc, files
                )
                cursors[id(client)] = snap_seq

            def ship_until(target_seq: int) -> None:
                while True:
                    progressed = False
                    for client in clients:
                        while cursors[id(client)] < target_seq:
                            with self._cond:
                                batch = self._log(shard_id).batch_after(
                                    cursors[id(client)]
                                )
                            if batch is None:
                                break
                            frames, last = batch
                            client.repl_apply(server.term, shard_id, frames)
                            cursors[id(client)] = last
                            progressed = True
                    if min(cursors.values()) >= target_seq:
                        return
                    if not progressed:
                        time.sleep(0.005)

            # Catch-up delta while the shard still takes writes.
            with self._cond:
                self._migrations[shard_id] = "delta"
            ship_until(self._log(shard_id).end_seq)
            # Seal: new writes answer NOT_OWNER (with a forward hint to
            # the receiving group); the sync barrier flushes everything
            # already queued through the WAL — and thus into the log.
            with self._cond:
                self._migrations[shard_id] = "seal"
            handoff_seq = asyncio.run_coroutine_threadsafe(
                server.seal_shard(shard_id, dst_group), self._loop
            ).result(timeout=60.0)
            ship_until(handoff_seq)
            with self._cond:
                self._migrations[shard_id] = "handoff"
            return handoff_seq
        finally:
            for client in clients:
                try:
                    client.close()
                except Exception:
                    pass
            with self._cond:
                pins = self._pins.get(shard_id)
                if pins is not None:
                    pins.pop(token, None)
                    if not pins:
                        self._pins.pop(shard_id, None)

    def wait_links_durable(self, shard_id: int, seq: int, timeout: float = 30.0) -> None:
        """Block until every streaming link durably applied ``seq`` on
        ``shard_id`` (the pre-detach barrier: the group's own followers
        must hold the sealed shard's full tail before the primary
        forgets its log)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                lagging = [
                    link for link in self._links
                    if link.state in _TRIM_STATES and link.durable_for(shard_id) < seq
                ]
                if not lagging:
                    return
                if time.monotonic() >= deadline:
                    raise ReplicationError(
                        f"timeout waiting for {len(lagging)} link(s) to reach "
                        f"seq {seq} on shard {shard_id} before detach"
                    )
                self._cond.wait(_IDLE_WAIT)

    # -- observability ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The STATS `replication` section: per-shard log geometry and
        per-link cursors/watermarks/states."""
        with self._cond:
            return {
                "allow_resync": self._allow_resync,
                "log_cap_bytes": self._log_cap_bytes,
                "shards": {
                    str(shard_id): {
                        "floor": log.floor,
                        "end_seq": log.end_seq,
                        "entries": len(log.entries),
                        "buffered_bytes": log.buffered_bytes,
                        "ingest": shard_id in self._ingest,
                        "migration": self._migrations.get(shard_id),
                    }
                    for shard_id, log in sorted(self._logs.items())
                },
                "links": [
                    {
                        "host": link.host,
                        "port": link.port,
                        "state": link.state,
                        "voting": link.voting,
                        "cursor": {str(s): c for s, c in sorted(link.cursor.items())},
                        "durable": {str(s): d for s, d in sorted(link.durable.items())},
                        "resyncs": link.resyncs,
                        "reconnects": link.reconnects,
                        "last_error": link.last_error,
                    }
                    for link in self._links
                ],
            }

    # -- shutdown ----------------------------------------------------------

    def drain_and_stop(self, timeout: float = 30.0) -> None:
        """Let live links finish shipping everything buffered, then
        stop them.  Called off the event loop during server shutdown
        (workers already stopped, so the logs are final)."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            links = list(self._links)
        for link in links:
            if link.is_alive() and link.state == "streaming":
                link.join(timeout=timeout)
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for link in links:
            link.stop()
        for link in links:
            if link.is_alive():
                link.join(timeout=5.0)
