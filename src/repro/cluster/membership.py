"""Cluster membership mechanics: snapshot shipping and leases.

Three pieces live here, shared by resync (``cluster.replicator``),
migration, and election (``cluster.failover`` / the CLI):

**Snapshot build** (:func:`build_snapshot`).  A shipped snapshot is
*nothing but SSTables plus a manifest document*: the sender pins an
engine :class:`~repro.lsm.engine.Snapshot` (so compactions cannot
unlink the files underneath it), serialises the pinned memtable
content as one synthetic newest-first L0 table, and reads every
referenced table's bytes.  The document names each file with its size
and CRC so the receiver can verify before installing.

**Snapshot shipping and install** (:func:`ship_snapshot`,
:func:`install_snapshot`).  Files travel as chunked ``SNAP_CHUNK``
frames (each well under the protocol frame cap) between one
``SNAP_BEGIN`` announcing the document and one ``SNAP_COMMIT``.  The
receiver stages everything in memory and installs atomically: wipe the
shard directory (CURRENT first — a crash mid-wipe leaves a fresh,
recoverable-as-empty directory that simply resyncs again), write the
tables, then install a version-1 manifest whose ``last_seq`` is the
snapshot sequence.  The manifest names a WAL segment that does not
exist, which engine recovery treats as "start a fresh WAL after it".

**Lease-based election** (:class:`LeaseManager`).  One thread per
node.  A primary grants ``LEASE(term, ttl)`` to its peers every
interval; a follower whose lease has expired (plus a deterministic
per-node jitter, so candidates do not stampede) polls every peer's
``WATERMARK``, and promotes *itself* only when no live peer claims
primacy and it is the most-caught-up candidate — ordering by
``(term, total applied sequence, name)``.  Promotion reuses the
``PROMOTE`` fencing barrier with ``max(observed terms) + 1``, then
re-attaches the surviving peers as followers.  Safety never rests on
the lease timing: synchronous replication guarantees any voting
follower holds every acknowledged write, and term fencing on
``REPL_APPLY``/``LEASE`` makes a deposed primary's writes fail loudly
rather than fork history.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from typing import Any

from ..lsm import manifest as lsm_manifest
from ..lsm.fs import FileSystem, WritableFile, join
from ..lsm.sstable import table_file_name, write_sstable
from ..lsm.wal import wal_file_name
from ..server.client import (
    FencedError,
    KVClient,
    ServerError,
)

#: One SNAP_CHUNK payload (file bytes per frame).
SNAP_CHUNK_BYTES = 256 * 1024

#: Receiver-side cap on the total announced snapshot size.
MAX_SNAPSHOT_BYTES = 1 << 30


class _BufFile(WritableFile):
    def __init__(self) -> None:
        self.data = bytearray()

    def append(self, data: bytes) -> None:
        self.data += data

    def sync(self) -> None:
        pass

    def close(self) -> None:
        pass


class _BufFS(FileSystem):
    """Just enough filesystem to run ``write_sstable`` into memory."""

    def __init__(self) -> None:
        self.files: dict[str, _BufFile] = {}

    def create(self, path: str) -> WritableFile:
        f = _BufFile()
        self.files[path] = f
        return f

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        data = bytes(self.files[path].data)
        if length is None:
            return data[offset:]
        return data[offset : offset + length]


def build_snapshot(
    engine: Any, purpose: str
) -> tuple[int, bytes, dict[str, bytes]]:
    """Pin ``engine`` and materialise a shippable snapshot.

    Returns ``(snap_seq, doc_bytes, files)`` where ``files`` maps table
    file names to their full bytes and ``doc_bytes`` is the UTF-8 JSON
    manifest document carried by ``SNAP_BEGIN``.
    """
    snap = engine.snapshot()
    try:
        layout = snap.table_layout()
        fs = engine.fs
        if fs is None:
            raise ValueError("cannot snapshot a pure in-memory engine")
        files: dict[str, bytes] = {}
        levels: list[list[int]] = []
        all_ids: list[int] = []
        for level in layout:
            ids = []
            for table_id, path in level:
                files[table_file_name(table_id)] = fs.read(path)
                ids.append(table_id)
                all_ids.append(table_id)
            levels.append(ids)
        if not levels:
            levels = [[]]
        mem = snap.mem_items()
        if mem:
            # The pinned memtable ships as one synthetic newest-first
            # L0 table, written exactly like the engine's own flushes.
            table_id = max(all_ids, default=-1) + 1
            buf = _BufFS()
            write_sstable(
                buf,
                "mem",
                mem,
                table_id,
                block_entries=engine._block_entries,
                filter_factory=engine._filter_factory,
            )
            files[table_file_name(table_id)] = buf.read("mem")
            levels[0].insert(0, table_id)
            all_ids.append(table_id)
        doc = {
            "purpose": purpose,
            "snap_seq": snap.seq,
            "next_table_id": max(all_ids, default=-1) + 1,
            "levels": levels,
            "files": [
                {"name": name, "size": len(data), "crc": zlib.crc32(data)}
                for name, data in sorted(files.items())
            ],
        }
        return snap.seq, json.dumps(doc, sort_keys=True).encode("utf-8"), files
    finally:
        snap.release()


def validate_snapshot_doc(doc: dict[str, Any]) -> None:
    """Receiver-side sanity on an announced snapshot document; raises
    :class:`ValueError` (mapped to BAD_REQUEST) on anything off."""
    if doc.get("purpose") not in ("resync", "migrate"):
        raise ValueError("bad snapshot purpose")
    if not isinstance(doc.get("snap_seq"), int) or doc["snap_seq"] < 0:
        raise ValueError("bad snapshot sequence")
    if not isinstance(doc.get("next_table_id"), int):
        raise ValueError("bad next_table_id")
    levels = doc.get("levels")
    if not isinstance(levels, list) or not all(
        isinstance(level, list) and all(isinstance(t, int) for t in level)
        for level in levels
    ):
        raise ValueError("bad level layout")
    entries = doc.get("files")
    if not isinstance(entries, list):
        raise ValueError("bad file list")
    total = 0
    names = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("bad file entry")
        name, size, crc = entry.get("name"), entry.get("size"), entry.get("crc")
        if not isinstance(name, str) or "/" in name or name in ("", ".", ".."):
            raise ValueError("bad file name")
        if not isinstance(size, int) or size < 0 or not isinstance(crc, int):
            raise ValueError("bad file entry")
        names.add(name)
        total += size
    if total > MAX_SNAPSHOT_BYTES:
        raise ValueError("snapshot exceeds size cap")
    declared = {table_file_name(t) for level in levels for t in level}
    if not declared <= names:
        raise ValueError("level layout references unannounced tables")


def ship_snapshot(
    client: KVClient,
    term: int,
    shard_id: int,
    snap_seq: int,
    doc_bytes: bytes,
    files: dict[str, bytes],
) -> int:
    """Send one built snapshot over an open client connection."""
    client.snap_begin(term, shard_id, doc_bytes)
    for name, data in sorted(files.items()):
        if not data:
            client.snap_chunk(term, shard_id, name, 0, b"")
            continue
        for offset in range(0, len(data), SNAP_CHUNK_BYTES):
            client.snap_chunk(
                term, shard_id, name, offset, data[offset : offset + SNAP_CHUNK_BYTES]
            )
    return client.snap_commit(term, shard_id, snap_seq)


def install_snapshot(
    fs: FileSystem, root: str, doc: dict[str, Any], files: dict[str, bytes]
) -> None:
    """Replace whatever is in ``root`` with the shipped snapshot.

    The wipe removes CURRENT first: a crash anywhere mid-install leaves
    a directory that recovers as empty (no manifest → fresh engine),
    which simply triggers another resync.  That is safe because a node
    being installed is a non-voting learner — no acknowledged write
    depends on its contents until it streams again.
    """
    fs.mkdir(root)
    try:
        existing = list(fs.listdir(root))
    except (FileNotFoundError, OSError):
        existing = []
    if lsm_manifest.CURRENT in existing:
        fs.remove(join(root, lsm_manifest.CURRENT))
        existing.remove(lsm_manifest.CURRENT)
    for name in existing:
        try:
            fs.remove(join(root, name))
        except (FileNotFoundError, OSError):
            pass
    for name, data in sorted(files.items()):
        f = fs.create(join(root, name))
        f.append(data)
        f.sync()
        f.close()
    # The named WAL segment intentionally does not exist: recovery sees
    # no segment at or above wal_index and starts a fresh one after it.
    state = lsm_manifest.ManifestState(
        version=1,
        next_table_id=doc["next_table_id"],
        last_seq=doc["snap_seq"],
        wal_name=wal_file_name(1),
        wal_index=1,
        levels=[list(level) for level in doc["levels"]],
    )
    lsm_manifest.install(fs, root, state)


# ---------------------------------------------------------------------------
# Lease-based election
# ---------------------------------------------------------------------------


class LeaseManager(threading.Thread):
    """Per-node failure detection and automatic promotion.

    ``peers`` lists the *other* nodes of the replication group as
    ``(name, host, port)``; ``name`` orders candidates deterministically
    (use ``host:port`` when nothing better exists).  The manager talks
    to its own node through the loopback client like any other peer —
    promotion runs through the public ``PROMOTE`` barrier, never by
    poking server internals.
    """

    def __init__(
        self,
        name: str,
        server: Any,
        replication: Any,
        peers: list[tuple[str, str, int]],
        lease_interval: float = 0.2,
        lease_ttl: float = 1.0,
    ) -> None:
        super().__init__(name=f"lease-{name}", daemon=True)
        self.node_name = name
        self._server = server
        self._replication = replication
        self._peers = list(peers)
        self._interval = lease_interval
        self._ttl = lease_ttl
        # Deterministic per-node jitter decorrelates candidates without
        # randomness: expired followers wake at different times.
        self._jitter = (zlib.crc32(name.encode("utf-8")) % 100) / 100.0 * lease_ttl
        self._stop_evt = threading.Event()
        self._clients: dict[tuple[str, int], KVClient] = {}
        #: Election log for tests/observability: (event, term) tuples.
        self.events: list[tuple[str, int]] = []
        self._boot_grace = time.monotonic() + lease_ttl

    def stop(self) -> None:
        self._stop_evt.set()
        # Snapshot: the manager thread may still be mutating the dict
        # until it observes the stop event at its next tick.
        for client in list(self._clients.values()):
            try:
                client.close()
            except Exception:
                pass
        self._clients.clear()

    def _client(self, host: str, port: int) -> KVClient:
        key = (host, port)
        client = self._clients.get(key)
        if client is None:
            # Short timeout: a cached connection to a *dead* peer would
            # otherwise block a probe for the full default client
            # timeout, stalling the election far past the lease TTL.
            client = KVClient(host, port, timeout=max(1.0, self._ttl))
            self._clients[key] = client
        return client

    def _drop_client(self, host: str, port: int) -> None:
        client = self._clients.pop((host, port), None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def run(self) -> None:
        while not self._stop_evt.wait(self._interval):
            try:
                if self._server.role == "primary":
                    self._grant_leases()
                else:
                    self._check_lease()
            except Exception:
                # The manager must survive anything a flaky peer can
                # throw at it; the next tick retries.
                pass

    # -- primary side -------------------------------------------------------

    def _grant_leases(self) -> None:
        ttl_ms = int(self._ttl * 1000)
        for _, host, port in self._peers:
            try:
                self._client(host, port).lease(self._server.term, ttl_ms)
            except FencedError:
                # A peer knows a newer primary: stand down immediately.
                self._server.demote()
                self.events.append(("demoted", self._server.term))
                return
            except (ConnectionError, OSError, EOFError, ServerError):
                self._drop_client(host, port)

    # -- follower side ------------------------------------------------------

    def _check_lease(self) -> None:
        now = time.monotonic()
        deadline = max(self._server.lease_deadline or 0.0, self._boot_grace)
        if now < deadline + self._jitter:
            return
        self._try_election()

    def _try_election(self) -> None:
        server = self._server
        my_term = server.term
        live: list[tuple[str, Any]] = []
        for name, host, port in self._peers:
            try:
                reply = self._client(host, port).watermark()
            except (ConnectionError, OSError, EOFError, ServerError):
                self._drop_client(host, port)
                continue
            live.append((name, reply))
        for _, reply in live:
            if reply.is_primary and reply.term >= my_term:
                # A primary is alive (we just could not hear its
                # leases); defer for another TTL.
                server.extend_lease(self._ttl)
                return
        my_total = server.applied_total()
        candidates = [(my_term, my_total, self.node_name)]
        max_term = my_term
        for name, reply in live:
            max_term = max(max_term, reply.term)
            if not reply.is_primary:
                candidates.append((reply.term, reply.applied_total(), name))
        if max(candidates) != (my_term, my_total, self.node_name):
            # A better-caught-up candidate exists; give it a TTL to act.
            server.extend_lease(self._ttl)
            return
        new_term = max_term + 1
        try:
            with KVClient(server.host, server.port) as me:
                me.promote(new_term)
        except (ConnectionError, OSError, EOFError, ServerError):
            return
        self.events.append(("promoted", new_term))
        if self._replication is not None:
            for _, host, port in self._peers:
                self._replication.add_follower(host, port)
