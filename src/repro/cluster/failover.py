"""In-process cluster harness: nodes, groups, failover, migration.

This is the cluster analogue of
:class:`~repro.server.server.ServerThread`: every node is a full
:class:`~repro.server.server.KVServer` (own engines, own event loop
thread, own port) so tests, the kill matrix, and the benchmarks drive
a real multi-node system in one process — and the subprocess CLI
(``python -m repro.cluster``) runs the very same classes one node per
OS process.

Every node carries a :class:`~repro.cluster.replicator.PrimaryReplication`
from birth, even as a follower: its WAL observers buffer committed
frames from the first sequence onward, so a *promoted* follower can
feed the remaining followers directly — and when a survivor is too far
behind (or restarted empty), the link bootstraps it with a snapshot
resync instead of refusing.

Failover comes in two flavours:

* **explicit** — :meth:`ClusterGroup.promote`: the operator picks the
  survivor; the PROMOTE sync barrier guarantees it holds every acked
  write before it takes the primary role.
* **automatic** (PR 10) — :meth:`Cluster.enable_election` starts one
  :class:`~repro.cluster.membership.LeaseManager` per node: the
  primary heartbeats leases; a follower whose lease expires runs the
  most-caught-up-wins election and promotes itself through the same
  barrier, with term fencing keeping a deposed primary from ever
  acking again.

Shard ownership is a mutable *placement map* (global shard id → group
name), seeded from the consistent-hash ring.
:meth:`Cluster.migrate_shard` drives a live migration: the source
primary ships snapshot + delta to every target node (``MIGRATE``),
then the coordinator detaches the source group and commits the target
group — the only write-unavailability is the seal→commit pause, which
clients ride out via NOT_OWNER retries.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..lsm.fs import FileSystem
from ..server.client import KVClient
from ..server.server import KVServer, ServerThread
from .client import ClusterTopology, GroupTopology, NodeAddress
from .membership import LeaseManager
from .replicator import DEFAULT_LOG_CAP_BYTES, PrimaryReplication
from .routing import default_placement


class ClusterNode:
    """One server (engines + event loop thread) with a replication tap."""

    def __init__(
        self,
        name: str,
        path: str,
        n_shards: int = 2,
        fs: FileSystem | Callable[[int], FileSystem] | None = None,
        role: str = "follower",
        engine_config: dict | None = None,
        queue_limit: int = 1024,
        repl_ack_timeout: float = 30.0,
        host: str = "127.0.0.1",
        shard_ids: Sequence[int] | None = None,
        allow_resync: bool = True,
        log_cap_bytes: int = DEFAULT_LOG_CAP_BYTES,
    ) -> None:
        self.name = name
        self.replication = PrimaryReplication(
            allow_resync=allow_resync, log_cap_bytes=log_cap_bytes
        )
        self.server = KVServer(
            path,
            n_shards=n_shards,
            host=host,
            port=0,
            fs=fs,
            queue_limit=queue_limit,
            engine_config=engine_config,
            role=role,
            replication=self.replication,
            repl_ack_timeout=repl_ack_timeout,
            shard_ids=shard_ids,
        )
        self.thread = ServerThread(self.server)
        self.lease: LeaseManager | None = None
        self._started = False

    def start(self) -> "ClusterNode":
        self.thread.start()
        self._started = True
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self.lease is not None:
            self.lease.stop()
            self.lease = None
        if self._started:
            self.thread.stop(timeout=timeout)
            self._started = False

    @property
    def role(self) -> str:
        return self.server.role

    @property
    def address(self) -> NodeAddress:
        return NodeAddress(self.name, self.server.host, self.server.port)

    def __repr__(self) -> str:
        return f"ClusterNode({self.name}, role={self.server.role})"


class ClusterGroup:
    """One primary plus its followers, wired for WAL shipping."""

    def __init__(self, name: str, primary: ClusterNode, followers: list[ClusterNode]):
        self.name = name
        self.primary = primary
        self.followers = list(followers)
        #: Demoted/dead ex-primaries, kept so stop() still reaps them.
        self.retired: list[ClusterNode] = []

    def start(self) -> "ClusterGroup":
        # Followers first: the primary's links fetch their watermarks on
        # connect, so the targets must be listening.
        for node in self.followers:
            node.start()
        self.primary.start()
        for node in self.followers:
            addr = node.address
            self.primary.replication.add_follower(addr.host, addr.port)
        return self

    def stop(self, timeout: float = 60.0) -> None:
        # Lease managers first (a mid-shutdown election helps nobody),
        # then the primary so its drain can still reach live followers.
        for node in [self.primary, *self.followers, *self.retired]:
            if node.lease is not None:
                node.lease.stop()
                node.lease = None
        self.primary.stop(timeout=timeout)
        for node in self.followers:
            node.stop(timeout=timeout)
        for node in self.retired:
            node.stop(timeout=timeout)

    def nodes(self) -> list[ClusterNode]:
        return [self.primary, *self.followers]

    def topology(self) -> GroupTopology:
        return GroupTopology(
            self.name,
            self.primary.address,
            [f.address for f in self.followers],
        )

    def enable_election(
        self, lease_interval: float = 0.2, lease_ttl: float = 1.0
    ) -> None:
        """Start one lease manager per live node (idempotent)."""
        for node in self.nodes():
            if node.lease is not None:
                continue
            peers = [
                (peer.name, peer.server.host, peer.server.port)
                for peer in self.nodes()
                if peer is not node
            ]
            node.lease = LeaseManager(
                node.name,
                node.server,
                node.replication,
                peers,
                lease_interval=lease_interval,
                lease_ttl=lease_ttl,
            )
            node.lease.start()

    def refresh_roles(self) -> GroupTopology:
        """Re-derive primary/followers from the nodes' actual roles
        (after a lease-based auto-promotion chose the new primary)."""
        live = [n for n in [*self.nodes(), *self.retired] if n._started]
        primaries = [n for n in live if n.server.role == "primary"]
        if primaries:
            new_primary = max(primaries, key=lambda n: n.server.term)
            if new_primary is not self.primary:
                if self.primary._started:
                    self.retired.append(self.primary)
                elif self.primary in self.retired:
                    pass
                self.retired = [n for n in self.retired if n is not new_primary]
                self.followers = [
                    n for n in live
                    if n is not new_primary and n.server.role == "follower"
                ]
                self.primary = new_primary
        return self.topology()

    def promote(self, follower: ClusterNode) -> GroupTopology:
        """Fail over to ``follower`` (the old primary is presumed dead
        and is dropped from the group).  Returns the new topology for
        :meth:`ClusterClient.repoint`."""
        if follower not in self.followers:
            raise ValueError(f"{follower.name} is not a follower of {self.name}")
        addr = follower.address
        with KVClient(addr.host, addr.port) as client:
            client.promote()
        survivors = [f for f in self.followers if f is not follower]
        self.retired.append(self.primary)
        self.primary = follower
        self.followers = survivors
        for node in survivors:
            peer = node.address
            follower.replication.add_follower(peer.host, peer.port)
        return self.topology()


class Cluster:
    """A set of groups plus the derived (and mutable) shard placement."""

    def __init__(self, groups: list[ClusterGroup], n_shards: int, vnodes: int = 64):
        self.groups = list(groups)
        self.n_shards = n_shards
        self.vnodes = vnodes
        #: Live shard ownership; migrations mutate it.
        self.placement: dict[int, str] = default_placement(
            [g.name for g in self.groups], n_shards, vnodes
        )

    def start(self) -> "Cluster":
        for group in self.groups:
            group.start()
        return self

    def stop(self, timeout: float = 60.0) -> None:
        for group in self.groups:
            group.stop(timeout=timeout)

    def enable_election(
        self, lease_interval: float = 0.2, lease_ttl: float = 1.0
    ) -> None:
        for group in self.groups:
            group.enable_election(lease_interval, lease_ttl)

    def group(self, name: str) -> ClusterGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(name)

    def nodes(self) -> list[ClusterNode]:
        return [node for group in self.groups for node in group.nodes()]

    def topology(self) -> ClusterTopology:
        return ClusterTopology(
            [group.topology() for group in self.groups],
            n_shards=self.n_shards,
            vnodes=self.vnodes,
            placement=dict(self.placement),
        )

    def migrate_shard(self, shard_id: int, dst_name: str) -> int | None:
        """Move one shard to ``dst_name`` under live traffic.

        Sequence: ``MIGRATE`` on the source primary (snapshot + delta +
        seal + final delta → handoff sequence), then ``SHARD_DETACH``
        across the source group (primary first — it waits for its own
        links to hold the tail), then ``MIGRATE_COMMIT`` across the
        target group (primary first, so writes resume immediately).
        Between seal and the target's commit, writes to the shard get
        NOT_OWNER; :class:`~repro.cluster.client.ClusterClient` retries
        through the pause.  A coordinator crash mid-sequence loses no
        data: the shard's full history is durable on the sealed source
        until the detach, and on every target from the handoff on.
        """
        src_name = self.placement[shard_id]
        if src_name == dst_name:
            return None
        src = self.group(src_name)
        dst = self.group(dst_name)
        targets = [
            (node.server.host, node.server.port) for node in dst.nodes()
        ]
        src_addr = src.primary.address
        with KVClient(src_addr.host, src_addr.port) as client:
            handoff_seq = client.migrate(shard_id, dst_name, targets)
        for node in src.nodes():
            addr = node.address
            with KVClient(addr.host, addr.port) as client:
                client.shard_detach(shard_id, dst_name)
        for node in dst.nodes():
            addr = node.address
            with KVClient(addr.host, addr.port) as client:
                client.migrate_commit(shard_id, handoff_seq)
        self.placement[shard_id] = dst_name
        return handoff_seq


def build_local_cluster(
    root: str,
    n_groups: int = 1,
    followers_per_group: int = 2,
    n_shards: int = 2,
    fs_for: Callable[[str, int], FileSystem] | None = None,
    engine_config: dict | None = None,
    queue_limit: int = 1024,
    repl_ack_timeout: float = 30.0,
    allow_resync: bool = True,
    log_cap_bytes: int = DEFAULT_LOG_CAP_BYTES,
) -> Cluster:
    """Assemble (not start) a local cluster under ``root``.

    ``n_shards`` sizes the *global* shard space; each group hosts the
    shards the default placement assigns it (all of them for a single
    group).  ``fs_for(node_name, shard_id)`` supplies each shard's
    filesystem — the hook the kill matrix uses to put a
    :class:`FaultFS` under exactly one node.  With the default None,
    nodes use the real filesystem under ``<root>/<node>/``.
    """
    group_names = [f"g{g}" for g in range(n_groups)]
    placement = default_placement(group_names, n_shards)
    groups = []
    for gname in group_names:
        shard_ids = sorted(s for s, g in placement.items() if g == gname)

        def make_node(role: str, node_name: str) -> ClusterNode:
            fs = None
            if fs_for is not None:
                fs = (lambda name: lambda shard_id: fs_for(name, shard_id))(node_name)
            return ClusterNode(
                node_name,
                f"{root}/{node_name}",
                n_shards=n_shards,
                fs=fs,
                role=role,
                engine_config=dict(engine_config or {}),
                queue_limit=queue_limit,
                repl_ack_timeout=repl_ack_timeout,
                shard_ids=shard_ids,
                allow_resync=allow_resync,
                log_cap_bytes=log_cap_bytes,
            )

        primary = make_node("primary", f"{gname}-n0")
        followers = [
            make_node("follower", f"{gname}-n{i + 1}")
            for i in range(followers_per_group)
        ]
        groups.append(ClusterGroup(gname, primary, followers))
    return Cluster(groups, n_shards=n_shards)
