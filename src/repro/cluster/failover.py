"""In-process cluster harness: nodes, groups, explicit failover.

This is the cluster analogue of
:class:`~repro.server.server.ServerThread`: every node is a full
:class:`~repro.server.server.KVServer` (own engines, own event loop
thread, own port) so tests, the kill matrix, and the benchmarks drive
a real multi-node system in one process — and the subprocess CLI
(``python -m repro.cluster``) runs the very same classes one node per
OS process.

Every node carries a :class:`~repro.cluster.replicator.PrimaryReplication`
from birth, even as a follower: its WAL observers buffer committed
frames from the first sequence onward, which is exactly what lets a
*promoted* follower feed the remaining followers without a snapshot
resync.  Promotion is explicit and client-driven:

1. ``PROMOTE`` to the chosen follower — it drains its apply queues
   (sync barrier per shard) and flips to primary, so its state is the
   full watermark it ever confirmed;
2. the surviving followers attach to the new primary, resuming from
   their own dispatched watermarks;
3. routers :meth:`~repro.cluster.client.ClusterClient.repoint` to the
   new primary.

No automatic failure detection lives here — election/lease machinery
is out of scope (ROADMAP); the contract this layer *does* enforce is
that whoever you promote holds every client-acked write.
"""

from __future__ import annotations

from typing import Any, Callable

from ..lsm.fs import FileSystem
from ..server.client import KVClient
from ..server.server import KVServer, ServerThread
from .client import ClusterTopology, GroupTopology, NodeAddress
from .replicator import PrimaryReplication


class ClusterNode:
    """One server (engines + event loop thread) with a replication tap."""

    def __init__(
        self,
        name: str,
        path: str,
        n_shards: int = 2,
        fs: FileSystem | Callable[[int], FileSystem] | None = None,
        role: str = "follower",
        engine_config: dict | None = None,
        queue_limit: int = 1024,
        repl_ack_timeout: float = 30.0,
        host: str = "127.0.0.1",
    ) -> None:
        self.name = name
        self.replication = PrimaryReplication()
        self.server = KVServer(
            path,
            n_shards=n_shards,
            host=host,
            port=0,
            fs=fs,
            queue_limit=queue_limit,
            engine_config=engine_config,
            role=role,
            replication=self.replication,
            repl_ack_timeout=repl_ack_timeout,
        )
        self.thread = ServerThread(self.server)
        self._started = False

    def start(self) -> "ClusterNode":
        self.thread.start()
        self._started = True
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._started:
            self.thread.stop(timeout=timeout)
            self._started = False

    @property
    def role(self) -> str:
        return self.server.role

    @property
    def address(self) -> NodeAddress:
        return NodeAddress(self.name, self.server.host, self.server.port)

    def __repr__(self) -> str:
        return f"ClusterNode({self.name}, role={self.server.role})"


class ClusterGroup:
    """One primary plus its followers, wired for WAL shipping."""

    def __init__(self, name: str, primary: ClusterNode, followers: list[ClusterNode]):
        self.name = name
        self.primary = primary
        self.followers = list(followers)
        #: Demoted/dead ex-primaries, kept so stop() still reaps them.
        self.retired: list[ClusterNode] = []

    def start(self) -> "ClusterGroup":
        # Followers first: the primary's links fetch their watermarks on
        # connect, so the targets must be listening.
        for node in self.followers:
            node.start()
        self.primary.start()
        for node in self.followers:
            addr = node.address
            self.primary.replication.add_follower(addr.host, addr.port)
        return self

    def stop(self, timeout: float = 60.0) -> None:
        # Primary first so its drain can still reach live followers.
        self.primary.stop(timeout=timeout)
        for node in self.followers:
            node.stop(timeout=timeout)
        for node in self.retired:
            node.stop(timeout=timeout)

    def nodes(self) -> list[ClusterNode]:
        return [self.primary, *self.followers]

    def topology(self) -> GroupTopology:
        return GroupTopology(
            self.name,
            self.primary.address,
            [f.address for f in self.followers],
        )

    def promote(self, follower: ClusterNode) -> GroupTopology:
        """Fail over to ``follower`` (the old primary is presumed dead
        and is dropped from the group).  Returns the new topology for
        :meth:`ClusterClient.repoint`."""
        if follower not in self.followers:
            raise ValueError(f"{follower.name} is not a follower of {self.name}")
        addr = follower.address
        with KVClient(addr.host, addr.port) as client:
            client.promote()
        survivors = [f for f in self.followers if f is not follower]
        self.retired.append(self.primary)
        self.primary = follower
        self.followers = survivors
        for node in survivors:
            peer = node.address
            follower.replication.add_follower(peer.host, peer.port)
        return self.topology()


class Cluster:
    """A set of groups plus the derived routing topology."""

    def __init__(self, groups: list[ClusterGroup], n_shards: int, vnodes: int = 64):
        self.groups = list(groups)
        self.n_shards = n_shards
        self.vnodes = vnodes

    def start(self) -> "Cluster":
        for group in self.groups:
            group.start()
        return self

    def stop(self, timeout: float = 60.0) -> None:
        for group in self.groups:
            group.stop(timeout=timeout)

    def group(self, name: str) -> ClusterGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(name)

    def nodes(self) -> list[ClusterNode]:
        return [node for group in self.groups for node in group.nodes()]

    def topology(self) -> ClusterTopology:
        return ClusterTopology(
            [group.topology() for group in self.groups],
            n_shards=self.n_shards,
            vnodes=self.vnodes,
        )


def build_local_cluster(
    root: str,
    n_groups: int = 1,
    followers_per_group: int = 2,
    n_shards: int = 2,
    fs_for: Callable[[str, int], FileSystem] | None = None,
    engine_config: dict | None = None,
    queue_limit: int = 1024,
    repl_ack_timeout: float = 30.0,
) -> Cluster:
    """Assemble (not start) a local cluster under ``root``.

    ``fs_for(node_name, shard_id)`` supplies each shard's filesystem —
    the hook the kill matrix uses to put a :class:`FaultFS` under
    exactly one node.  With the default None, nodes use the real
    filesystem under ``<root>/<node>/``.
    """
    groups = []
    for g in range(n_groups):
        gname = f"g{g}"

        def make_node(role: str, node_name: str) -> ClusterNode:
            fs = None
            if fs_for is not None:
                fs = (lambda name: lambda shard_id: fs_for(name, shard_id))(node_name)
            return ClusterNode(
                node_name,
                f"{root}/{node_name}",
                n_shards=n_shards,
                fs=fs,
                role=role,
                engine_config=dict(engine_config or {}),
                queue_limit=queue_limit,
                repl_ack_timeout=repl_ack_timeout,
            )

        primary = make_node("primary", f"{gname}-n0")
        followers = [
            make_node("follower", f"{gname}-n{i + 1}")
            for i in range(followers_per_group)
        ]
        groups.append(ClusterGroup(gname, primary, followers))
    return Cluster(groups, n_shards=n_shards)
