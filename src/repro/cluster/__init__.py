"""Multi-node cluster layer: routing, WAL-shipping replication, failover.

Import structure note: :mod:`repro.server.server` imports
:mod:`repro.cluster.routing` (the shared ``route_key``), while the
replication/failover modules here import the server package.  Exports
are therefore resolved lazily — importing :mod:`repro.cluster` pulls in
nothing but :mod:`.routing`, and the heavier modules load on first
attribute access, which breaks the cycle.
"""

from __future__ import annotations

from .routing import HashRing, route_key

__all__ = [
    "HashRing",
    "route_key",
    "ClusterClient",
    "ClusterTopology",
    "GroupTopology",
    "NodeAddress",
    "PrimaryReplication",
    "ReplicationError",
    "FollowerBehindError",
    "ReplicationFencedError",
    "LeaseManager",
    "build_snapshot",
    "install_snapshot",
    "default_placement",
    "Cluster",
    "ClusterGroup",
    "ClusterNode",
    "build_local_cluster",
]

_LAZY = {
    "ClusterClient": "client",
    "ClusterTopology": "client",
    "GroupTopology": "client",
    "NodeAddress": "client",
    "PrimaryReplication": "replicator",
    "ReplicationError": "replicator",
    "FollowerBehindError": "replicator",
    "ReplicationFencedError": "replicator",
    "LeaseManager": "membership",
    "build_snapshot": "membership",
    "install_snapshot": "membership",
    "default_placement": "routing",
    "Cluster": "failover",
    "ClusterGroup": "failover",
    "ClusterNode": "failover",
    "build_local_cluster": "failover",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
