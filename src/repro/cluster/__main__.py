"""CLI: ``python -m repro.cluster`` — run one cluster node, or the
3-node kill-failover smoke.

Subcommands:

* ``node`` — one cluster node (a sharded KV server with a replication
  tap).  A primary lists its followers; a follower just listens::

      python -m repro.cluster node --path /tmp/f0 --role follower --port 5001
      python -m repro.cluster node --path /tmp/f1 --role follower --port 5002
      python -m repro.cluster node --path /tmp/p  --role primary \
          --follower 127.0.0.1:5001 --follower 127.0.0.1:5002

* ``smoke`` — the CI scenario: bring up 1 primary + 2 followers as
  real OS processes, drive client writes, ``kill -9`` the primary mid
  replication, promote a follower, and verify every client-acked
  write is still readable and the promoted watermark covers the
  maximum observed ack.  Writes a JSON repro artifact (acked keys,
  watermarks, seed) for upload when the check fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from ..server.client import KVClient, ServerError
from ..server.server import KVServer
from .replicator import PrimaryReplication
from .routing import route_key


async def _node(args: argparse.Namespace) -> int:
    replication = PrimaryReplication()
    server = KVServer(
        args.path,
        n_shards=args.shards,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        role=args.role,
        replication=replication,
        repl_ack_timeout=args.repl_ack_timeout,
    )
    await server.start()
    for spec in args.follower or []:
        host, _, port = spec.rpartition(":")
        replication.add_follower(host, int(port))
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            signal.signal(sig, lambda *_: server.request_shutdown())
    print(
        f"cluster node role={args.role} shards={args.shards} at {args.path} "
        f"on {server.host}:{server.port}",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        await server.shutdown()
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    try:
        code = asyncio.run(_node(args))
    except KeyboardInterrupt:
        code = 0
    print("node drained and closed", flush=True)
    return code


def _spawn_node(path: str, role: str, followers: list[str] | None = None):
    """Launch one node subprocess; returns (process, (host, port))."""
    cmd = [
        sys.executable, "-m", "repro.cluster", "node",
        "--path", path, "--role", role, "--port", "0", "--shards", "2",
    ]
    for spec in followers or []:
        cmd += ["--follower", spec]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if " on " not in line:
        proc.kill()
        raise RuntimeError(f"node failed to start: {line!r}")
    host, _, port = line.rsplit(" on ", 1)[1].strip().rpartition(":")
    # Drain the pipe so the child never blocks on a full stdout buffer.
    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    return proc, (host, int(port))


def _cmd_smoke(args: argparse.Namespace) -> int:
    n_shards = 2
    root = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    artifact = {"root": root, "acked": {}, "phase": "bring-up"}

    def fail(msg: str) -> int:
        artifact["failure"] = msg
        out = os.path.join(args.artifact_dir or root, "cluster-smoke-repro.json")
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True, default=repr)
        print(f"FAIL: {msg} (repro: {out})", file=sys.stderr)
        return 1

    procs = []
    try:
        f0, addr0 = _spawn_node(os.path.join(root, "f0"), "follower")
        f1, addr1 = _spawn_node(os.path.join(root, "f1"), "follower")
        procs += [f0, f1]
        primary, paddr = _spawn_node(
            os.path.join(root, "p"), "primary",
            followers=[f"{addr0[0]}:{addr0[1]}", f"{addr1[0]}:{addr1[1]}"],
        )
        procs.append(primary)
        artifact.update(primary=paddr, followers=[addr0, addr1])

        # Phase 1: client writes; SIGKILL the primary mid-replication.
        artifact["phase"] = "load"
        acked: dict[str, int] = {}
        killer = threading.Timer(
            args.kill_after, lambda: primary.send_signal(signal.SIGKILL)
        )
        killer.start()
        try:
            with KVClient(*paddr, timeout=10.0) as client:
                i = 0
                while True:
                    key = b"smoke-%06d" % i
                    seq = client.put(key, b"v-%06d" % i)
                    acked[key.decode()] = int(seq or 0)
                    i += 1
        except (ConnectionError, OSError, ServerError):
            pass  # the kill landed mid-conversation
        finally:
            killer.cancel()
        primary.wait(timeout=30)
        artifact["acked"] = acked
        if not acked:
            return fail("no write was acked before the kill")

        # Phase 2: promote follower 0; check the durability contract.
        artifact["phase"] = "failover"
        with KVClient(*addr0, timeout=10.0) as client:
            client.promote()
            marks = client.watermark()
            artifact["promoted_watermarks"] = marks
            max_ack = [0] * n_shards
            for key, seq in acked.items():
                shard = route_key(key.encode(), n_shards)
                max_ack[shard] = max(max_ack[shard], seq)
            for shard, (_, applied) in enumerate(marks):
                if applied < max_ack[shard]:
                    return fail(
                        f"promoted shard {shard} applied {applied} "
                        f"< max observed ack {max_ack[shard]}"
                    )
            for key, seq in acked.items():
                value = client.get(key.encode())
                if value != b"v-" + key.split("-")[1].encode():
                    return fail(f"acked key {key} lost after failover: {value!r}")

        # Phase 3: follower-read smoke on the surviving follower —
        # GET_AT gated on each write's acked sequence (read-your-writes).
        artifact["phase"] = "follower-reads"
        with KVClient(*addr1, timeout=10.0) as client:
            sample = list(acked.items())[:: max(1, len(acked) // 200)]
            for key, seq in sample:
                value = client.get_at(key.encode(), seq)
                if value != b"v-" + key.split("-")[1].encode():
                    return fail(f"follower read of acked {key} returned {value!r}")

        print(
            json.dumps(
                {
                    "acked_writes": len(acked),
                    "max_ack_per_shard": max_ack,
                    "promoted_watermarks": marks,
                    "follower_reads_checked": len(sample),
                },
                indent=2,
            )
        )
        print("cluster smoke OK")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
        if not args.keep:
            import shutil

            shutil.rmtree(root, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.cluster")
    sub = parser.add_subparsers(dest="command", required=True)

    node = sub.add_parser("node", help="run one cluster node")
    node.add_argument("--path", required=True)
    node.add_argument("--shards", type=int, default=2)
    node.add_argument("--host", default="127.0.0.1")
    node.add_argument("--port", type=int, default=0)
    node.add_argument("--queue-limit", type=int, default=1024)
    node.add_argument("--role", choices=("primary", "follower"), default="primary")
    node.add_argument("--follower", action="append", default=[],
                      metavar="HOST:PORT",
                      help="follower to replicate to (primaries only; repeatable)")
    node.add_argument("--repl-ack-timeout", type=float, default=30.0)
    node.set_defaults(func=_cmd_node)

    smoke = sub.add_parser(
        "smoke", help="3-node bring-up, kill -9 the primary, verify failover"
    )
    smoke.add_argument("--kill-after", type=float, default=1.0,
                       help="seconds of load before the primary is killed")
    smoke.add_argument("--artifact-dir", default=None,
                       help="where to write the repro JSON on failure")
    smoke.add_argument("--keep", action="store_true",
                       help="keep the data directories")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
