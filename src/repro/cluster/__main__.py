"""CLI: ``python -m repro.cluster`` — run one cluster node, or the
membership smoke (resync + lease-based election) used by CI.

Subcommands:

* ``node`` — one cluster node (a sharded KV server with a replication
  tap).  A primary lists its followers; a follower just listens; with
  ``--elect`` the node also runs a lease manager against its
  ``--peer`` list, so a follower auto-promotes when the primary's
  lease lapses::

      python -m repro.cluster node --path /tmp/f0 --role follower --port 5001
      python -m repro.cluster node --path /tmp/f1 --role follower --port 5002
      python -m repro.cluster node --path /tmp/p  --role primary \
          --follower 127.0.0.1:5001 --follower 127.0.0.1:5002

* ``smoke`` — the CI scenario, now covering the full membership story
  with real OS processes and election enabled end to end:

  1. bring up 1 primary + 2 followers (small replication-log cap);
  2. ``kill -9`` one follower, keep writing until the primary's log
     floor passes the dead follower's watermark (its history is gone
     from the log — only a snapshot can bring it back);
  3. restart the follower on the same directory and verify the link
     auto-resyncs (STATS shows a resync, the watermark catches up);
  4. ``kill -9`` the primary mid-load and wait for the lease-based
     election to promote a survivor — no operator PROMOTE;
  5. verify every client-acked write is readable on the new primary
     and the promoted watermark covers the maximum observed ack.

  Writes a JSON repro artifact (acked keys, watermarks, stats) for
  upload when the check fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

from ..server.client import KVClient, ServerError
from ..server.server import KVServer
from .membership import LeaseManager
from .replicator import DEFAULT_LOG_CAP_BYTES, PrimaryReplication
from .routing import route_key


async def _node(args: argparse.Namespace) -> int:
    replication = PrimaryReplication(
        allow_resync=not args.no_resync, log_cap_bytes=args.repl_log_cap
    )
    server = KVServer(
        args.path,
        n_shards=args.shards,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        role=args.role,
        replication=replication,
        repl_ack_timeout=args.repl_ack_timeout,
    )
    await server.start()
    for spec in args.follower or []:
        host, _, port = spec.rpartition(":")
        replication.add_follower(host, int(port))
    lease = None
    if args.elect:
        peers = []
        for spec in args.peer or []:
            host, _, port = spec.rpartition(":")
            peers.append((spec, host, int(port)))
        lease = LeaseManager(
            args.name or f"{server.host}:{server.port}",
            server,
            replication,
            peers,
            lease_interval=args.lease_interval,
            lease_ttl=args.lease_ttl,
        )
        lease.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            signal.signal(sig, lambda *_: server.request_shutdown())
    print(
        f"cluster node role={args.role} shards={args.shards} at {args.path} "
        f"on {server.host}:{server.port}",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        if lease is not None:
            lease.stop()
        await server.shutdown()
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    try:
        code = asyncio.run(_node(args))
    except KeyboardInterrupt:
        code = 0
    print("node drained and closed", flush=True)
    return code


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_node(
    path: str,
    role: str,
    port: int = 0,
    followers: list[str] | None = None,
    peers: list[str] | None = None,
    log_cap: int | None = None,
    lease_ttl: float | None = None,
):
    """Launch one node subprocess; returns (process, (host, port))."""
    cmd = [
        sys.executable, "-m", "repro.cluster", "node",
        "--path", path, "--role", role, "--port", str(port), "--shards", "2",
    ]
    for spec in followers or []:
        cmd += ["--follower", spec]
    if peers:
        cmd += ["--elect"]
        for spec in peers:
            cmd += ["--peer", spec]
        if lease_ttl is not None:
            cmd += ["--lease-ttl", str(lease_ttl)]
    if log_cap is not None:
        cmd += ["--repl-log-cap", str(log_cap)]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if " on " not in line:
        proc.kill()
        raise RuntimeError(f"node failed to start: {line!r}")
    host, _, got = line.rsplit(" on ", 1)[1].strip().rpartition(":")
    # Drain the pipe so the child never blocks on a full stdout buffer.
    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    return proc, (host, int(got))


def _link_stats(stats: dict, port: int) -> dict | None:
    for link in stats["cluster"]["replication"]["links"]:
        if link["port"] == port:
            return link
    return None


def _cmd_smoke(args: argparse.Namespace) -> int:
    n_shards = 2
    root = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    artifact: dict = {"root": root, "acked": {}, "phase": "bring-up"}

    def fail(msg: str) -> int:
        artifact["failure"] = msg
        out = os.path.join(args.artifact_dir or root, "cluster-smoke-repro.json")
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True, default=repr)
        print(f"FAIL: {msg} (repro: {out})", file=sys.stderr)
        return 1

    procs = []
    try:
        host = "127.0.0.1"
        # Elections need every node to know its peers up front, so the
        # ports are picked before anything binds (free_port races are
        # tolerable in CI; a collision fails bring-up loudly).
        pport, fport0, fport1 = _free_port(), _free_port(), _free_port()
        addrs = {
            "p": f"{host}:{pport}",
            "f0": f"{host}:{fport0}",
            "f1": f"{host}:{fport1}",
        }
        log_cap = args.log_cap
        ttl = args.lease_ttl
        f0, addr0 = _spawn_node(
            os.path.join(root, "f0"), "follower", port=fport0,
            peers=[addrs["p"], addrs["f1"]], log_cap=log_cap, lease_ttl=ttl,
        )
        f1, addr1 = _spawn_node(
            os.path.join(root, "f1"), "follower", port=fport1,
            peers=[addrs["p"], addrs["f0"]], log_cap=log_cap, lease_ttl=ttl,
        )
        procs += [f0, f1]
        primary, paddr = _spawn_node(
            os.path.join(root, "p"), "primary", port=pport,
            followers=[addrs["f0"], addrs["f1"]],
            peers=[addrs["f0"], addrs["f1"]], log_cap=log_cap, lease_ttl=ttl,
        )
        procs.append(primary)
        artifact.update(primary=paddr, followers=[addr0, addr1])

        acked: dict[str, int] = {}
        value_of = lambda key: b"v-" + key.split("-")[1].encode()

        def put_batch(client: KVClient, n: int, start: int) -> int:
            for i in range(start, start + n):
                key = b"smoke-%06d" % i
                # A write in flight when a voting follower dies fails
                # loudly by design; a real client retries and the next
                # attempt proceeds without the dead vote.
                for attempt in range(5):
                    try:
                        seq = client.put(key, b"v-%06d" % i)
                        break
                    except ServerError:
                        if attempt == 4:
                            raise
                        time.sleep(0.2)
                acked[key.decode()] = int(seq or 0)
            return start + n

        with KVClient(*paddr, timeout=15.0) as client:
            # Phase 1: seed load, then SIGKILL follower f1.
            artifact["phase"] = "load"
            i = put_batch(client, 300, 0)
            stats = client.stats()
            link = _link_stats(stats, fport1)
            if link is None:
                return fail("primary has no link to f1")
            dead_mark = max(link["durable"].values() or [0])
            f1.send_signal(signal.SIGKILL)
            f1.wait(timeout=30)

            # Phase 2: write until the log floor passes the dead
            # follower's watermark — its tail is gone from the log, so
            # only a snapshot resync can bring it back.
            artifact["phase"] = "outrun-log"
            deadline = time.monotonic() + 60
            while True:
                i = put_batch(client, 500, i)
                stats = client.stats()
                shards = stats["cluster"]["replication"]["shards"]
                floors = {int(s): v["floor"] for s, v in shards.items()}
                if all(f > dead_mark for f in floors.values()):
                    break
                if time.monotonic() > deadline:
                    artifact["stats"] = stats
                    return fail(
                        f"log floor never passed dead watermark {dead_mark} "
                        f"(floors={floors}, cap={log_cap})"
                    )
            artifact["dead_mark"] = dead_mark
            artifact["floors"] = floors

            # Phase 3: restart f1 on the same directory; the primary's
            # link must detect it below the floor and snapshot-resync it.
            artifact["phase"] = "resync"
            f1, addr1 = _spawn_node(
                os.path.join(root, "f1"), "follower", port=fport1,
                peers=[addrs["p"], addrs["f0"]], log_cap=log_cap, lease_ttl=ttl,
            )
            procs.append(f1)
            deadline = time.monotonic() + 60
            while True:
                i = put_batch(client, 50, i)
                link = _link_stats(client.stats(), fport1)
                if (
                    link is not None
                    and link["state"] == "streaming"
                    and link["resyncs"] >= 1
                ):
                    break
                if time.monotonic() > deadline:
                    artifact["link"] = link
                    return fail(f"f1 never resynced: link={link}")
            client.sync()
            artifact["resync_link"] = dict(link)

        # Resynced follower must serve read-your-writes at acked seqs.
        with KVClient(*addr1, timeout=15.0) as client:
            sample = list(acked.items())[:: max(1, len(acked) // 100)]
            deadline = time.monotonic() + 30
            for key, seq in sample:
                while True:
                    try:
                        value = client.get_at(key.encode(), seq)
                        break
                    except ServerError:
                        if time.monotonic() > deadline:
                            return fail(f"resynced f1 never caught up to {seq}")
                        time.sleep(0.1)
                if value != value_of(key):
                    return fail(f"resynced read of {key} returned {value!r}")

        # Phase 4: SIGKILL the primary mid-load; the lease election
        # must promote a survivor with no operator intervention.
        artifact["phase"] = "election"
        killer = threading.Timer(
            args.kill_after, lambda: primary.send_signal(signal.SIGKILL)
        )
        killer.start()
        try:
            with KVClient(*paddr, timeout=15.0) as client:
                while True:
                    key = b"smoke-%06d" % i
                    seq = client.put(key, b"v-%06d" % i)
                    acked[key.decode()] = int(seq or 0)
                    i += 1
        except (ConnectionError, OSError, ServerError):
            pass  # the kill landed mid-conversation
        finally:
            killer.cancel()
        primary.wait(timeout=30)
        artifact["acked_writes"] = len(acked)

        new_primary = None
        deadline = time.monotonic() + 8 * ttl + 30
        while new_primary is None:
            for name, addr in (("f0", addr0), ("f1", addr1)):
                try:
                    with KVClient(*addr, timeout=5.0) as client:
                        reply = client.watermark()
                    if reply.is_primary:
                        new_primary = (name, addr, reply)
                        break
                except (ConnectionError, OSError, ServerError):
                    continue
            if time.monotonic() > deadline:
                return fail("no survivor auto-promoted within the deadline")
            time.sleep(0.2)
        name, addr, reply = new_primary
        artifact["new_primary"] = {"node": name, "term": reply.term}

        # Phase 5: durability contract on the elected primary.
        artifact["phase"] = "verify"
        max_ack = [0] * n_shards
        for key, seq in acked.items():
            shard = route_key(key.encode(), n_shards)
            max_ack[shard] = max(max_ack[shard], seq)
        with KVClient(*addr, timeout=15.0) as client:
            marks = client.watermark().marks
            artifact["promoted_watermarks"] = {
                s: list(m) for s, m in marks.items()
            }
            for shard in range(n_shards):
                applied = marks.get(shard, (0, 0))[1]
                if applied < max_ack[shard]:
                    return fail(
                        f"promoted shard {shard} applied {applied} "
                        f"< max observed ack {max_ack[shard]}"
                    )
            sample = list(acked.items())[:: max(1, len(acked) // 300)]
            for key, _ in sample:
                value = client.get(key.encode())
                if value != value_of(key):
                    return fail(f"acked key {key} lost after election: {value!r}")

        print(
            json.dumps(
                {
                    "acked_writes": len(acked),
                    "max_ack_per_shard": max_ack,
                    "resyncs": artifact["resync_link"]["resyncs"],
                    "elected": name,
                    "elected_term": reply.term,
                    "verified_reads": len(sample),
                },
                indent=2,
            )
        )
        print("cluster membership smoke OK")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
        if not args.keep:
            import shutil

            shutil.rmtree(root, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.cluster")
    sub = parser.add_subparsers(dest="command", required=True)

    node = sub.add_parser("node", help="run one cluster node")
    node.add_argument("--path", required=True)
    node.add_argument("--shards", type=int, default=2)
    node.add_argument("--host", default="127.0.0.1")
    node.add_argument("--port", type=int, default=0)
    node.add_argument("--queue-limit", type=int, default=1024)
    node.add_argument("--role", choices=("primary", "follower"), default="primary")
    node.add_argument("--follower", action="append", default=[],
                      metavar="HOST:PORT",
                      help="follower to replicate to (primaries only; repeatable)")
    node.add_argument("--repl-ack-timeout", type=float, default=30.0)
    node.add_argument("--repl-log-cap", type=int, default=DEFAULT_LOG_CAP_BYTES,
                      help="replication log cap in bytes (smaller caps force "
                           "snapshot resync sooner after a follower outage)")
    node.add_argument("--no-resync", action="store_true",
                      help="refuse snapshot resync; a behind follower "
                           "surfaces FollowerBehindError instead")
    node.add_argument("--elect", action="store_true",
                      help="run the lease manager (auto-promotion)")
    node.add_argument("--peer", action="append", default=[],
                      metavar="HOST:PORT",
                      help="election peer (repeatable; used with --elect)")
    node.add_argument("--name", default=None,
                      help="node name for elections (default host:port)")
    node.add_argument("--lease-interval", type=float, default=0.3)
    node.add_argument("--lease-ttl", type=float, default=3.0)
    node.set_defaults(func=_cmd_node)

    smoke = sub.add_parser(
        "smoke",
        help="membership smoke: follower resync-from-snapshot after "
             "falling below the log floor, then lease-based election "
             "after kill -9 of the primary",
    )
    smoke.add_argument("--kill-after", type=float, default=1.0,
                       help="seconds of load before the primary is killed")
    smoke.add_argument("--log-cap", type=int, default=64 * 1024,
                       help="replication log cap (small: forces resync)")
    smoke.add_argument("--lease-ttl", type=float, default=3.0)
    smoke.add_argument("--artifact-dir", default=None,
                       help="where to write the repro JSON on failure")
    smoke.add_argument("--keep", action="store_true",
                       help="keep the data directories")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
