"""A miniature H-Store: partitioned serial execution engine (Section 5.4).

H-Store executes pre-defined stored procedures serially per partition —
no locking, no buffer pool.  This engine reproduces the properties the
thesis measures: per-transaction latency (so hybrid-index merge pauses
show up in MAX latency, Table 5.1), tuple-vs-index memory breakdowns
(Table 1.1), and anti-caching behaviour when the database outgrows
memory (Figures 5.14-5.16).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from .anticache import AntiCacheManager, EvictedTupleAccess
from .storage import IndexFactory, Table


class Partition:
    """One single-threaded execution site with its table shards."""

    def __init__(
        self,
        primary_factory: IndexFactory,
        secondary_factory: IndexFactory | None,
    ) -> None:
        self.tables: dict[str, Table] = {}
        self._primary_factory = primary_factory
        self._secondary_factory = secondary_factory
        self.anticache: AntiCacheManager | None = None

    def create_table(self, name: str, key_widths=None) -> Table:
        table = Table(
            name, self._primary_factory, self._secondary_factory, key_widths=key_widths
        )
        self.tables[name] = table
        return table

    # -- tuple access with anti-caching hooks -------------------------------------

    def get_row(self, table_name: str, key) -> tuple | None:
        table = self.tables[table_name]
        rowid = table.primary.get(table._pk(key))
        if rowid is None:
            return None
        return self._load(table, rowid)

    def _load(self, table: Table, rowid: int) -> tuple | None:
        ac = self.anticache
        if ac is not None and ac.is_evicted(table.name, rowid):
            raise EvictedTupleAccess(table.name, rowid)
        row = table.rows.get(rowid)
        if row is not None and ac is not None:
            from .storage import tuple_bytes

            ac.touch(table.name, rowid, tuple_bytes(row))
        return row

    def memory_report(self) -> dict[str, int]:
        report = {"tuples": 0, "primary": 0, "secondary": 0}
        for table in self.tables.values():
            sub = table.memory_report()
            for k in report:
                report[k] += sub[k]
        if self.anticache is not None:
            report["tuples"] -= self.anticache.evicted_bytes
        return report


class HStore:
    """Partitioned in-memory OLTP engine running stored procedures."""

    def __init__(
        self,
        n_partitions: int = 4,
        primary_factory: IndexFactory = None,
        secondary_factory: IndexFactory | None = None,
        anticache_threshold_bytes: int | None = None,
        anticache_block_bytes: int = 1 << 14,
    ) -> None:
        from ..trees import BPlusTree

        primary_factory = primary_factory or BPlusTree
        self.partitions = [
            Partition(primary_factory, secondary_factory)
            for _ in range(n_partitions)
        ]
        self.anticache_threshold = anticache_threshold_bytes
        if anticache_threshold_bytes is not None:
            for part in self.partitions:
                part.anticache = AntiCacheManager(anticache_block_bytes)
        self.procedures: dict[str, Callable] = {}
        self.txn_count = 0
        self.restart_count = 0
        self.latencies: list[float] = []
        # Index memory is recomputed every few transactions (walking
        # every index per txn would dominate the runtime).
        self._index_mem_cache: dict[int, int] = {}
        self._memcheck_interval = 32

    # -- schema -------------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        secondary_indexes: dict[str, tuple[int, ...]] | None = None,
        key_widths=None,
    ) -> None:
        for part in self.partitions:
            table = part.create_table(name, key_widths=key_widths)
            for index_name, columns in (secondary_indexes or {}).items():
                table.add_secondary_index(index_name, columns)

    def register_procedure(self, name: str, fn: Callable) -> None:
        """``fn(partition, *args)`` runs serially on one partition."""
        self.procedures[name] = fn

    def partition_for(self, routing_key: int) -> Partition:
        return self.partitions[routing_key % len(self.partitions)]

    # -- execution -----------------------------------------------------------------------

    def execute(self, proc_name: str, routing_key: int, *args) -> Any:
        """Run one transaction; restarts on evicted-tuple aborts."""
        part = self.partition_for(routing_key)
        fn = self.procedures[proc_name]
        started = time.perf_counter()
        while True:
            try:
                result = fn(part, *args)
                break
            except EvictedTupleAccess as exc:
                part.anticache.record_abort()
                self.restart_count += 1
                # Fetch the tuple back into memory, then restart.
                table = part.tables[exc.table]
                row = part.anticache.fetch(exc.table, exc.rowid)
                table.rows[exc.rowid] = row
        self.latencies.append(time.perf_counter() - started)
        self.txn_count += 1
        self._maybe_evict(part)
        return result

    def _maybe_evict(self, part: Partition) -> None:
        if part.anticache is None:
            return

        def victim_source(table_name: str, rowid: int):
            table = part.tables[table_name]
            row = table.rows.get(rowid)
            if row is not None:
                # The row stays indexed; its payload moves to disk.
                del table.rows[rowid]
            return row

        def cold_rows():
            from .storage import tuple_bytes

            for table in part.tables.values():
                for rowid, row in list(table.rows.items()):
                    yield table.name, rowid, tuple_bytes(row)

        # H-Store's eviction manager triggers on the *total* memory the
        # DBMS uses — indexes included.  Only tuples can be evicted, so
        # smaller indexes leave more room for hot tuples (the
        # Figure 5.14-5.16 effect).
        part_id = id(part)
        if self.txn_count % self._memcheck_interval == 0 or part_id not in self._index_mem_cache:
            report = part.memory_report()
            self._index_mem_cache[part_id] = report["primary"] + report["secondary"]
        index_mem = self._index_mem_cache[part_id]
        while part.memory_report()["tuples"] + index_mem > self.anticache_threshold:
            if part.anticache.evict_block(victim_source, fallback=cold_rows()) == 0:
                break

    # -- statistics -----------------------------------------------------------------------

    def memory_report(self) -> dict[str, int]:
        report = {"tuples": 0, "primary": 0, "secondary": 0}
        for part in self.partitions:
            sub = part.memory_report()
            for k in report:
                report[k] += sub[k]
        report["total"] = sum(report.values())
        return report

    def latency_percentiles(self) -> dict[str, float]:
        if not self.latencies:
            return {"p50": 0.0, "p99": 0.0, "max": 0.0}
        ordered = sorted(self.latencies)
        n = len(ordered)
        return {
            "p50": ordered[n // 2],
            "p99": ordered[min(n - 1, int(n * 0.99))],
            "max": ordered[-1],
        }
