"""The three OLTP benchmarks of the H-Store evaluation (Section 5.4.2).

* **TPC-C** — warehouse-centric order processing; ~88 % of transactions
  modify the database.  We implement the NewOrder / Payment /
  OrderStatus mix with the standard schema and index set.
* **Voter** — short phone-vote transactions updating a small number of
  records, stressing insert throughput.
* **Articles** — a news site (articles, comments, users) with reads via
  both primary and secondary indexes.

Each benchmark returns a driver that loads the scaled-down database and
generates transactions deterministically.
"""

from __future__ import annotations

import numpy as np

from .engine import HStore


# ---------------------------------------------------------------- TPC-C --


def _new_order(part, w_id, d_id, c_id, item_ids, order_id):
    district = part.get_row("DISTRICT", (w_id, d_id))
    part.tables["DISTRICT"].update((w_id, d_id), district[:2] + (district[2] + 1,))
    part.tables["ORDERS"].insert((w_id, d_id, order_id), (w_id, d_id, order_id, c_id, len(item_ids)))
    part.tables["NEW_ORDER"].insert((w_id, d_id, order_id), (w_id, d_id, order_id))
    total = 0.0
    for line, item_id in enumerate(item_ids):
        item = part.get_row("ITEM", item_id)
        stock = part.get_row("STOCK", (w_id, item_id))
        qty = stock[2] - 1 if stock[2] > 10 else stock[2] + 91
        part.tables["STOCK"].update((w_id, item_id), (w_id, item_id, qty))
        total += item[2]
        part.tables["ORDER_LINE"].insert(
            (w_id, d_id, order_id, line), (w_id, d_id, order_id, line, item_id, 1, item[2])
        )
    return total


def _payment(part, w_id, d_id, c_id, amount, history_id):
    warehouse = part.get_row("WAREHOUSE", w_id)
    part.tables["WAREHOUSE"].update(w_id, (w_id, warehouse[1] + amount))
    customer = part.get_row("CUSTOMER", (w_id, d_id, c_id))
    part.tables["CUSTOMER"].update(
        (w_id, d_id, c_id), customer[:3] + (customer[3] + amount,) + customer[4:]
    )
    part.tables["HISTORY"].insert(history_id, (history_id, w_id, d_id, c_id, amount))


def _order_status(part, w_id, d_id, c_id):
    customer = part.get_row("CUSTOMER", (w_id, d_id, c_id))
    orders = part.tables["ORDERS"].lookup_secondary("by_customer", (w_id, d_id, c_id))
    return customer, len(orders)


class TpccDriver:
    """Scaled-down TPC-C generator (Section 5.4.2)."""

    def __init__(
        self,
        store: HStore,
        n_warehouses: int = 2,
        n_items: int = 200,
        customers_per_district: int = 30,
        districts: int = 4,
        seed: int = 7,
    ) -> None:
        self.store = store
        self.n_warehouses = n_warehouses
        self.n_items = n_items
        self.districts = districts
        self.customers = customers_per_district
        self.rng = np.random.default_rng(seed)
        self._order_seq = 1000
        self._history_seq = 0

    def load(self) -> None:
        s = self.store
        # Composite integer keys pack into 8 bytes (H-Store style).
        s.create_table("WAREHOUSE", key_widths=(8,))
        s.create_table("DISTRICT", key_widths=(4, 4))
        s.create_table("CUSTOMER", secondary_indexes={"by_name": (4,)}, key_widths=(3, 2, 3))
        s.create_table("ITEM", key_widths=(8,))
        s.create_table("STOCK", key_widths=(4, 4))
        s.create_table("ORDERS", secondary_indexes={"by_customer": (0, 1, 3)}, key_widths=(2, 2, 4))
        s.create_table("NEW_ORDER", key_widths=(2, 2, 4))
        s.create_table("ORDER_LINE", key_widths=(2, 1, 4, 1))
        s.create_table("HISTORY", key_widths=(8,))
        s.register_procedure("new_order", _new_order)
        s.register_procedure("payment", _payment)
        s.register_procedure("order_status", _order_status)
        names = ["BARBARBAR", "OUGHTPRES", "ABLEABLE", "PRIPRICAL", "ESEESEESE"]
        for w in range(self.n_warehouses):
            part = self.store.partition_for(w)
            part.tables["WAREHOUSE"].insert(w, (w, 0.0))
            for d in range(self.districts):
                part.tables["DISTRICT"].insert((w, d), (w, d, self._order_seq))
                for c in range(self.customers):
                    part.tables["CUSTOMER"].insert(
                        (w, d, c),
                        (w, d, c, 0.0, names[c % len(names)], f"data-{w}-{d}-{c}" * 3),
                    )
            for i in range(self.n_items):
                part.tables["ITEM"].insert(i, (i, f"item-{i}", float(i % 100) + 1.0))
                part.tables["STOCK"].insert((w, i), (w, i, 100))

    def run_one(self) -> None:
        rng = self.rng
        w = int(rng.integers(self.n_warehouses))
        d = int(rng.integers(self.districts))
        c = int(rng.integers(self.customers))
        dice = rng.random()
        if dice < 0.45:
            items = list(rng.integers(0, self.n_items, size=int(rng.integers(5, 11))))
            self._order_seq += 1
            self.store.execute("new_order", w, w, d, c, [int(i) for i in items], self._order_seq)
        elif dice < 0.88:
            self._history_seq += 1
            amount = float(rng.integers(1, 5000)) / 100.0
            self.store.execute("payment", w, w, d, c, amount, self._history_seq)
        else:
            self.store.execute("order_status", w, w, d, c)


# ---------------------------------------------------------------- Voter --


def _vote(part, vote_id, phone, contestant, max_votes):
    votes_by_phone = part.tables["VOTES"].lookup_secondary("by_phone", phone)
    if len(votes_by_phone) >= max_votes:
        return False
    if part.get_row("CONTESTANTS", contestant) is None:
        return False
    part.tables["VOTES"].insert(vote_id, (vote_id, phone, contestant))
    row = part.get_row("CONTESTANTS", contestant)
    part.tables["CONTESTANTS"].update(contestant, (row[0], row[1], row[2] + 1))
    return True


class VoterDriver:
    """Phone-vote benchmark: tiny, insert-heavy transactions."""

    def __init__(self, store: HStore, n_contestants: int = 6, max_votes: int = 10, seed: int = 8):
        self.store = store
        self.n_contestants = n_contestants
        self.max_votes = max_votes
        self.rng = np.random.default_rng(seed)
        self._vote_seq = 0

    def load(self) -> None:
        self.store.create_table("CONTESTANTS")
        self.store.create_table("VOTES", secondary_indexes={"by_phone": (1,)})
        self.store.register_procedure("vote", _vote)
        for c in range(self.n_contestants):
            part = self.store.partition_for(c)
            part.tables["CONTESTANTS"].insert(c, (c, f"contestant-{c}", 0))
        # Contestants must exist on every partition (replicated table).
        for part in self.store.partitions:
            for c in range(self.n_contestants):
                part.tables["CONTESTANTS"].insert(c, (c, f"contestant-{c}", 0))

    def run_one(self) -> None:
        rng = self.rng
        phone = int(rng.integers(10**9, 10**10))
        contestant = int(rng.integers(self.n_contestants))
        self._vote_seq += 1
        self.store.execute("vote", phone, self._vote_seq, phone, contestant, self.max_votes)


# -------------------------------------------------------------- Articles --


def _add_comment(part, comment_id, article_id, user_id, text):
    if part.get_row("ARTICLES", article_id) is None:
        return False
    part.tables["COMMENTS"].insert(comment_id, (comment_id, article_id, user_id, text))
    return True


def _get_article(part, article_id):
    article = part.get_row("ARTICLES", article_id)
    comments = part.tables["COMMENTS"].lookup_secondary("by_article", article_id)
    return article, len(comments)


def _add_article(part, article_id, user_id, title, link):
    part.tables["ARTICLES"].insert(article_id, (article_id, user_id, title, link))
    return True


class ArticlesDriver:
    """Reddit-like workload: read-mostly with secondary-index reads."""

    def __init__(self, store: HStore, n_users: int = 200, n_seed_articles: int = 100, seed: int = 9):
        self.store = store
        self.n_users = n_users
        self.rng = np.random.default_rng(seed)
        self._article_seq = n_seed_articles
        self._comment_seq = 0

    def load(self) -> None:
        self.store.create_table("USERS")
        self.store.create_table("ARTICLES")
        self.store.create_table("COMMENTS", secondary_indexes={"by_article": (1,)})
        self.store.register_procedure("add_comment", _add_comment)
        self.store.register_procedure("get_article", _get_article)
        self.store.register_procedure("add_article", _add_article)
        for u in range(self.n_users):
            part = self.store.partition_for(u)
            part.tables["USERS"].insert(u, (u, f"user-{u}"))
        for a in range(self._article_seq):
            part = self.store.partition_for(a)
            part.tables["ARTICLES"].insert(a, (a, a % self.n_users, f"title {a}", f"http://x/{a}"))

    def run_one(self) -> None:
        rng = self.rng
        dice = rng.random()
        if dice < 0.7:
            article = int(rng.integers(self._article_seq))
            self.store.execute("get_article", article, article)
        elif dice < 0.95:
            self._comment_seq += 1
            article = int(rng.integers(self._article_seq))
            user = int(rng.integers(self.n_users))
            self.store.execute(
                "add_comment", article, self._comment_seq, article, user, "lorem ipsum " * 4
            )
        else:
            article_id = self._article_seq
            self._article_seq += 1
            user = int(rng.integers(self.n_users))
            self.store.execute(
                "add_article", article_id, article_id, user, f"title {article_id}", "http://y"
            )


DRIVERS = {"tpcc": TpccDriver, "voter": VoterDriver, "articles": ArticlesDriver}
