"""Miniature H-Store OLTP engine with anti-caching (Chapter 5 substrate)."""

from .anticache import AntiCacheManager, EvictedTupleAccess
from .engine import HStore, Partition
from .procedures import ArticlesDriver, DRIVERS, TpccDriver, VoterDriver
from .storage import Table, encode_key, tuple_bytes

__all__ = [
    "HStore",
    "Partition",
    "Table",
    "encode_key",
    "tuple_bytes",
    "AntiCacheManager",
    "EvictedTupleAccess",
    "TpccDriver",
    "VoterDriver",
    "ArticlesDriver",
    "DRIVERS",
]
