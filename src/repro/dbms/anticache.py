"""Anti-caching: larger-than-memory execution (Section 5.4.1).

When a partition's tuple memory exceeds the eviction threshold, the
anti-cache manager constructs blocks of the coldest tuples and writes
them out to disk, leaving in-memory tombstones.  A transaction touching
an evicted tuple aborts, the tuple is fetched asynchronously, and the
transaction restarts (we charge the abort + fetch, then retry
synchronously).  Indexes always stay in memory — which is exactly why
hybrid indexes extend how long the DBMS sustains throughput
(Figures 5.14-5.16).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any


class EvictedTupleAccess(Exception):
    """Raised when a transaction touches an evicted tuple."""

    def __init__(self, table: str, rowid: int) -> None:
        super().__init__(f"evicted tuple {table}:{rowid}")
        self.table = table
        self.rowid = rowid


class AntiCacheManager:
    """Tracks tuple heat, evicts cold blocks, services un-evictions."""

    def __init__(self, eviction_block_bytes: int = 1 << 16) -> None:
        self.eviction_block_bytes = eviction_block_bytes
        #: LRU order of (table, rowid); most recently used at the end.
        self._heat: OrderedDict[tuple[str, int], int] = OrderedDict()
        #: Evicted tuples on "disk": (table, rowid) -> (row, size).
        self._disk: dict[tuple[str, int], tuple[Any, int]] = {}
        self.evicted_bytes = 0
        self.evictions = 0
        self.fetches = 0
        self.aborts = 0

    def touch(self, table: str, rowid: int, size: int) -> None:
        key = (table, rowid)
        self._heat[key] = size
        self._heat.move_to_end(key)

    def forget(self, table: str, rowid: int) -> None:
        self._heat.pop((table, rowid), None)

    def is_evicted(self, table: str, rowid: int) -> bool:
        return (table, rowid) in self._disk

    def evict_block(self, victims_source, fallback=None) -> int:
        """Evict the coldest tuples totalling one block.

        ``victims_source(table, rowid)`` returns and removes the live
        row (or None if it vanished).  ``fallback`` optionally yields
        ``(table, rowid, size)`` for never-accessed rows once the heat
        LRU is drained (fresh inserts are eviction candidates too).
        Returns bytes evicted.
        """
        evicted = 0
        while evicted < self.eviction_block_bytes and self._heat:
            (table, rowid), size = next(iter(self._heat.items()))
            del self._heat[(table, rowid)]
            row = victims_source(table, rowid)
            if row is None:
                continue
            self._disk[(table, rowid)] = (row, size)
            self.evicted_bytes += size
            evicted += size
        if fallback is not None:
            for table, rowid, size in fallback:
                if evicted >= self.eviction_block_bytes:
                    break
                if (table, rowid) in self._disk:
                    continue
                row = victims_source(table, rowid)
                if row is None:
                    continue
                self._disk[(table, rowid)] = (row, size)
                self.evicted_bytes += size
                evicted += size
        self.evictions += 1
        return evicted

    def fetch(self, table: str, rowid: int) -> Any:
        """Un-evict a tuple (counts the disk fetch)."""
        row, size = self._disk.pop((table, rowid))
        self.evicted_bytes -= size
        self.fetches += 1
        self.touch(table, rowid, size)
        return row

    def record_abort(self) -> None:
        self.aborts += 1
