"""In-memory row storage with pluggable index structures (Ch. 5 substrate).

A :class:`Table` stores tuples in row slots and maintains one primary
index plus any number of secondary indexes, each built by a pluggable
factory — this is the knob the H-Store evaluation turns (default
B+tree vs Hybrid vs Hybrid-Compressed B+tree, Figures 5.11-5.16).

Index keys are order-preserving byte encodings of column values
(:func:`encode_key`), so every index structure in the library can serve.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..trees import BPlusTree, OrderedIndex
from ..workloads.keys import encode_u64


def encode_value(value: Any) -> bytes:
    """Order-preserving byte encoding of one column value."""
    if isinstance(value, bool):
        return b"\x01" if value else b"\x00"
    if isinstance(value, int):
        return encode_u64(value)
    if isinstance(value, str):
        return value.encode("utf-8") + b"\x00"
    if isinstance(value, bytes):
        return value + b"\x00"
    raise TypeError(f"unsupported key column type {type(value).__name__}")


def encode_key(values: Sequence[Any] | Any) -> bytes:
    """Composite index key from one value or a tuple of values."""
    if isinstance(values, (tuple, list)):
        return b"".join(encode_value(v) for v in values)
    return encode_value(values)


def encode_packed(values: Sequence[int], widths: Sequence[int]) -> bytes:
    """Pack small composite integer keys into fixed byte widths.

    H-Store packs composite integer keys (e.g. TPC-C's warehouse /
    district / order ids) into a single 64-bit value; this is the
    order-preserving equivalent for arbitrary widths.
    """
    if len(values) != len(widths):
        raise ValueError("values and widths must have equal length")
    return b"".join(int(v).to_bytes(w, "big") for v, w in zip(values, widths))


def tuple_bytes(row: Sequence[Any]) -> int:
    """Modeled storage size of a tuple (8 B per numeric, len+1 per str)."""
    total = 8  # row header
    for v in row:
        if isinstance(v, (int, float, bool)):
            total += 8
        elif isinstance(v, str):
            total += len(v) + 1
        elif isinstance(v, bytes):
            total += len(v) + 1
        elif v is None:
            total += 1
        else:
            raise TypeError(f"unsupported column type {type(v).__name__}")
    return total


IndexFactory = Callable[[], OrderedIndex]


class Table:
    """One partitioned table: row slots + primary + secondary indexes."""

    def __init__(
        self,
        name: str,
        primary_factory: IndexFactory = BPlusTree,
        secondary_factory: IndexFactory | None = None,
        key_widths: Sequence[int] | None = None,
    ) -> None:
        self.name = name
        self.key_widths = tuple(key_widths) if key_widths else None
        self.rows: dict[int, tuple] = {}
        self._next_rowid = 0
        self.primary: OrderedIndex = primary_factory()
        self._secondary_factory = secondary_factory or primary_factory
        self.secondaries: dict[str, tuple[OrderedIndex, tuple[int, ...]]] = {}
        self.tuple_memory = 0

    def add_secondary_index(self, index_name: str, columns: tuple[int, ...]) -> None:
        """Secondary index over the given column positions."""
        index = self._make_secondary()
        for rowid, row in self.rows.items():
            self._secondary_insert(index, self._secondary_key(row, columns), rowid)
        self.secondaries[index_name] = (index, columns)

    def _make_secondary(self) -> OrderedIndex:
        factory = self._secondary_factory
        try:
            return factory(secondary=True)  # hybrid indexes take the flag
        except TypeError:
            return factory()

    @staticmethod
    def _secondary_key(row: tuple, columns: tuple[int, ...]) -> bytes:
        return encode_key([row[c] for c in columns])

    @staticmethod
    def _secondary_insert(index: OrderedIndex, key: bytes, rowid: int) -> None:
        if getattr(index, "secondary", False):
            index.insert(key, rowid)  # hybrid secondary appends itself
            return
        existing = index.get(key)
        if existing is None:
            index.insert(key, [rowid])
        else:
            existing.append(rowid)

    # -- row operations ------------------------------------------------------------

    def _pk(self, key: Sequence[Any] | Any) -> bytes:
        if self.key_widths is not None:
            if not isinstance(key, (tuple, list)):
                key = (key,)
            return encode_packed(key, self.key_widths)
        return encode_key(key)

    def insert(self, key: Sequence[Any] | Any, row: Iterable[Any]) -> bool:
        row = tuple(row)
        pk = self._pk(key)
        rowid = self._next_rowid
        if not self.primary.insert(pk, rowid):
            return False
        self._next_rowid += 1
        self.rows[rowid] = row
        self.tuple_memory += tuple_bytes(row)
        for index, columns in self.secondaries.values():
            self._secondary_insert(index, self._secondary_key(row, columns), rowid)
        return True

    def get(self, key: Sequence[Any] | Any) -> tuple | None:
        rowid = self.primary.get(self._pk(key))
        return self.rows.get(rowid) if rowid is not None else None

    def update(self, key: Sequence[Any] | Any, row: Iterable[Any]) -> bool:
        """Replace the row (secondary keys are assumed unchanged —
        benchmark updates only touch non-indexed columns, as in TPC-C)."""
        pk = self._pk(key)
        rowid = self.primary.get(pk)
        if rowid is None:
            return False
        old = self.rows[rowid]
        new = tuple(row)
        self.tuple_memory += tuple_bytes(new) - tuple_bytes(old)
        self.rows[rowid] = new
        return True

    def delete(self, key: Sequence[Any] | Any) -> bool:
        pk = self._pk(key)
        rowid = self.primary.get(pk)
        if rowid is None:
            return False
        self.primary.delete(pk)
        row = self.rows.pop(rowid)
        self.tuple_memory -= tuple_bytes(row)
        # Secondary entries are cleaned lazily on lookup.
        return True

    def scan_primary(self, low_key: Sequence[Any] | Any, count: int) -> list[tuple]:
        out = []
        for _, rowid in self.primary.scan(self._pk(low_key), count):
            row = self.rows.get(rowid)
            if row is not None:
                out.append(row)
        return out

    def lookup_secondary(self, index_name: str, key: Sequence[Any] | Any) -> list[tuple]:
        index, _ = self.secondaries[index_name]
        rowids = index.get(encode_key(key))
        if rowids is None:
            return []
        return [self.rows[r] for r in rowids if r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # -- memory accounting -------------------------------------------------------------

    def primary_index_bytes(self) -> int:
        return self.primary.memory_bytes()

    def secondary_index_bytes(self) -> int:
        return sum(ix.memory_bytes() for ix, _ in self.secondaries.values())

    def memory_report(self) -> dict[str, int]:
        return {
            "tuples": self.tuple_memory,
            "primary": self.primary_index_bytes(),
            "secondary": self.secondary_index_bytes(),
        }
