"""Symbol selection for HOPE's six compression schemes (Section 6.1.3).

Each scheme decides which byte patterns become dictionary symbols:

* **Single-Char** (FIVC)    — the 256 single bytes;
* **Double-Char** (FIVC)    — all byte pairs (plus the single-byte
  terminator intervals completeness requires);
* **3-Grams / 4-Grams** (VIVC) — the most frequent 3-/4-byte substrings
  of the sample, up to the dictionary size limit;
* **ALM** (VIFC)            — variable-length substrings chosen to
  "equalize" len(s) * freq(s), with fixed-length codes;
* **ALM-Improved** (VIVC)   — ALM symbols with optimal variable codes
  (and frequency counting restricted to prefix-aligned windows).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

SCHEMES = ("single", "double", "3grams", "4grams", "alm", "alm-improved")

#: Maximum ALM symbol length (HOPE caps pattern length similarly).
ALM_MAX_SYMBOL_LEN = 16


def count_grams(sample: Sequence[bytes], length: int) -> Counter:
    """Sliding-window substring counts of a fixed length."""
    counts: Counter = Counter()
    for key in sample:
        for i in range(len(key) - length + 1):
            counts[key[i : i + length]] += 1
    return counts


def select_gram_symbols(
    sample: Sequence[bytes], length: int, limit: int
) -> list[bytes]:
    """The ``limit`` most frequent ``length``-grams in the sample."""
    counts = count_grams(sample, length)
    # Deterministic tie-break: frequency desc, then lexicographic.
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [gram for gram, _ in ranked[:limit]]


def select_alm_symbols(
    sample: Sequence[bytes],
    limit: int,
    max_len: int = ALM_MAX_SYMBOL_LEN,
    prefix_aligned: bool = False,
) -> list[bytes]:
    """Variable-length substrings maximizing ``len(s) * freq(s)``.

    ``prefix_aligned=True`` is the ALM-Improved refinement: count only
    windows starting at key prefixes (cheaper and better matched to how
    encoding actually consumes keys).
    """
    counts: Counter = Counter()
    for key in sample:
        starts = [0] if prefix_aligned else range(len(key))
        for start in starts:
            for ln in range(2, min(max_len, len(key) - start) + 1):
                counts[key[start : start + ln]] += 1
    scored = sorted(
        counts.items(), key=lambda kv: (-len(kv[0]) * kv[1], kv[0])
    )
    picked: list[bytes] = []
    for sym, _ in scored:
        if len(picked) >= limit:
            break
        picked.append(sym)
    return picked


def scheme_symbols(
    scheme: str, sample: Sequence[bytes], dict_limit: int
) -> list[bytes]:
    """Dictionary symbols for ``scheme`` drawn from ``sample``."""
    if scheme == "single":
        return [bytes([b]) for b in range(256)]
    if scheme == "double":
        # All observed byte pairs (the axis fallbacks cover the rest).
        return sorted(count_grams(sample, 2))
    if scheme == "3grams":
        return select_gram_symbols(sample, 3, dict_limit)
    if scheme == "4grams":
        return select_gram_symbols(sample, 4, dict_limit)
    if scheme == "alm":
        return select_alm_symbols(sample, dict_limit)
    if scheme == "alm-improved":
        return select_alm_symbols(sample, dict_limit, prefix_aligned=True)
    raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")


def scheme_code_kind(scheme: str) -> str:
    """'fixed' (VIFC) or 'variable' (FIVC/VIVC) code assignment."""
    return "fixed" if scheme == "alm" else "variable"
