"""The HOPE encoder facade (Section 6.2).

Two-phase operation, matching Figure 6.5:

1. **Build** — sample the keys, select symbols (Symbol Selector), count
   interval hit frequencies by parsing the sample (the "exploiting
   entropy" step), assign order-preserving codes (Code Generator), and
   materialise the dictionary.
2. **Encode** — repeatedly look up the longest applicable interval and
   emit its code.  ``encode_batch`` exploits sorted input by reusing
   the parse of the previous key's shared prefix.

Encoded keys are bit strings; ``encode`` returns them zero-padded to
whole bytes (callers that must distinguish pad-colliding keys can use
``encode_bits`` which also returns the exact bit length).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Sequence

import numpy as np

from .hu_tucker import DEFAULT_EXACT_LIMIT, assign_alphabetic_codes
from .intervals import (
    Interval,
    build_intervals,
    find_interval,
    validate_intervals,
    validate_order_preserving,
)
from .schemes import SCHEMES, scheme_code_kind, scheme_symbols


class HopeEncoder:
    """A complete, order-preserving dictionary key compressor."""

    def __init__(self, intervals: list[Interval], scheme: str) -> None:
        validate_intervals(intervals)
        self.intervals = intervals
        self.scheme = scheme
        self._los = [iv.lo for iv in intervals]
        # Single-Char's dictionary is a flat 256-entry array: byte ->
        # (code, len) in O(1), no interval search (Figure 6.10's lowest
        # latency).  Populated after code assignment.
        self._single_codes: list[tuple[int, int]] | None = None
        # Build-phase timings, populated by from_sample (Figure 6.12).
        self.symbol_select_seconds = 0.0
        self.code_assign_seconds = 0.0
        self.dict_build_seconds = 0.0

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_sample(
        cls,
        scheme: str,
        sample: Sequence[bytes],
        dict_limit: int = 1024,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ) -> "HopeEncoder":
        """Build a dictionary for ``scheme`` from sampled keys."""
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}")
        t0 = time.perf_counter()
        symbols = scheme_symbols(scheme, sample, dict_limit)
        t1 = time.perf_counter()
        intervals = build_intervals(symbols)
        encoder = cls(intervals, scheme)
        weights = encoder._count_weights(sample)
        t2 = time.perf_counter()
        encoder._assign_codes(weights, exact_limit)
        t3 = time.perf_counter()
        encoder.symbol_select_seconds = t1 - t0
        encoder.dict_build_seconds = t2 - t1
        encoder.code_assign_seconds = t3 - t2
        return encoder

    def _count_weights(self, sample: Sequence[bytes]) -> list[float]:
        """Interval hit frequencies from parsing the sample (add-one
        smoothed so unseen intervals still get finite codes)."""
        weights = [1.0] * len(self.intervals)
        for key in sample:
            pos = 0
            while pos < len(key):
                idx = bisect_right(self._los, key[pos:]) - 1
                weights[idx] += 1.0
                pos += len(self.intervals[idx].symbol)
        return weights

    def _assign_codes(self, weights: list[float], exact_limit: int) -> None:
        if scheme_code_kind(self.scheme) == "fixed":
            # VIFC: fixed-length codes in interval order (ALM).
            width = max(1, (len(self.intervals) - 1).bit_length())
            for i, iv in enumerate(self.intervals):
                iv.code, iv.code_len = i, width
        else:
            codes, lengths = assign_alphabetic_codes(weights, exact_limit)
            for iv, code, length in zip(self.intervals, codes, lengths):
                iv.code, iv.code_len = code, length
        validate_order_preserving(self.intervals)
        if self.scheme == "single" and len(self.intervals) == 256:
            self._single_codes = [
                (iv.code, iv.code_len) for iv in self.intervals
            ]

    # -- encoding ------------------------------------------------------------------

    def encode_bits(self, key: bytes) -> tuple[int, int]:
        """(bits value, bit count) of the exact encoded bit string."""
        if self._single_codes is not None:
            bits = 0
            n_bits = 0
            table = self._single_codes
            for byte in key:
                code, length = table[byte]
                bits = (bits << length) | code
                n_bits += length
            return bits, n_bits
        bits = 0
        n_bits = 0
        pos = 0
        los = self._los
        intervals = self.intervals
        while pos < len(key):
            idx = bisect_right(los, key[pos:]) - 1
            iv = intervals[idx]
            bits = (bits << iv.code_len) | iv.code
            n_bits += iv.code_len
            pos += len(iv.symbol)
        return bits, n_bits

    def encode(self, key: bytes) -> bytes:
        """Encoded key, zero-padded to whole bytes (order-preserving)."""
        bits, n_bits = self.encode_bits(key)
        n_bytes = (n_bits + 7) // 8
        return (bits << (n_bytes * 8 - n_bits)).to_bytes(n_bytes, "big")

    def _single_tables(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Flat 256-entry numpy code/length tables for the Single-Char
        batch translate (lazy; ``None`` when codes exceed 63 bits and
        the uint64 bit-expansion kernel cannot hold them)."""
        tables = getattr(self, "_single_np", None)
        if tables is None:
            assert self._single_codes is not None
            lens = np.array([l for _, l in self._single_codes], dtype=np.int64)
            if int(lens.max()) > 63:
                tables = (None, None)
            else:
                codes = np.array(
                    [c for c, _ in self._single_codes], dtype=np.uint64
                )
                tables = (codes, lens)
            self._single_np = tables
        return None if tables[0] is None else tables

    def _encode_batch_single(self, keys: Sequence[bytes]) -> list[bytes] | None:
        """Vectorized Single-Char encode: one ``np.frombuffer`` translate
        of the concatenated key bytes, a bit-expansion kernel, and one
        ``np.packbits`` pass for the whole batch."""
        tables = self._single_tables()
        if tables is None:
            return None
        codes, lens = tables
        buf = np.frombuffer(b"".join(keys), dtype=np.uint8)
        key_lens = np.fromiter(
            (len(k) for k in keys), dtype=np.int64, count=len(keys)
        )
        sym_lens = lens[buf]
        total = int(sym_lens.sum())
        # MSB-first bitstream of every code, concatenated: bit t of a
        # symbol with length L is (code >> (L - 1 - t)) & 1.
        bit_ends = np.cumsum(sym_lens)
        rep_lens = np.repeat(sym_lens, sym_lens)
        t = np.arange(total, dtype=np.int64) - np.repeat(
            bit_ends - sym_lens, sym_lens
        )
        shift = (rep_lens - 1 - t).astype(np.uint64)
        bitstream = (
            (np.repeat(codes[buf], sym_lens) >> shift) & np.uint64(1)
        ).astype(np.uint8)
        # Per-key bit ranges over the symbol stream.
        cum_bits = np.zeros(len(buf) + 1, dtype=np.int64)
        cum_bits[1:] = bit_ends
        key_sym_end = np.cumsum(key_lens)
        key_bit_end = cum_bits[key_sym_end]
        key_bit_start = cum_bits[key_sym_end - key_lens]
        key_bits = key_bit_end - key_bit_start
        # Scatter each key's bits into its byte-padded slot so a single
        # packbits produces every zero-padded encoding back to back.
        padded_bits = (key_bits + 7) // 8 * 8
        padded_start = np.zeros(len(keys), dtype=np.int64)
        np.cumsum(padded_bits[:-1], out=padded_start[1:])
        dest = np.arange(total, dtype=np.int64) + np.repeat(
            padded_start - key_bit_start, key_bits
        )
        padded = np.zeros(int(padded_bits.sum()), dtype=np.uint8)
        padded[dest] = bitstream
        blob = np.packbits(padded, bitorder="big").tobytes()
        byte_start = (padded_start // 8).tolist()
        byte_end = ((padded_start + padded_bits) // 8).tolist()
        return [blob[s:e] for s, e in zip(byte_start, byte_end)]

    def encode_batch(self, keys: Sequence[bytes]) -> list[bytes]:
        """Encode keys, reusing shared-prefix parses when sorted.

        Single-Char dictionaries take a fully vectorized path (flat
        numpy translate tables, no per-symbol Python work).  Other
        schemes reuse the previous key's shared-prefix parse: a cached
        parse step is reused only if the new key's remaining suffix
        still falls inside the step's interval, which keeps the
        optimization exact (adjacent intervals can share a symbol).
        """
        if self._single_codes is not None and keys:
            encoded = self._encode_batch_single(keys)
            if encoded is not None:
                return encoded
        out: list[bytes] = []
        prev_key = b""
        # Parse steps: (pos_before, interval_idx, bits_after, nbits_after)
        prev_steps: list[tuple[int, int, int, int]] = []
        for key in keys:
            lcp = 0
            limit = min(len(prev_key), len(key))
            while lcp < limit and prev_key[lcp] == key[lcp]:
                lcp += 1
            bits = n_bits = pos = 0
            steps: list[tuple[int, int, int, int]] = []
            for step_pos, idx, step_bits, step_nbits in prev_steps:
                iv = self.intervals[idx]
                if step_pos + len(iv.symbol) > lcp:
                    break
                rem = key[step_pos:]
                if iv.lo <= rem and (iv.hi is None or rem < iv.hi):
                    steps.append((step_pos, idx, step_bits, step_nbits))
                    bits, n_bits = step_bits, step_nbits
                    pos = step_pos + len(iv.symbol)
                else:
                    break
            while pos < len(key):
                idx = bisect_right(self._los, key[pos:]) - 1
                iv = self.intervals[idx]
                bits = (bits << iv.code_len) | iv.code
                n_bits += iv.code_len
                steps.append((pos, idx, bits, n_bits))
                pos += len(iv.symbol)
            n_bytes = (n_bits + 7) // 8
            out.append((bits << (n_bytes * 8 - n_bits)).to_bytes(n_bytes, "big"))
            prev_key, prev_steps = key, steps
        return out

    def decode(self, bits: int, n_bits: int) -> bytes:
        """Inverse of encode_bits (prefix codes are uniquely decodable).

        Decoding is only needed by tests and debugging — search-tree
        queries never reconstruct keys (Section 6.2)."""
        by_code = {
            (iv.code, iv.code_len): iv.symbol for iv in self.intervals
        }
        out = bytearray()
        cur = 0
        cur_len = 0
        for i in range(n_bits - 1, -1, -1):
            cur = (cur << 1) | ((bits >> i) & 1)
            cur_len += 1
            symbol = by_code.get((cur, cur_len))
            if symbol is not None:
                out.extend(symbol)
                cur = cur_len = 0
        if cur_len:
            raise ValueError("dangling bits: not a valid encoding")
        return bytes(out)

    # -- metrics -------------------------------------------------------------------------

    def compression_rate(self, keys: Sequence[bytes]) -> float:
        """CPR: total input bits / total encoded bits (higher = better)."""
        in_bits = sum(len(k) for k in keys) * 8
        out_bits = sum(self.encode_bits(k)[1] for k in keys)
        return in_bits / out_bits if out_bits else 1.0

    def dict_size(self) -> int:
        return len(self.intervals)

    def memory_bytes(self) -> int:
        """Modeled dictionary memory, per structure (Figure 6.11).

        Single/Double-Char use flat code arrays; the gram schemes use
        the bitmap-trie of Figure 6.6 (a 256-bit bitmap + 4-byte counter
        per node); ALM uses the boundary array searched by bisection.
        """
        n = len(self.intervals)
        code_bytes = n * 5  # 4-byte code + 1-byte length
        if self.scheme == "single":
            return 256 * 5
        if self.scheme == "double":
            return 65536 * 5 + 256 * 5
        if self.scheme in ("3grams", "4grams"):
            prefixes = {iv.symbol[:k] for iv in self.intervals for k in range(1, len(iv.symbol))}
            n_trie_nodes = len(prefixes) + 1
            return n_trie_nodes * (32 + 4) + code_bytes
        # ALM variants: boundary strings + offset array + codes.
        boundary_bytes = sum(len(iv.lo) for iv in self.intervals)
        return boundary_bytes + n * 4 + code_bytes
