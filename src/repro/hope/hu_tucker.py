"""Optimal order-preserving (alphabetic) prefix codes (Section 6.1.3).

HOPE's FIVC/VIVC schemes assign *Hu-Tucker* codes: optimal prefix codes
whose codeword order matches symbol order.  We compute optimal code
lengths with the Garsia-Wachs algorithm (same optimal cost as
Hu-Tucker, simpler to implement) and then assign the canonical
alphabetic codewords for those lengths.

For very large alphabets (Double-Char's 65 536 symbols) the O(n^2)
worst case of Garsia-Wachs is too slow in pure Python, so above
``exact_limit`` we switch to recursive weight-balancing, a classic
approximation whose expected cost is within ~2 bits of entropy.  The
substitution preserves completeness and order (DESIGN.md §1.3).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

DEFAULT_EXACT_LIMIT = 4096


class _Node:
    __slots__ = ("weight", "left", "right", "leaf_index")

    def __init__(self, weight, left=None, right=None, leaf_index=None):
        self.weight = weight
        self.left = left
        self.right = right
        self.leaf_index = leaf_index


def garsia_wachs_lengths(weights: list[float]) -> list[int]:
    """Optimal alphabetic code lengths for ordered positive weights."""
    n = len(weights)
    if n == 0:
        return []
    if n == 1:
        return [0]
    inf = float("inf")
    seq: list[_Node] = [_Node(inf)]
    for i, w in enumerate(weights):
        seq.append(_Node(w, leaf_index=i))
    seq.append(_Node(inf))

    while len(seq) > 3:
        # Find the leftmost j with seq[j-1].weight <= seq[j+1].weight.
        j = 1
        while seq[j - 1].weight > seq[j + 1].weight:
            j += 1
        combined = _Node(seq[j - 1].weight + seq[j].weight, seq[j - 1], seq[j])
        del seq[j - 1 : j + 1]
        # Move the combined node left: insert right after the nearest
        # element to the left with weight >= combined weight.
        k = j - 1
        while seq[k - 1].weight < combined.weight:
            k -= 1
        seq.insert(k, combined)

    root = seq[1]
    depths = [0] * n
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if node.leaf_index is not None:
            depths[node.leaf_index] = depth
        else:
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
    return depths


def weight_balanced_lengths(weights: list[float]) -> list[int]:
    """Near-optimal alphabetic code lengths by recursive bisection."""
    n = len(weights)
    if n == 0:
        return []
    if n == 1:
        return [0]
    prefix = np.concatenate([[0.0], np.cumsum(np.asarray(weights, dtype=np.float64))])
    depths = [0] * n
    # Iterative stack of (lo, hi, depth) half-open symbol ranges.
    stack = [(0, n, 0)]
    while stack:
        lo, hi, depth = stack.pop()
        if hi - lo == 1:
            depths[lo] = depth
            continue
        total_lo, total_hi = prefix[lo], prefix[hi]
        target = (total_lo + total_hi) / 2.0
        # Split point balancing the two halves' total weight.
        mid = bisect_left(prefix, target, lo + 1, hi)
        if mid <= lo:
            mid = lo + 1
        if mid >= hi:
            mid = hi - 1
        # Choose the neighbour that balances best.
        if mid > lo + 1 and abs(prefix[mid - 1] - target) < abs(prefix[mid] - target):
            mid -= 1
        stack.append((lo, mid, depth + 1))
        stack.append((mid, hi, depth + 1))
    return depths


def optimal_alphabetic_lengths(
    weights: list[float], exact_limit: int = DEFAULT_EXACT_LIMIT
) -> list[int]:
    """Dispatch: exact Garsia-Wachs when feasible, else weight-balanced."""
    if len(weights) <= exact_limit:
        return garsia_wachs_lengths(list(weights))
    return weight_balanced_lengths(list(weights))


def alphabetic_codes(lengths: list[int]) -> list[int]:
    """Canonical monotonically increasing codewords for ``lengths``.

    ``lengths`` must come from a valid alphabetic tree (Garsia-Wachs or
    weight-balanced output).  Codeword i is the integer value of an
    ``lengths[i]``-bit string; comparing (code << pad) as bit strings
    preserves symbol order.
    """
    if not lengths:
        return []
    codes = [0]
    for i in range(1, len(lengths)):
        nxt = codes[-1] + 1
        if lengths[i] >= lengths[i - 1]:
            nxt <<= lengths[i] - lengths[i - 1]
        else:
            # Ceiling shift: a floor here could make the new (shorter)
            # code a prefix of its predecessor.
            shift = lengths[i - 1] - lengths[i]
            nxt = (nxt + (1 << shift) - 1) >> shift
        codes.append(nxt)
    return codes


def assign_alphabetic_codes(
    weights: list[float], exact_limit: int = DEFAULT_EXACT_LIMIT
) -> tuple[list[int], list[int]]:
    """(codes, lengths) of an order-preserving prefix code for weights."""
    lengths = optimal_alphabetic_lengths(weights, exact_limit)
    return alphabetic_codes(lengths), lengths


def expected_code_length(weights: list[float], lengths: list[int]) -> float:
    """Average code length under the weight distribution."""
    total = sum(weights)
    if total == 0:
        return 0.0
    return sum(w * l for w, l in zip(weights, lengths)) / total
