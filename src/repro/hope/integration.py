"""HOPE integration with search trees (Sections 6.3, 6.5).

Integrating HOPE into a search tree means encoding every key before it
touches the tree (Figure 6.5's encode phase); range queries encode both
bounds, which is sound because the encoding is order-preserving.

The interesting measurement is Figure 6.7: how much each structure
benefits depends on how completely it stores keys — B+tree and T-Tree
(full keys) gain the most, Prefix B+tree and SuRF (partial keys) less,
ART (path-compressed) less still, and HOT (discriminative bits only)
almost nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..surf import SuRF
from .encoder import HopeEncoder


class HopeIndex:
    """Any OrderedIndex with HOPE key compression in front."""

    def __init__(self, index_factory: Callable[[], Any], encoder: HopeEncoder) -> None:
        self.index = index_factory()
        self.encoder = encoder

    def insert(self, key: bytes, value: Any) -> bool:
        return self.index.insert(self.encoder.encode(key), value)

    def get(self, key: bytes) -> Any | None:
        return self.index.get(self.encoder.encode(key))

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched :meth:`get`: batch-encode, then batch-query the
        wrapped tree (falls back to a scalar loop on trees without a
        native batch path)."""
        encoded = self.encoder.encode_batch(keys)
        batch = getattr(self.index, "get_many", None)
        if batch is not None:
            return batch(encoded)
        return [self.index.get(e) for e in encoded]

    def update(self, key: bytes, value: Any) -> bool:
        return self.index.update(self.encoder.encode(key), value)

    def delete(self, key: bytes) -> bool:
        return self.index.delete(self.encoder.encode(key))

    def scan(self, key: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Scan over *encoded* key space (order matches source order).

        Returned keys are the encoded forms: range queries need only
        ordering and values, not key reconstruction (Section 6.2).
        """
        return self.index.scan(self.encoder.encode(key), count)

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        """Ordered iteration from ``key``; pairs carry *encoded* keys.

        ``key`` may be raw (it is encoded first) or an already-encoded
        bound produced by a previous scan — both sort identically.
        """
        return self.index.lower_bound(self.encoder.encode(key))

    def items(self) -> Iterator[tuple[bytes, Any]]:
        """All (encoded key, value) pairs in encoded == source order."""
        return self.index.items()

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.index)

    def memory_bytes(self) -> int:
        """Index memory plus the dictionary it must keep resident."""
        return self.index.memory_bytes() + self.encoder.memory_bytes()


class HopeSuRF:
    """SuRF over HOPE-encoded keys (Section 6.5's headline subject)."""

    def __init__(
        self,
        keys: Sequence[bytes],
        encoder: HopeEncoder,
        suffix_type: str = "none",
        **surf_kwargs,
    ) -> None:
        self.encoder = encoder
        encoded = sorted(set(encoder.encode(k) for k in keys))
        self.collisions = len(keys) - len(encoded)
        self.surf = SuRF(encoded, suffix_type=suffix_type, **surf_kwargs)

    def lookup(self, key: bytes) -> bool:
        return self.surf.lookup(self.encoder.encode(key))

    def lookup_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Batch-encode the queries, then batch-probe the SuRF."""
        return self.surf.lookup_many(self.encoder.encode_batch(keys))

    def lookup_range(self, low: bytes, high: bytes, inclusive_high: bool = False) -> bool:
        return self.surf.lookup_range(
            self.encoder.encode(low), self.encoder.encode(high), inclusive_high
        )

    def size_bits(self) -> int:
        return self.surf.size_bits() + self.encoder.memory_bytes() * 8

    def memory_bytes(self) -> int:
        return (self.size_bits() + 7) // 8

    def bits_per_key(self) -> float:
        return self.size_bits() / max(1, len(self.surf))

    def trie_height(self) -> float:
        """Average leaf depth of the underlying FST (Figure 6.16:
        HOPE shortens the trie)."""
        fst = self.surf.fst
        total = count = 0
        it = fst.iter_all()
        while it.valid:
            total += len(it.frames)
            count += 1
            it.next()
        return total / count if count else 0.0


def encode_keys_dedup(encoder: HopeEncoder, keys: Sequence[bytes]) -> list[bytes]:
    """Encode and sort keys, dropping padding collisions.

    Zero-padding to whole bytes can merge a bit string with its own
    zero-extension (rare); deduping keeps downstream structures sound.
    """
    return sorted(set(encoder.encode(k) for k in keys))
