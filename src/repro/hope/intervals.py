"""The string axis model (Section 6.1.1).

A dictionary encoding scheme is a partition of the string axis into
connected intervals; each interval ``[b_i, b_{i+1})`` carries a symbol
``s_i`` (the longest common prefix of every string in the interval) and
a code ``c_i``.  Completeness = the intervals cover the axis; unique
decodability = they are disjoint with prefix codes; order-preserving =
codes increase monotonically (Theorems of Section 6.1.1).

This module builds the interval partition for any symbol set: given
the selected symbols (grams, ALM substrings, or single/double chars),
interval boundaries are the symbols themselves, their upper bounds, and
all 256 single bytes — the latter guarantee every interval has a
non-empty common prefix, which is what makes the dictionary complete
(every lookup consumes at least one byte).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: Sentinel exclusive upper bound of the string axis.
AXIS_END = b"\xff" * 64 + b"\xff"


def increment(prefix: bytes) -> bytes | None:
    """Smallest string greater than every string starting with
    ``prefix`` (None when the prefix is all 0xFF = end of axis)."""
    out = bytearray(prefix)
    while out and out[-1] == 0xFF:
        out.pop()
    if not out:
        return None
    out[-1] += 1
    return bytes(out)


def interval_symbol(lo: bytes, hi: bytes | None) -> bytes:
    """Longest prefix of ``lo`` shared by every string in [lo, hi).

    ``hi=None`` means the interval extends to the end of the axis.
    """
    if not lo:
        raise ValueError("interval low bound must be non-empty")
    for k in range(len(lo), 0, -1):
        upper = increment(lo[:k])
        if upper is None or (hi is not None and hi <= upper):
            return lo[:k]
    raise ValueError(f"no common prefix for interval [{lo!r}, {hi!r})")


@dataclass
class Interval:
    """One dictionary entry of the string axis model."""

    lo: bytes
    hi: bytes | None  # None = end of axis
    symbol: bytes
    code: int = 0
    code_len: int = 0


def build_intervals(symbols: Iterable[bytes]) -> list[Interval]:
    """Partition the axis using ``symbols`` plus single-byte fallbacks.

    Each symbol s gets its own interval [s, increment(s)); gaps between
    them become intervals whose symbol is the gap's common prefix.  The
    256 single-byte boundaries are always included, so the result is a
    complete dictionary able to encode arbitrary byte strings.
    """
    boundaries: set[bytes] = {bytes([b]) for b in range(256)}
    for sym in symbols:
        if not sym:
            raise ValueError("symbols must be non-empty")
        boundaries.add(sym)
        upper = increment(sym)
        if upper is not None:
            boundaries.add(upper)
    ordered = sorted(boundaries)
    intervals: list[Interval] = []
    for i, lo in enumerate(ordered):
        hi = ordered[i + 1] if i + 1 < len(ordered) else None
        intervals.append(Interval(lo=lo, hi=hi, symbol=interval_symbol(lo, hi)))
    return intervals


def validate_intervals(intervals: Sequence[Interval]) -> None:
    """Assert completeness, disjointness, and symbol validity."""
    if not intervals:
        raise ValueError("empty dictionary")
    if intervals[0].lo != b"\x00":
        raise ValueError("axis not covered from the start")
    for i, iv in enumerate(intervals):
        if not iv.symbol or not iv.lo.startswith(iv.symbol):
            raise ValueError(f"interval {i} has invalid symbol")
        if i + 1 < len(intervals):
            nxt = intervals[i + 1]
            if iv.hi != nxt.lo:
                raise ValueError(f"gap or overlap between intervals {i}, {i+1}")
    if intervals[-1].hi is not None:
        raise ValueError("axis not covered to the end")


def validate_order_preserving(intervals: Sequence[Interval]) -> None:
    """Assert codes are monotonically increasing as bit strings."""
    for i in range(len(intervals) - 1):
        a, b = intervals[i], intervals[i + 1]
        # Compare as left-aligned bit strings.
        width = max(a.code_len, b.code_len)
        av = a.code << (width - a.code_len)
        bv = b.code << (width - b.code_len)
        if av >= bv:
            raise ValueError(f"codes not strictly increasing at interval {i}")


def find_interval(intervals: Sequence[Interval], s: bytes) -> int:
    """Index of the interval containing string ``s`` (binary search)."""
    lo, hi = 0, len(intervals) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if intervals[mid].lo <= s:
            lo = mid
        else:
            hi = mid - 1
    return lo
