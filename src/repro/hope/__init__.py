"""HOPE: the High-speed Order-Preserving Encoder (Chapter 6)."""

from .encoder import HopeEncoder
from .integration import HopeIndex, HopeSuRF, encode_keys_dedup
from .hu_tucker import (
    alphabetic_codes,
    assign_alphabetic_codes,
    expected_code_length,
    garsia_wachs_lengths,
    optimal_alphabetic_lengths,
    weight_balanced_lengths,
)
from .intervals import (
    Interval,
    build_intervals,
    find_interval,
    increment,
    interval_symbol,
    validate_intervals,
    validate_order_preserving,
)
from .schemes import SCHEMES, scheme_code_kind, scheme_symbols

__all__ = [
    "HopeEncoder",
    "HopeIndex",
    "HopeSuRF",
    "encode_keys_dedup",
    "SCHEMES",
    "Interval",
    "build_intervals",
    "find_interval",
    "increment",
    "interval_symbol",
    "validate_intervals",
    "validate_order_preserving",
    "scheme_symbols",
    "scheme_code_kind",
    "garsia_wachs_lengths",
    "weight_balanced_lengths",
    "optimal_alphabetic_lengths",
    "alphabetic_codes",
    "assign_alphabetic_codes",
    "expected_code_length",
]
