"""Common interface for every ordered index in the library.

Keys are always ``bytes`` (64-bit integers are big-endian encoded, see
:mod:`repro.workloads.keys`), and order is byte-wise lexicographic.
Memory is reported through :meth:`OrderedIndex.memory_bytes`, which
models the layout a C implementation of the same structure would use —
this is what makes the paper's memory comparisons meaningful in Python
(see DESIGN.md §1.3).
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Sequence

#: Modeled size of one pointer / tuple reference (64-bit machine).
POINTER_BYTES = 8
#: Modeled malloc bookkeeping per out-of-node heap allocation.
ALLOC_OVERHEAD_BYTES = 8


def heap_key_bytes(key: bytes, inline_threshold: int = 8) -> int:
    """Modeled heap cost of storing ``key`` outside a node slot in a
    *dynamic* structure.

    Keys up to ``inline_threshold`` bytes (i.e. 64-bit integers) are
    stored inline in the slot and cost nothing extra; longer keys are
    individual heap allocations: length plus allocator header.
    """
    if len(key) <= inline_threshold:
        return 0
    return len(key) + ALLOC_OVERHEAD_BYTES


def packed_key_bytes(key: bytes, inline_threshold: int = 8) -> int:
    """Modeled cost of the same key in a *static* structure: keys are
    concatenated into one array (no per-key allocation) with a 4-byte
    offset entry each — the Compaction Rule's layout."""
    if len(key) <= inline_threshold:
        return 0
    return len(key) + 4


class OrderedIndex(abc.ABC):
    """Abstract ordered key-value index (primary-index semantics).

    ``insert`` rejects duplicate keys (returns False); ``update``
    modifies an existing key's value in place.  Range access goes
    through :meth:`scan` / :meth:`lower_bound`, mirroring the operations
    the thesis benchmarks (YCSB point reads, updates, inserts, scans).
    """

    @abc.abstractmethod
    def insert(self, key: bytes, value: Any) -> bool:
        """Insert a new key; returns False if the key already exists."""

    @abc.abstractmethod
    def get(self, key: bytes) -> Any | None:
        """Point lookup; None if absent."""

    @abc.abstractmethod
    def update(self, key: bytes, value: Any) -> bool:
        """Overwrite an existing key's value; False if absent."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove a key; False if absent."""

    @abc.abstractmethod
    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        """Iterate pairs with key >= the argument, in order."""

    @abc.abstractmethod
    def items(self) -> Iterator[tuple[bytes, Any]]:
        """Iterate all pairs in key order."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Modeled memory footprint (C layout), excluding the records."""

    # -- derived operations ------------------------------------------------

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched point lookup: one result slot per key, in order.

        The default is a scalar loop so every structure answers the
        batch vocabulary; hot structures override it with native
        data-parallel kernels (must stay bit-for-bit consistent with
        :meth:`get`).
        """
        return [self.get(key) for key in keys]

    def put(self, key: bytes, value: Any) -> None:
        """Upsert: insert the key or overwrite its value."""
        if not self.insert(key, value):
            self.update(key, value)

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        """Batched upsert: apply pairs in order (last write wins).

        Like :meth:`get_many`, the default is a scalar loop so every
        structure answers the batch vocabulary; batch-native structures
        override it with a vectorized single-pass apply.
        """
        for key, value in pairs:
            self.put(key, value)

    def delete_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Batched delete: one result slot per key, in order.

        A key repeated in the batch is deleted once; later occurrences
        report False, matching the sequential-apply semantics.
        """
        return [self.delete(key) for key in keys]

    def scan(self, key: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Short range scan: first ``count`` pairs with key >= argument."""
        out: list[tuple[bytes, Any]] = []
        for pair in self.lower_bound(key):
            out.append(pair)
            if len(out) >= count:
                break
        return out

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None


class StaticOrderedIndex(OrderedIndex):
    """Base for read-only (D-to-S) structures: mutations raise."""

    def insert(self, key: bytes, value: Any) -> bool:
        raise TypeError(f"{type(self).__name__} is static; rebuild to insert")

    def update(self, key: bytes, value: Any) -> bool:
        raise TypeError(f"{type(self).__name__} is static; rebuild to update")

    def delete(self, key: bytes) -> bool:
        raise TypeError(f"{type(self).__name__} is static; rebuild to delete")
