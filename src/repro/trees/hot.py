"""A HOT-like height-optimised binary trie (Chapter 6 baseline).

HOT (Binna et al.) stores only the *discriminative bits* of keys in
compound nodes of bounded fanout, reading full keys from the records.
We implement its underlying structure — a binary PATRICIA (crit-bit)
trie over key bits — and model HOT's compound-node layout for memory:
inner crit-bit entries are packed 32-per-compound-node (partial key +
child slot each), leaves are 8-byte record pointers.

Because almost no key bytes live in the index, HOT gets the *least*
benefit from HOPE of the five trees (Figure 6.7's ordering) — the
property this baseline exists to demonstrate.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..bench.counters import COUNTERS
from .base import OrderedIndex

COMPOUND_FANOUT = 32
_COMPOUND_HEADER = 16
_ENTRY_BYTES = 4 + 8  # partial key (discriminative bits) + child slot


def _bit_at(key: bytes, bit: int) -> int:
    byte = bit >> 3
    if byte >= len(key):
        return 0
    return (key[byte] >> (7 - (bit & 7))) & 1


def _first_diff_bit(a: bytes, b: bytes) -> int:
    """Index of the first differing bit (keys padded with zeros; a
    length difference counts via the 'virtual' length bits)."""
    n = max(len(a), len(b))
    for i in range(n):
        ab = a[i] if i < len(a) else -1
        bb = b[i] if i < len(b) else -1
        if ab != bb:
            av = ab if ab >= 0 else 0
            bv = bb if bb >= 0 else 0
            xor = av ^ bv
            if xor == 0:
                # Pure length difference within this byte: use bit 8
                # positions after (handled by caller comparing keys).
                return i * 8 + 8
            return i * 8 + (7 - (xor.bit_length() - 1))
    return n * 8


class _CritLeaf:
    __slots__ = ("key", "value")

    def __init__(self, key: bytes, value: Any) -> None:
        self.key = key
        self.value = value


class _CritNode:
    __slots__ = ("bit", "left", "right")

    def __init__(self, bit: int, left: Any, right: Any) -> None:
        self.bit = bit
        self.left = left
        self.right = right


class HOTrie(OrderedIndex):
    """Dynamic crit-bit trie with HOT's compound-node memory model.

    Keys must be *prefix-free* for pure bit discrimination.  Keys may
    contain 0x00, so a bare terminator is not enough: we byte-stuff
    (0x00 -> 0x00 0x01) and terminate with 0x00 0x00, which is
    order-preserving and makes every encoded key end in a sequence that
    cannot appear inside another.
    """

    def __init__(self) -> None:
        self._root: Any | None = None
        self._len = 0

    @staticmethod
    def _tkey(key: bytes) -> bytes:
        return key.replace(b"\x00", b"\x00\x01") + b"\x00\x00"

    @staticmethod
    def _untkey(tkey: bytes) -> bytes:
        return tkey[:-2].replace(b"\x00\x01", b"\x00")

    # -- lookup -------------------------------------------------------------------

    def _descend(self, tkey: bytes) -> _CritLeaf | None:
        node = self._root
        while isinstance(node, _CritNode):
            COUNTERS.node_visit(_ENTRY_BYTES, lines_touched=1)
            node = node.right if _bit_at(tkey, node.bit) else node.left
        return node

    def get(self, key: bytes) -> Any | None:
        leaf = self._descend(self._tkey(key))
        if leaf is None:
            return None
        COUNTERS.node_visit(8, lines_touched=1)
        COUNTERS.key_compares(1)
        return leaf.value if leaf.key == self._tkey(key) else None

    # -- insert --------------------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        tkey = self._tkey(key)
        if self._root is None:
            self._root = _CritLeaf(tkey, value)
            self._len = 1
            return True
        nearest = self._descend(tkey)
        if nearest.key == tkey:
            return False
        diff = _first_diff_bit(nearest.key, tkey)
        new_leaf = _CritLeaf(tkey, value)
        goes_right = _bit_at(tkey, diff)
        # Re-descend, stopping where the new crit bit belongs (crit
        # bits increase along any root-to-leaf path).
        parent: _CritNode | None = None
        node = self._root
        while isinstance(node, _CritNode) and node.bit < diff:
            parent = node
            node = node.right if _bit_at(tkey, node.bit) else node.left
        branch = _CritNode(
            diff,
            node if goes_right else new_leaf,
            new_leaf if goes_right else node,
        )
        if parent is None:
            self._root = branch
        elif _bit_at(tkey, parent.bit):
            parent.right = branch
        else:
            parent.left = branch
        self._len += 1
        return True

    def update(self, key: bytes, value: Any) -> bool:
        leaf = self._descend(self._tkey(key))
        if leaf is not None and leaf.key == self._tkey(key):
            leaf.value = value
            return True
        return False

    def delete(self, key: bytes) -> bool:
        tkey = self._tkey(key)
        parent = grand = None
        node = self._root
        while isinstance(node, _CritNode):
            grand, parent = parent, node
            node = node.right if _bit_at(tkey, node.bit) else node.left
        if node is None or node.key != tkey:
            return False
        if parent is None:
            self._root = None
        else:
            sibling = (
                parent.left if _bit_at(tkey, parent.bit) else parent.right
            )
            if grand is None:
                self._root = sibling
            elif _bit_at(tkey, grand.bit):
                grand.right = sibling
            else:
                grand.left = sibling
        self._len -= 1
        return True

    # -- iteration ----------------------------------------------------------------------

    def _emit(self, node: Any) -> Iterator[tuple[bytes, Any]]:
        if node is None:
            return
        if isinstance(node, _CritLeaf):
            yield self._untkey(node.key), node.value
            return
        yield from self._emit(node.left)
        yield from self._emit(node.right)

    def items(self) -> Iterator[tuple[bytes, Any]]:
        yield from self._emit(self._root)

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        # Crit-bit trees are ordered tries: in-order emission is sorted.
        for k, v in self.items():
            if k >= key:
                yield k, v

    def __len__(self) -> int:
        return self._len

    # -- memory -----------------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """HOT compound layout: inner entries packed 32 per node."""
        n_inner = max(0, self._len - 1)
        n_compound = (n_inner + COMPOUND_FANOUT - 1) // COMPOUND_FANOUT
        return (
            n_compound * _COMPOUND_HEADER
            + n_inner * _ENTRY_BYTES
            + self._len * 8  # leaf record pointers
        )
