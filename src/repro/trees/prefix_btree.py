"""Prefix B+tree (Bayer & Unterauer), used in the HOPE evaluation.

Behaviourally a B+tree; the space win comes from key compression
inside nodes: each leaf stores its keys' common prefix once plus the
per-key suffixes (tail compression), and internal separators are
truncated to the shortest prefix that still separates their neighbours
(head compression).  Figure 6.21 shows it therefore benefits less from
HOPE than a plain B+tree — part of the "benefit ordered by key-storage
completeness" result of Figure 6.7.
"""

from __future__ import annotations

from .base import POINTER_BYTES
from .btree import BPlusTree, _Inner, _Leaf

_NODE_HEADER_BYTES = 16
_OFFSET_BYTES = 2


def common_prefix_len(keys: list[bytes]) -> int:
    if not keys:
        return 0
    first, last = keys[0], keys[-1]
    n = min(len(first), len(last))
    i = 0
    while i < n and first[i] == last[i]:
        i += 1
    return i


def separator_length(left: bytes, right: bytes) -> int:
    """Shortest prefix of ``right`` that still exceeds ``left``."""
    n = min(len(left), len(right))
    i = 0
    while i < n and left[i] == right[i]:
        i += 1
    return min(i + 1, len(right))


class PrefixBPlusTree(BPlusTree):
    """B+tree with head/tail key compression in its memory layout."""

    def memory_bytes(self) -> int:
        total = 0
        node = self._leftmost_leaf()
        prev_last: bytes | None = None
        while node is not None:
            lcp = common_prefix_len(node.keys)
            suffix_bytes = sum(len(k) - lcp for k in node.keys)
            total += (
                _NODE_HEADER_BYTES
                + lcp
                + suffix_bytes
                + len(node.keys) * (_OFFSET_BYTES + POINTER_BYTES)
            )
            prev_last = node.keys[-1] if node.keys else prev_last
            node = node.next
        total += self._inner_bytes(self._root)
        return total

    def _inner_bytes(self, node) -> int:
        if isinstance(node, _Leaf):
            return 0
        total = _NODE_HEADER_BYTES + len(node.children) * POINTER_BYTES
        for i, sep in enumerate(node.keys):
            left = self._max_key(node.children[i])
            total += separator_length(left, sep) + _OFFSET_BYTES
        for child in node.children:
            total += self._inner_bytes(child)
        return total

    @staticmethod
    def _max_key(node) -> bytes:
        while isinstance(node, _Inner):
            node = node.children[-1]
        return node.keys[-1] if node.keys else b""
