"""The Adaptive Radix Tree (ART) of Leis et al. (Section 2.1).

A 256-way radix tree with four adaptive node layouts (Node4, Node16,
Node48, Node256), lazy expansion (single-key subtrees are collapsed to
a leaf holding the full key) and path compression (one-child chains are
collapsed into a per-node prefix).

Following the original design, leaves are modeled as tagged record
pointers: the full key lives in the database record, not in the index,
which is why ART's modeled memory excludes key bytes (and why Hybrid
ART must fetch records for full-key comparisons, Section 5.3.2).

This implementation keeps one logical child table per node (sorted byte
keys + children) and *models* the adaptive layout: a node's type — and
therefore its memory footprint and cache behaviour — is derived from
its fanout exactly as ART would choose it.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..bench.counters import COUNTERS
from .base import OrderedIndex

#: Modeled node sizes in bytes: 16-byte header (type, count, prefix) plus
#: the layout-specific key/child arrays (Figure 2.2).
NODE4_BYTES = 16 + 4 + 4 * 8
NODE16_BYTES = 16 + 16 + 16 * 8
NODE48_BYTES = 16 + 256 + 48 * 8
NODE256_BYTES = 16 + 256 * 8
LEAF_BYTES = 8  # tagged record pointer


def node_type_for_fanout(fanout: int) -> tuple[str, int, int]:
    """(type name, modeled bytes, capacity) ART would pick for a fanout."""
    if fanout <= 4:
        return "Node4", NODE4_BYTES, 4
    if fanout <= 16:
        return "Node16", NODE16_BYTES, 16
    if fanout <= 48:
        return "Node48", NODE48_BYTES, 48
    return "Node256", NODE256_BYTES, 256


class _ArtLeaf:
    __slots__ = ("key", "value")

    def __init__(self, key: bytes, value: Any) -> None:
        self.key = key
        self.value = value


class _ArtNode:
    __slots__ = ("prefix", "keys", "children", "terminal")

    def __init__(self, prefix: bytes = b"") -> None:
        self.prefix = prefix
        self.keys: list[int] = []  # sorted branch bytes
        self.children: list[Any] = []
        self.terminal: _ArtLeaf | None = None  # key ending exactly here

    def fanout(self) -> int:
        return len(self.keys) + (1 if self.terminal is not None else 0)

    def find(self, byte: int) -> Any | None:
        idx = bisect.bisect_left(self.keys, byte)
        if idx < len(self.keys) and self.keys[idx] == byte:
            return self.children[idx]
        return None

    def attach(self, byte: int, child: Any) -> None:
        idx = bisect.bisect_left(self.keys, byte)
        self.keys.insert(idx, byte)
        self.children.insert(idx, child)

    def replace(self, byte: int, child: Any) -> None:
        idx = bisect.bisect_left(self.keys, byte)
        self.children[idx] = child

    def detach(self, byte: int) -> None:
        idx = bisect.bisect_left(self.keys, byte)
        self.keys.pop(idx)
        self.children.pop(idx)


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class ART(OrderedIndex):
    """Dynamic Adaptive Radix Tree over byte keys."""

    def __init__(self) -> None:
        self._root: Any | None = None
        self._len = 0

    # -- profiling helper ----------------------------------------------------

    @staticmethod
    def _visit(node: Any) -> None:
        if isinstance(node, _ArtLeaf):
            # Leaf pointer + the record line read for key verification.
            COUNTERS.node_visit(LEAF_BYTES, lines_touched=1)
            return
        _, size, _ = node_type_for_fanout(node.fanout())
        # Node4/16 fit a line or two; Node48 reads index byte + slot;
        # Node256 reads exactly one slot.
        lines = 1 if size <= 128 else 2
        COUNTERS.node_visit(size, lines_touched=lines)

    # -- lookup ----------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        node = self._root
        depth = 0
        while node is not None:
            self._visit(node)
            if isinstance(node, _ArtLeaf):
                COUNTERS.key_compares(1)
                return node.value if node.key == key else None
            if node.prefix:
                if key[depth : depth + len(node.prefix)] != node.prefix:
                    return None
                depth += len(node.prefix)
            if depth == len(key):
                return node.terminal.value if node.terminal is not None else None
            node = node.find(key[depth])
            depth += 1
        return None

    # -- insert ----------------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        if self._root is None:
            self._root = _ArtLeaf(key, value)
            self._len = 1
            return True
        inserted = self._insert_rec_root(key, value)
        if inserted:
            self._len += 1
        return inserted

    def _insert_rec_root(self, key: bytes, value: Any) -> bool:
        new_root, inserted = self._insert_rec(self._root, key, 0, value)
        self._root = new_root
        return inserted

    def _insert_rec(
        self, node: Any, key: bytes, depth: int, value: Any
    ) -> tuple[Any, bool]:
        """Insert under ``node`` (at ``depth`` bytes consumed); returns
        the (possibly replaced) node and whether a new key was added."""
        if isinstance(node, _ArtLeaf):
            if node.key == key:
                return node, False
            return self._split_leaf(node, key, depth, value), True

        plen = len(node.prefix)
        rest = key[depth : depth + plen]
        if rest != node.prefix:
            # Prefix mismatch: split the compressed path (path compression).
            p = _common_prefix_len(node.prefix, rest)
            parent = _ArtNode(node.prefix[:p])
            old_branch = node.prefix[p]
            node.prefix = node.prefix[p + 1 :]
            parent.attach(old_branch, node)
            if depth + p == len(key):
                parent.terminal = _ArtLeaf(key, value)
            else:
                parent.attach(key[depth + p], _ArtLeaf(key, value))
            return parent, True

        depth += plen
        if depth == len(key):
            if node.terminal is not None:
                return node, False
            node.terminal = _ArtLeaf(key, value)
            return node, True

        child = node.find(key[depth])
        if child is None:
            node.attach(key[depth], _ArtLeaf(key, value))
            return node, True
        new_child, inserted = self._insert_rec(child, key, depth + 1, value)
        if new_child is not child:
            node.replace(key[depth], new_child)
        return node, inserted

    def _split_leaf(
        self, leaf: _ArtLeaf, key: bytes, depth: int, value: Any
    ) -> _ArtNode:
        """Replace a leaf by a node distinguishing old and new key."""
        old_rest = leaf.key[depth:]
        new_rest = key[depth:]
        p = _common_prefix_len(old_rest, new_rest)
        node = _ArtNode(old_rest[:p])
        if len(old_rest) == p:
            node.terminal = leaf
        else:
            node.attach(old_rest[p], leaf)
        if len(new_rest) == p:
            node.terminal = _ArtLeaf(key, value)
        else:
            node.attach(new_rest[p], _ArtLeaf(key, value))
        return node

    # -- update / delete --------------------------------------------------------

    def update(self, key: bytes, value: Any) -> bool:
        leaf = self._find_leaf(key)
        if leaf is None:
            return False
        leaf.value = value
        return True

    def _find_leaf(self, key: bytes) -> _ArtLeaf | None:
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _ArtLeaf):
                return node if node.key == key else None
            if node.prefix:
                if key[depth : depth + len(node.prefix)] != node.prefix:
                    return None
                depth += len(node.prefix)
            if depth == len(key):
                return node.terminal
            node = node.find(key[depth])
            depth += 1
        return None

    def delete(self, key: bytes) -> bool:
        if self._root is None:
            return False
        new_root, deleted = self._delete_rec(self._root, key, 0)
        if deleted:
            self._root = new_root
            self._len -= 1
        return deleted

    def _delete_rec(self, node: Any, key: bytes, depth: int) -> tuple[Any, bool]:
        if isinstance(node, _ArtLeaf):
            return (None, True) if node.key == key else (node, False)
        plen = len(node.prefix)
        if key[depth : depth + plen] != node.prefix:
            return node, False
        depth += plen
        if depth == len(key):
            if node.terminal is None:
                return node, False
            node.terminal = None
            return self._shrink(node), True
        child = node.find(key[depth])
        if child is None:
            return node, False
        new_child, deleted = self._delete_rec(child, key, depth + 1)
        if not deleted:
            return node, False
        if new_child is None:
            node.detach(key[depth])
        elif new_child is not child:
            node.replace(key[depth], new_child)
        return self._shrink(node), True

    def _shrink(self, node: _ArtNode) -> Any:
        """Re-apply lazy expansion / path compression after a removal."""
        if node.terminal is not None and not node.keys:
            return node.terminal
        if node.terminal is None and len(node.keys) == 1:
            child = node.children[0]
            if isinstance(child, _ArtLeaf):
                return child
            child.prefix = node.prefix + bytes([node.keys[0]]) + child.prefix
            return child
        if node.terminal is None and not node.keys:
            return None
        return node

    # -- iteration ----------------------------------------------------------------

    def _emit_all(self, node: Any) -> Iterator[tuple[bytes, Any]]:
        if isinstance(node, _ArtLeaf):
            yield node.key, node.value
            return
        if node.terminal is not None:
            yield node.terminal.key, node.terminal.value
        for child in node.children:
            yield from self._emit_all(child)

    def _lb(self, node: Any, path: bytes, key: bytes) -> Iterator[tuple[bytes, Any]]:
        if isinstance(node, _ArtLeaf):
            if node.key >= key:
                yield node.key, node.value
            return
        full = path + node.prefix
        key_prefix = key[: len(full)]
        if full > key_prefix:
            yield from self._emit_all(node)
            return
        if full < key_prefix:
            return
        if len(key) <= len(full):
            yield from self._emit_all(node)
            return
        branch = key[len(full)]
        for byte, child in zip(node.keys, node.children):
            if byte < branch:
                continue
            if byte == branch:
                yield from self._lb(child, full + bytes([byte]), key)
            else:
                yield from self._emit_all(child)

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        if self._root is not None:
            yield from self._lb(self._root, b"", key)

    def items(self) -> Iterator[tuple[bytes, Any]]:
        if self._root is not None:
            yield from self._emit_all(self._root)

    def __len__(self) -> int:
        return self._len

    # -- statistics -------------------------------------------------------------

    def _walk_nodes(self) -> Iterator[_ArtNode]:
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, _ArtNode):
                yield node
                stack.extend(node.children)

    def node_stats(self) -> dict[str, int]:
        """Count of inner nodes by modeled type."""
        stats = {"Node4": 0, "Node16": 0, "Node48": 0, "Node256": 0}
        for node in self._walk_nodes():
            name, _, _ = node_type_for_fanout(node.fanout())
            stats[name] += 1
        return stats

    def occupancy(self) -> float:
        """Average slot utilisation across inner nodes (paper: ~51 %)."""
        used = total = 0
        for node in self._walk_nodes():
            _, _, capacity = node_type_for_fanout(node.fanout())
            used += node.fanout()
            total += capacity
        return used / total if total else 1.0

    def memory_bytes(self) -> int:
        total = self._len * LEAF_BYTES
        for node in self._walk_nodes():
            _, size, _ = node_type_for_fanout(node.fanout())
            total += size
        return total
