"""Dynamic in-memory search trees (Chapter 2 baselines).

The four structures the thesis surveys from production OLTP systems —
B+tree, Masstree, Skip List, and ART — plus the extra baselines used by
the HOPE integration study (Prefix B+tree, HOT, T-Tree).
"""

from .base import OrderedIndex, StaticOrderedIndex, heap_key_bytes, packed_key_bytes
from .btree import BPlusTree, DEFAULT_NODE_SLOTS, NODE_BYTES
from .gapped_btree import GappedBPlusTree, GappedView, DEFAULT_LEAF_CAPACITY
from .skiplist import PagedSkipList
from .art import ART
from .masstree import Masstree
from .prefix_btree import PrefixBPlusTree
from .hot import HOTrie
from .ttree import TTree

__all__ = [
    "OrderedIndex",
    "StaticOrderedIndex",
    "heap_key_bytes",
    "packed_key_bytes",
    "BPlusTree",
    "GappedBPlusTree",
    "GappedView",
    "DEFAULT_LEAF_CAPACITY",
    "PagedSkipList",
    "ART",
    "Masstree",
    "PrefixBPlusTree",
    "HOTrie",
    "TTree",
    "DEFAULT_NODE_SLOTS",
    "NODE_BYTES",
]
