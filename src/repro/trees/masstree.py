"""Masstree: a trie of B+trees over 8-byte keyslices (Section 2.1).

Masstree (Mao et al.) divides keys into fixed-length 8-byte keyslices.
Each trie layer is a B+tree keyed by the slice; a leaf entry either
owns its keyslice uniquely (value pointer + remaining key suffix stored
in the layer's *keybag*) or links to a lower-layer B+tree shared by all
keys with that 8-byte prefix (Figure 2.1).

Within a layer, slices are ordered by (padded bytes, slice length) so
that short keys sort before their extensions — we materialise that as a
9-byte B+tree key: the zero-padded slice plus a length byte.

The original implementation allocates keybag memory aggressively to
avoid resizing; the memory model below reflects that waste (it is one
of the things Compact Masstree later removes).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..bench.counters import COUNTERS
from .base import OrderedIndex
from .btree import BPlusTree

SLICE_BYTES = 8
#: Masstree B+tree fanout (the original uses width-15 nodes).
LAYER_NODE_SLOTS = 15
#: Modeled Masstree node size: 15 slots x (8B keyslice + 8B pointer)
#: plus the real structure's per-node version word, permutation array,
#: parent pointer and keybag pointer (Mao et al. report ~320 B nodes).
LAYER_NODE_BYTES = 16 + LAYER_NODE_SLOTS * 16 + 64


def slice_key(fragment: bytes) -> bytes:
    """9-byte order-preserving encoding of one keyslice.

    ``fragment`` is the (possibly short) first slice of the remaining
    key: zero-pad to 8 bytes and append the true length so that ``b"ab"``
    sorts before ``b"ab\\x00"``.
    """
    if len(fragment) > SLICE_BYTES:
        raise ValueError("fragment longer than one keyslice")
    return fragment.ljust(SLICE_BYTES, b"\0") + bytes([len(fragment)])


class _Entry:
    """A layer leaf entry: either a value (+ suffix) or a lower layer."""

    __slots__ = ("suffix", "value", "layer")

    def __init__(
        self,
        suffix: bytes | None = None,
        value: Any = None,
        layer: "_Layer | None" = None,
    ) -> None:
        self.suffix = suffix
        self.value = value
        self.layer = layer

    @property
    def is_layer(self) -> bool:
        return self.layer is not None


class _Layer:
    """One trie layer: a B+tree from 9-byte slice keys to entries."""

    __slots__ = ("tree",)

    def __init__(self) -> None:
        self.tree = BPlusTree(node_slots=LAYER_NODE_SLOTS)


class Masstree(OrderedIndex):
    """Dynamic Masstree over byte keys."""

    def __init__(self) -> None:
        self._root = _Layer()
        self._len = 0

    # -- core walk ---------------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        if self._insert_into(self._root, key, value):
            self._len += 1
            return True
        return False

    def _insert_into(self, layer: _Layer, rest: bytes, value: Any) -> bool:
        fragment = rest[:SLICE_BYTES]
        skey = slice_key(fragment)
        entry: _Entry | None = layer.tree.get(skey)
        if entry is None:
            suffix = rest[SLICE_BYTES:]
            layer.tree.insert(skey, _Entry(suffix=suffix, value=value))
            return True
        if entry.is_layer:
            return self._insert_into(entry.layer, rest[SLICE_BYTES:], value)
        suffix = rest[SLICE_BYTES:]
        if entry.suffix == suffix:
            return False  # duplicate key
        # Two distinct keys share this 8-byte slice: push both suffixes
        # into a fresh lower layer (only possible for full-length slices).
        lower = _Layer()
        self._insert_into(lower, entry.suffix, entry.value)
        self._insert_into(lower, suffix, value)
        entry.suffix = None
        entry.value = None
        entry.layer = lower
        return True

    def get(self, key: bytes) -> Any | None:
        layer = self._root
        rest = key
        while True:
            fragment = rest[:SLICE_BYTES]
            entry: _Entry | None = layer.tree.get(slice_key(fragment))
            if entry is None:
                return None
            if entry.is_layer:
                layer = entry.layer
                rest = rest[SLICE_BYTES:]
                continue
            COUNTERS.key_compares(1)
            return entry.value if entry.suffix == rest[SLICE_BYTES:] else None

    def update(self, key: bytes, value: Any) -> bool:
        layer = self._root
        rest = key
        while True:
            entry: _Entry | None = layer.tree.get(slice_key(rest[:SLICE_BYTES]))
            if entry is None:
                return False
            if entry.is_layer:
                layer, rest = entry.layer, rest[SLICE_BYTES:]
                continue
            if entry.suffix == rest[SLICE_BYTES:]:
                entry.value = value
                return True
            return False

    def delete(self, key: bytes) -> bool:
        deleted = self._delete_from(self._root, key)
        if deleted:
            self._len -= 1
        return deleted

    def _delete_from(self, layer: _Layer, rest: bytes) -> bool:
        skey = slice_key(rest[:SLICE_BYTES])
        entry: _Entry | None = layer.tree.get(skey)
        if entry is None:
            return False
        if entry.is_layer:
            deleted = self._delete_from(entry.layer, rest[SLICE_BYTES:])
            if deleted and len(entry.layer.tree) == 1:
                # Collapse a single-entry lower layer back into this one.
                (child_skey, child_entry) = next(entry.layer.tree.items())
                if not child_entry.is_layer:
                    fragment = child_skey[: child_skey[SLICE_BYTES]]
                    entry.suffix = fragment + child_entry.suffix
                    entry.value = child_entry.value
                    entry.layer = None
            return deleted
        if entry.suffix == rest[SLICE_BYTES:]:
            return layer.tree.delete(skey)
        return False

    # -- iteration ------------------------------------------------------------------

    def _emit_layer(self, layer: _Layer, prefix: bytes) -> Iterator[tuple[bytes, Any]]:
        for skey, entry in layer.tree.items():
            fragment = skey[: skey[SLICE_BYTES]]
            if entry.is_layer:
                yield from self._emit_layer(entry.layer, prefix + fragment)
            else:
                yield prefix + fragment + entry.suffix, entry.value

    def items(self) -> Iterator[tuple[bytes, Any]]:
        yield from self._emit_layer(self._root, b"")

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        yield from self._lb_layer(self._root, b"", key)

    def _lb_layer(
        self, layer: _Layer, prefix: bytes, key: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        rest = key[len(prefix) :]
        target = slice_key(rest[:SLICE_BYTES])
        for skey, entry in layer.tree.lower_bound(target):
            fragment = skey[: skey[SLICE_BYTES]]
            if skey == target:
                if entry.is_layer:
                    yield from self._lb_layer(entry.layer, prefix + fragment, key)
                else:
                    full = prefix + fragment + entry.suffix
                    if full >= key:
                        yield full, entry.value
            elif entry.is_layer:
                yield from self._emit_layer(entry.layer, prefix + fragment)
            else:
                yield prefix + fragment + entry.suffix, entry.value

    def __len__(self) -> int:
        return self._len

    # -- statistics --------------------------------------------------------------------

    def _walk_layers(self) -> Iterator[_Layer]:
        stack = [self._root]
        while stack:
            layer = stack.pop()
            yield layer
            for _, entry in layer.tree.items():
                if entry.is_layer:
                    stack.append(entry.layer)

    def layer_count(self) -> int:
        return sum(1 for _ in self._walk_layers())

    def memory_bytes(self) -> int:
        """Modeled memory: per-layer B+tree nodes plus aggressive keybags."""
        total = 0
        for layer in self._walk_layers():
            leaves, inners = layer.tree.node_count()
            total += (leaves + inners) * LAYER_NODE_BYTES
            # Keybag model: each stored suffix is an allocation rounded up
            # to a 16-byte granule plus an 8-byte slot pointer (the
            # "aggressive" allocation the Compaction Rule removes).
            for _, entry in layer.tree.items():
                if not entry.is_layer and entry.suffix:
                    granules = (len(entry.suffix) + 15) // 16
                    total += granules * 16 + 8
        return total
