"""T-Tree: the classic main-memory index (Figure 6.7 baseline).

A T-Tree is a balanced binary tree whose nodes each hold a sorted array
of keys.  It appears in the thesis as the key-storage-completeness
extreme: T-Tree nodes store (pointers to) complete keys, so it gets the
*full* benefit from HOPE key compression.

We implement an unbalanced-by-insertion-order binary tree of bounded
arrays with midpoint splits — sufficient for the random-key workloads
of the evaluation (randomised input keeps it shallow) and faithful on
the memory axis, which is what the HOPE comparison measures.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..bench.counters import COUNTERS
from .base import OrderedIndex, POINTER_BYTES, heap_key_bytes

NODE_CAPACITY = 32
_NODE_HEADER = 16 + 2 * POINTER_BYTES  # header + left/right pointers


class _TNode:
    __slots__ = ("keys", "values", "left", "right")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[Any] = []
        self.left: _TNode | None = None
        self.right: _TNode | None = None


class TTree(OrderedIndex):
    """Binary tree of sorted key arrays."""

    def __init__(self, capacity: int = NODE_CAPACITY) -> None:
        self._capacity = capacity
        self._root: _TNode | None = None
        self._len = 0
        self._n_nodes = 0

    def _bounding(self, key: bytes) -> tuple[_TNode | None, _TNode | None]:
        """(bounding-or-leafmost node, its parent) for ``key``."""
        node, parent = self._root, None
        while node is not None:
            COUNTERS.node_visit(
                _NODE_HEADER + self._capacity * 2 * POINTER_BYTES,
                lines_touched=max(1, len(node.keys).bit_length()),
            )
            if node.keys and key < node.keys[0] and node.left is not None:
                node, parent = node.left, node
            elif node.keys and key > node.keys[-1] and node.right is not None:
                node, parent = node.right, node
            else:
                return node, parent
        return None, None

    def insert(self, key: bytes, value: Any) -> bool:
        if self._root is None:
            self._root = _TNode()
            self._n_nodes = 1
        node, _ = self._bounding(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return False
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._len += 1
        if len(node.keys) > self._capacity:
            self._split(node)
        return True

    def _split(self, node: _TNode) -> None:
        """Move the key halves into new left/right descendants."""
        mid = len(node.keys) // 2
        left_keys, left_vals = node.keys[:mid], node.values[:mid]
        node.keys, node.values = node.keys[mid:], node.values[mid:]
        new = _TNode()
        new.keys, new.values = left_keys, left_vals
        self._n_nodes += 1
        if node.left is None:
            node.left = new
            return
        probe = node.left
        while probe.right is not None:
            probe = probe.right
        probe.right = new

    def get(self, key: bytes) -> Any | None:
        if self._root is None:
            return None
        node, _ = self._bounding(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def update(self, key: bytes, value: Any) -> bool:
        if self._root is None:
            return False
        node, _ = self._bounding(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return True
        return False

    def delete(self, key: bytes) -> bool:
        if self._root is None:
            return False
        node, _ = self._bounding(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.keys.pop(idx)
            node.values.pop(idx)
            self._len -= 1
            return True
        return False

    def _inorder(self, node: _TNode | None) -> Iterator[tuple[bytes, Any]]:
        if node is None:
            return
        yield from self._inorder(node.left)
        yield from zip(node.keys, node.values)
        yield from self._inorder(node.right)

    def items(self) -> Iterator[tuple[bytes, Any]]:
        yield from self._inorder(self._root)

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        for k, v in self.items():
            if k >= key:
                yield k, v

    def __len__(self) -> int:
        return self._len

    def memory_bytes(self) -> int:
        """Full node arrays plus complete key storage (T-Trees store
        whole keys: the maximal HOPE win)."""
        total = self._n_nodes * (
            _NODE_HEADER + self._capacity * 2 * POINTER_BYTES
        )
        total += sum(heap_key_bytes(k) for k, _ in self.items())
        return total
