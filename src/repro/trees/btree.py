"""An STX-style in-memory B+tree (Section 2.1).

The thesis baselines against the STX B+tree with 512-byte nodes, the
best size for in-memory operation.  With 8-byte key references and
8-byte values that gives 32 entry slots per node; nodes split at full
and average ~69 % occupancy under random inserts, which is exactly the
pre-allocated empty space the Compaction Rule later removes.

Keys are ``bytes``; values are opaque.  Secondary-index use is supported
by ``allow_duplicates=True``, in which case the same key may be inserted
multiple times with different values (the original-structure behaviour
Figure 5.10 compares against).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..bench.counters import COUNTERS
from .base import OrderedIndex, POINTER_BYTES, heap_key_bytes

#: STX node size the paper found best for in-memory workloads.
NODE_BYTES = 512
_NODE_HEADER_BYTES = 16
#: Slots per node: (512 - header) // (8-byte key ref + 8-byte value/child).
DEFAULT_NODE_SLOTS = (NODE_BYTES - _NODE_HEADER_BYTES) // (2 * POINTER_BYTES)


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[bytes] = []  # separator keys, len == len(children) - 1
        self.children: list[Any] = []


class BPlusTree(OrderedIndex):
    """A dynamic B+tree with linked leaves."""

    def __init__(
        self, node_slots: int = DEFAULT_NODE_SLOTS, allow_duplicates: bool = False
    ) -> None:
        if node_slots < 4:
            raise ValueError("node_slots must be >= 4")
        self._slots = node_slots
        self._allow_duplicates = allow_duplicates
        self._root: _Leaf | _Inner = _Leaf()
        self._height = 1
        self._len = 0
        self._n_leaves = 1
        self._n_inners = 0

    # -- internal helpers ---------------------------------------------------

    def _find_leaf(self, key: bytes) -> tuple[_Leaf, list[tuple[_Inner, int]]]:
        """Descend to the leaf for ``key``, recording the path."""
        node = self._root
        path: list[tuple[_Inner, int]] = []
        while isinstance(node, _Inner):
            # Binary search touches ~log2(slots) scattered cache lines.
            COUNTERS.node_visit(NODE_BYTES, lines_touched=max(1, len(node.keys).bit_length()))
            COUNTERS.key_compares(max(1, len(node.keys).bit_length()))
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        COUNTERS.node_visit(NODE_BYTES, lines_touched=max(1, len(node.keys).bit_length()))
        COUNTERS.key_compares(max(1, len(node.keys).bit_length()))
        return node, path

    def _split_leaf(self, leaf: _Leaf) -> tuple[bytes, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        self._n_leaves += 1
        return right.keys[0], right

    def _split_inner(self, inner: _Inner) -> tuple[bytes, _Inner]:
        mid = len(inner.keys) // 2
        sep = inner.keys[mid]
        right = _Inner()
        right.keys = inner.keys[mid + 1 :]
        right.children = inner.children[mid + 1 :]
        inner.keys = inner.keys[:mid]
        inner.children = inner.children[: mid + 1]
        self._n_inners += 1
        return sep, right

    def _insert_into_parents(
        self, path: list[tuple[_Inner, int]], sep: bytes, right: Any
    ) -> None:
        while path:
            parent, idx = path.pop()
            parent.keys.insert(idx, sep)
            parent.children.insert(idx + 1, right)
            if len(parent.children) <= self._slots:
                return
            sep, right = self._split_inner(parent)
        new_root = _Inner()
        new_root.keys = [sep]
        new_root.children = [self._root, right]
        self._root = new_root
        self._n_inners += 1
        self._height += 1

    # -- OrderedIndex API ----------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        leaf, path = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if (
            not self._allow_duplicates
            and idx < len(leaf.keys)
            and leaf.keys[idx] == key
        ):
            return False
        if self._allow_duplicates:
            idx = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._len += 1
        if len(leaf.keys) > self._slots:
            sep, right = self._split_leaf(leaf)
            self._insert_into_parents(path, sep, right)
        return True

    def get(self, key: bytes) -> Any | None:
        leaf, _ = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def get_all(self, key: bytes) -> list[Any]:
        """All values for ``key`` (secondary-index reads)."""
        out = []
        for k, v in self.lower_bound(key):
            if k != key:
                break
            out.append(v)
        return out

    def update(self, key: bytes, value: Any) -> bool:
        leaf, _ = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            return True
        return False

    def delete(self, key: bytes) -> bool:
        leaf, path = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self._len -= 1
        # Lazy rebalancing: only collapse completely empty leaves.
        if not leaf.keys and path:
            parent, cidx = path[-1]
            if len(parent.children) > 1:
                prev = parent.children[cidx - 1] if cidx > 0 else None
                if isinstance(prev, _Leaf):
                    prev.next = leaf.next
                elif cidx == 0:
                    # Find the left neighbour through the leaf chain.
                    first = self._leftmost_leaf()
                    node = first
                    while node is not None and node.next is not leaf:
                        node = node.next
                    if node is not None:
                        node.next = leaf.next
                parent.children.pop(cidx)
                if cidx > 0:
                    parent.keys.pop(cidx - 1)
                elif parent.keys:
                    parent.keys.pop(0)
                self._n_leaves -= 1
        return True

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        return node

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        leaf, _ = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        node: _Leaf | None = leaf
        while node is not None:
            for i in range(idx, len(node.keys)):
                yield node.keys[i], node.values[i]
            node = node.next
            idx = 0

    def items(self) -> Iterator[tuple[bytes, Any]]:
        node: _Leaf | None = self._leftmost_leaf()
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def __len__(self) -> int:
        return self._len

    # -- statistics ----------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    def node_count(self) -> tuple[int, int]:
        """(leaves, inner nodes)."""
        return self._n_leaves, self._n_inners

    def occupancy(self) -> float:
        """Average fraction of leaf slots in use (paper: ~69 % random)."""
        return self._len / (self._n_leaves * self._slots)

    def memory_bytes(self) -> int:
        node_memory = (self._n_leaves + self._n_inners) * NODE_BYTES
        key_heap = sum(heap_key_bytes(k) for k, _ in self.items())
        return node_memory + key_heap
