"""A paged-deterministic Skip List (Section 2.1).

The thesis uses a paged-deterministic Skip List variant "that resembles
a B+tree": entries live in linked pages at level 0, and each higher
level is a linked list of index pages whose entries point at pages one
level below.  Pages split deterministically on overflow, so occupancy
behaviour (~69 % average, 50 % for monotonic inserts) matches the
B+tree, exactly as Figure 2.5 and 5.5 report.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..bench.counters import COUNTERS
from .base import OrderedIndex, POINTER_BYTES, heap_key_bytes

PAGE_BYTES = 512
_PAGE_HEADER_BYTES = 16
DEFAULT_PAGE_SLOTS = (PAGE_BYTES - _PAGE_HEADER_BYTES) // (2 * POINTER_BYTES)


class _Page:
    """One skip-list page: parallel key / down-pointer (or value) arrays."""

    __slots__ = ("keys", "ptrs", "next")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.ptrs: list[Any] = []  # values at level 0, pages above
        self.next: _Page | None = None


class PagedSkipList(OrderedIndex):
    """Deterministic paged skip list with B+tree-like behaviour."""

    def __init__(self, page_slots: int = DEFAULT_PAGE_SLOTS) -> None:
        if page_slots < 4:
            raise ValueError("page_slots must be >= 4")
        self._slots = page_slots
        self._heads: list[_Page] = [_Page()]  # index 0 = data level
        self._len = 0
        self._n_pages = 1

    # -- descent ---------------------------------------------------------------

    def _descend(
        self, key: bytes, adjust: bool = False
    ) -> tuple[_Page, list[tuple[_Page, int]]]:
        """Walk from the top level to the data page for ``key``.

        Returns the level-0 page and the (page, slot) path through the
        index levels (top first).  With ``adjust`` (insert descents), a
        key smaller than the leftmost separator lowers that separator,
        preserving the invariant keys[i] == min key under ptrs[i] —
        without it a later split can splice its right half before the
        head pointer.
        """
        path: list[tuple[_Page, int]] = []
        page = self._heads[-1]
        for level in range(len(self._heads) - 1, 0, -1):
            COUNTERS.node_visit(PAGE_BYTES, lines_touched=max(1, len(page.keys).bit_length()))
            COUNTERS.key_compares(max(1, len(page.keys).bit_length()))
            # Lateral skip: move right while the next page starts <= key.
            while page.next is not None and page.next.keys and page.next.keys[0] <= key:
                page = page.next
                COUNTERS.node_visit(PAGE_BYTES, lines_touched=1)
            idx = bisect.bisect_right(page.keys, key) - 1
            if idx < 0:
                idx = 0
                if adjust and page.keys and key < page.keys[0]:
                    page.keys[0] = key
            path.append((page, idx))
            page = page.ptrs[idx]
        COUNTERS.node_visit(PAGE_BYTES, lines_touched=max(1, len(page.keys).bit_length()))
        COUNTERS.key_compares(max(1, len(page.keys).bit_length()))
        while page.next is not None and page.next.keys and page.next.keys[0] <= key:
            page = page.next
            COUNTERS.node_visit(PAGE_BYTES, lines_touched=1)
        return page, path

    # -- OrderedIndex API --------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        page, path = self._descend(key, adjust=True)
        idx = bisect.bisect_left(page.keys, key)
        if idx < len(page.keys) and page.keys[idx] == key:
            return False
        page.keys.insert(idx, key)
        page.ptrs.insert(idx, value)
        self._len += 1
        self._split_if_needed(page, path)
        return True

    def _split_if_needed(self, page: _Page, path: list[tuple[_Page, int]]) -> None:
        while len(page.keys) > self._slots:
            mid = len(page.keys) // 2
            right = _Page()
            right.keys = page.keys[mid:]
            right.ptrs = page.ptrs[mid:]
            right.next = page.next
            page.keys = page.keys[:mid]
            page.ptrs = page.ptrs[:mid]
            page.next = right
            self._n_pages += 1
            sep = right.keys[0]
            if path:
                parent, idx = path.pop()
                # The parent's entry idx points at `page`; insert right after.
                insert_at = bisect.bisect_right(parent.keys, sep)
                parent.keys.insert(insert_at, sep)
                parent.ptrs.insert(insert_at, right)
                page = parent
            else:
                # Grow a new top index level.
                top = _Page()
                bottom_head = self._heads[-1]
                first = bottom_head.keys[0] if bottom_head.keys else sep
                top.keys = [first, sep]
                top.ptrs = [bottom_head, right]
                self._heads.append(top)
                self._n_pages += 1
                return

    def get(self, key: bytes) -> Any | None:
        page, _ = self._descend(key)
        idx = bisect.bisect_left(page.keys, key)
        if idx < len(page.keys) and page.keys[idx] == key:
            return page.ptrs[idx]
        return None

    def update(self, key: bytes, value: Any) -> bool:
        page, _ = self._descend(key)
        idx = bisect.bisect_left(page.keys, key)
        if idx < len(page.keys) and page.keys[idx] == key:
            page.ptrs[idx] = value
            return True
        return False

    def delete(self, key: bytes) -> bool:
        page, _ = self._descend(key)
        idx = bisect.bisect_left(page.keys, key)
        if idx >= len(page.keys) or page.keys[idx] != key:
            return False
        page.keys.pop(idx)
        page.ptrs.pop(idx)
        self._len -= 1
        return True

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        page, _ = self._descend(key)
        idx = bisect.bisect_left(page.keys, key)
        node: _Page | None = page
        while node is not None:
            for i in range(idx, len(node.keys)):
                yield node.keys[i], node.ptrs[i]
            node = node.next
            idx = 0

    def items(self) -> Iterator[tuple[bytes, Any]]:
        node: _Page | None = self._heads[0]
        while node is not None:
            yield from zip(node.keys, node.ptrs)
            node = node.next

    def __len__(self) -> int:
        return self._len

    # -- statistics ----------------------------------------------------------------

    @property
    def levels(self) -> int:
        return len(self._heads)

    def occupancy(self) -> float:
        pages = values = 0
        node: _Page | None = self._heads[0]
        while node is not None:
            pages += 1
            values += len(node.keys)
            node = node.next
        return values / (pages * self._slots) if pages else 1.0

    def memory_bytes(self) -> int:
        page_memory = self._n_pages * PAGE_BYTES
        key_heap = sum(heap_key_bytes(k) for k, _ in self.items())
        return page_memory + key_heap
