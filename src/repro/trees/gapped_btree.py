"""A gapped, batch-updatable B+tree — the data-parallel *write* path.

PR 3 made reads data-parallel (``get_many`` across the read stack);
this structure does the same for writes, following BS-tree's gapped
node layout (arXiv 2505.01180) and FB+-tree's memory-optimized update
path (arXiv 2503.23397).  It serves two write-heavy roles: the Hybrid
Index dynamic stage (its sorted-column leaves make the dyn/static
merge a column concatenation) and the LSM memtable (a WAL group
commit applies as one vectorized batch insert, and flushing emits the
leaves in order with no sort step).

Layout
------
Two levels: a flat *directory* (a sorted numpy object array of each
leaf's minimum key, searched with ``searchsorted``) over fixed-capacity
*gapped leaves*.  A leaf is three columns of length ``leaf_capacity``:

* ``keys``  — object array, globally non-decreasing across all slots;
* ``vals``  — object array, payload per valid slot;
* ``valid`` — bool array marking real entries.

Invalid slots are *gaps*: each carries a copy of the nearest valid key
to its left (so ``searchsorted`` stays correct over the whole column)
and absorbs nearby inserts without shifting the rest of the leaf.
Batch insert redistributes gaps evenly (``FILL_FACTOR`` occupancy, the
periodic rebalance), and a leaf whose merged payload overflows splits
into as many leaves as the fill factor requires.

Concurrency
-----------
Leaf states and the directory are copy-on-write: a mutation never
writes into a published array — it builds fresh columns and publishes
them with a single attribute store (atomic under the GIL).  A reader
that captured ``self._dir`` therefore owns an immutable, fully
consistent snapshot of the whole tree; :meth:`freeze_view` exposes
exactly that (the LSM engine pins it for scans), and point reads on
the live tree are torn-read-free without any lock — the same contract
the previous dict memtable gave readers for free.

Batch algorithms (the ``put_many`` path)
----------------------------------------
1. last-wins dedup + one sort of the input batch (both C-level: a
   dict build and one ``sorted``);
2. *dense* batches — at least a quarter of the tree's key count —
   skip per-leaf work entirely: the live columns concatenate into one
   flat run, merge with the batch at C speed (two ascending runs
   through Timsort's galloping merge), and every leaf is rebuilt in
   one vectorized pass (:func:`_build_leaves` computes all gap slots
   for all leaves with a handful of numpy kernels).  This is the
   regime LSM memtable drains run in;
3. *sparse* batches walk the directory with ``bisect`` — one search
   per touched leaf, not per key — cutting the batch into contiguous
   per-leaf segments.  A segment that fits the leaf's free slots is
   absorbed into its gaps (per-key nearest-gap shifts for a few keys,
   a list-mode walk or a vectorized merge-and-repack as segments
   grow); an overflowing segment merges with the leaf's live run and
   rebalance-splits into fresh ``FILL_FACTOR``-occupied leaves.

Values are opaque (the LSM memtable stores its ``TOMBSTONE`` sentinel
as an ordinary value); serialization (:meth:`to_bytes`) follows the
:mod:`repro.compact.serialize` convention and therefore requires
non-negative int values, like every other compact structure.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from .base import OrderedIndex, POINTER_BYTES, heap_key_bytes

#: Slots per leaf.  The gapped layout trades node size for shift
#: distance: wider leaves mean fewer directory entries (cheaper COW
#: splices and batch walks) and more keys per touched leaf in a batch,
#: which amortizes the fixed per-leaf absorb cost; shifts stay short
#: because rebalance re-spreads the gaps evenly.  512 slots is the
#: measured throughput knee for the scalar-vs-batch write mix (the gap
#: fraction — and so memory per key — is capacity-independent).
DEFAULT_LEAF_CAPACITY = 512
#: Occupancy after a rebalance: the remaining quarter of each leaf is
#: interleaved gaps for future inserts (BS-tree uses a similar slack).
FILL_FACTOR = 0.75

_LEAF_HEADER_BYTES = 16


def _obj_array(items: Sequence[Any]) -> np.ndarray:
    """A 1-D object ndarray of ``items`` — never letting numpy unpack
    bytes elements into per-byte rows."""
    arr = np.empty(len(items), dtype=object)
    if len(items):
        arr[:] = items
    return arr


class _LeafState:
    """One immutable leaf: published once, never mutated."""

    __slots__ = ("keys", "vals", "valid", "count", "min_key", "_keys_list")

    def __init__(self, keys: np.ndarray, vals: np.ndarray, valid: np.ndarray,
                 count: int, min_key: bytes,
                 keys_list: list | None = None) -> None:
        self.keys = keys
        self.vals = vals
        self.valid = valid
        self.count = count
        self.min_key = min_key
        #: Lazy plain-list mirror of ``keys`` for C ``bisect`` probes —
        #: a pure cache of an immutable column, so sharing and the
        #: benign build race under the GIL are both safe.
        self._keys_list = keys_list

    def key_list(self) -> list:
        kl = self._keys_list
        if kl is None:
            kl = self._keys_list = self.keys.tolist()
        return kl


class _Dir:
    """One immutable tree layout: leaf states plus their separators."""

    __slots__ = ("seps", "seps_list", "leaves", "count")

    def __init__(self, seps: np.ndarray, leaves: tuple[_LeafState, ...],
                 count: int, seps_list: list | None = None) -> None:
        self.seps = seps
        self.seps_list = seps.tolist() if seps_list is None else seps_list
        self.leaves = leaves
        self.count = count


def _empty_leaf(capacity: int) -> _LeafState:
    keys = np.empty(capacity, dtype=object)
    keys[:] = b""
    return _LeafState(
        keys,
        np.empty(capacity, dtype=object),
        np.zeros(capacity, dtype=bool),
        0,
        b"",
    )


def _empty_dir(capacity: int) -> _Dir:
    leaf = _empty_leaf(capacity)
    return _Dir(_obj_array([leaf.min_key]), (leaf,), 0)


def _pack_leaf(keys: np.ndarray, vals: np.ndarray, capacity: int) -> _LeafState:
    """Spread one sorted run (``len <= capacity``) over a fresh leaf
    with evenly interleaved gaps; gap slots repeat their left
    neighbour's key so the column stays sorted."""
    m = len(keys)
    slots = (np.arange(m) * capacity) // m  # strictly increasing, slot 0 first
    counts = np.diff(np.append(slots, capacity))
    full_keys = np.repeat(keys, counts)
    full_vals = np.empty(capacity, dtype=object)
    full_vals[slots] = vals
    valid = np.zeros(capacity, dtype=bool)
    valid[slots] = True
    return _LeafState(full_keys, full_vals, valid, m, keys[0])


def _build_leaves(keys: np.ndarray, vals: np.ndarray,
                  capacity: int) -> list[_LeafState]:
    """Rebalance one sorted run into ``FILL_FACTOR``-occupied leaves.

    All leaves are packed in one vectorized pass (the :func:`_pack_leaf`
    layout, computed for every key at once): per-key gap repeat counts
    come from integer math on flat index arrays, one ``np.repeat``
    materializes every leaf's key column including the gap duplicates,
    and the result is reshaped to one row per leaf — the per-leaf
    states are row views, so a rebuild of L leaves costs a handful of
    C passes plus L constructor calls instead of ~10 numpy kernels per
    leaf."""
    n = len(keys)
    if n == 0:
        return []
    per_leaf = max(1, int(capacity * FILL_FACTOR))
    n_leaves = -(-n // per_leaf)  # ceil
    if n_leaves == 1:
        return [_pack_leaf(keys, vals, capacity)]
    # np.array_split sizing: the first n % L chunks get one extra key.
    base, rem = divmod(n, n_leaves)
    sizes = np.full(n_leaves, base)
    sizes[:rem] += 1
    starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
    # Per key: its leaf-local rank j and leaf occupancy m give its gap
    # slot (j * capacity) // m, exactly as _pack_leaf places it.
    m_per_key = np.repeat(sizes, sizes)
    j = np.arange(n) - np.repeat(starts, sizes)
    slot = (j * capacity) // m_per_key
    next_slot = np.where(j + 1 < m_per_key,
                         ((j + 1) * capacity) // m_per_key, capacity)
    full_keys = np.repeat(keys, next_slot - slot)  # n_leaves * capacity
    mat_keys = full_keys.reshape(n_leaves, capacity)
    flat_vals = np.empty(n_leaves * capacity, dtype=object)
    flat_valid = np.zeros(n_leaves * capacity, dtype=bool)
    gslot = slot + np.repeat(np.arange(n_leaves), sizes) * capacity
    flat_vals[gslot] = vals
    flat_valid[gslot] = True
    mat_vals = flat_vals.reshape(n_leaves, capacity)
    mat_valid = flat_valid.reshape(n_leaves, capacity)
    min_keys = keys[starts].tolist()
    counts = sizes.tolist()
    return [
        _LeafState(mat_keys[r], mat_vals[r], mat_valid[r], counts[r],
                   min_keys[r])
        for r in range(n_leaves)
    ]


def _leaf_columns(state: _LeafState) -> tuple[np.ndarray, np.ndarray]:
    """The leaf's valid (key, value) columns, compacted and sorted."""
    return state.keys[state.valid], state.vals[state.valid]


def _merge_runs(
    a_keys: np.ndarray, a_vals: np.ndarray,
    b_keys: np.ndarray, b_vals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized merge of two sorted runs; on duplicate keys ``b``
    wins (``a``'s copy is dropped first, so no ties remain)."""
    if len(a_keys):
        pos = np.searchsorted(a_keys, b_keys)
        dup = pos < len(a_keys)
        if dup.any():
            dup[dup] = a_keys[pos[dup]] == b_keys[dup]
        if dup.any():
            keep = np.ones(len(a_keys), dtype=bool)
            keep[pos[dup]] = False
            a_keys, a_vals = a_keys[keep], a_vals[keep]
    na, nb = len(a_keys), len(b_keys)
    if na == 0:
        return b_keys, b_vals
    # Scatter interleave: each run's final index is its own rank plus
    # the count of the other run's keys before it (no ties remain).
    at = np.searchsorted(b_keys, a_keys) + np.arange(na)
    bt = np.searchsorted(a_keys, b_keys) + np.arange(nb)
    out_keys = np.empty(na + nb, dtype=object)
    out_vals = np.empty(na + nb, dtype=object)
    out_keys[at] = a_keys
    out_keys[bt] = b_keys
    out_vals[at] = a_vals
    out_vals[bt] = b_vals
    return out_keys, out_vals


#: Public name for the vectorized two-way merge: the Hybrid Index's
#: dynamic/static merge consumes it directly on exported columns.
merge_sorted_columns = _merge_runs


def _route(d: _Dir, key: bytes) -> int:
    """Directory descent: the leaf whose range covers ``key``."""
    return max(bisect.bisect_right(d.seps_list, key) - 1, 0)


def _find_slot(state: _LeafState, key: bytes) -> int:
    """Slot of the valid entry holding ``key``, or -1.

    Gap slots may duplicate ``key`` (they copy neighbour keys), so the
    equal run located by ``bisect`` is scanned for the one valid
    owner; the run is at most gaps-plus-one slots long.
    """
    kl = state.key_list()
    lo = bisect.bisect_left(kl, key)
    hi = bisect.bisect_right(kl, key, lo=lo)
    valid = state.valid
    for j in range(lo, hi):
        if valid[j]:
            return j
    return -1


class GappedView:
    """A frozen, read-consistent view over one captured :class:`_Dir`.

    The LSM engine pins one per scan/seek (``copy_mem=True`` views):
    mapping-style reads plus sorted iteration, all over immutable
    state, so a concurrent writer can never tear it.
    """

    __slots__ = ("_dir",)

    def __init__(self, dir_: _Dir) -> None:
        self._dir = dir_

    def __len__(self) -> int:
        return self._dir.count

    def __contains__(self, key: bytes) -> bool:
        leaf = self._dir.leaves[_route(self._dir, key)]
        return _find_slot(leaf, key) >= 0

    def __getitem__(self, key: bytes) -> Any:
        leaf = self._dir.leaves[_route(self._dir, key)]
        slot = _find_slot(leaf, key)
        if slot < 0:
            raise KeyError(key)
        return leaf.vals[slot]

    def get(self, key: bytes, default: Any = None) -> Any:
        leaf = self._dir.leaves[_route(self._dir, key)]
        slot = _find_slot(leaf, key)
        return default if slot < 0 else leaf.vals[slot]

    def items(self) -> Iterator[tuple[bytes, Any]]:
        for leaf in self._dir.leaves:
            slots = np.flatnonzero(leaf.valid)
            yield from zip(leaf.keys[slots].tolist(), leaf.vals[slots].tolist())

    def keys(self) -> Iterator[bytes]:
        for k, _ in self.items():
            yield k


class GappedBPlusTree(OrderedIndex):
    """Gapped, batch-updatable B+tree (numpy columns, COW nodes)."""

    def __init__(
        self,
        pairs: Sequence[tuple[bytes, Any]] = (),
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    ) -> None:
        if leaf_capacity < 8:
            raise ValueError("leaf_capacity must be >= 8")
        self._capacity = leaf_capacity
        self._dir = _empty_dir(leaf_capacity)
        if pairs:
            self.put_many(pairs)

    # -- directory maintenance (writer side) --------------------------------

    def _install(self, leaves: Iterable[_LeafState], count: int) -> None:
        leaves = tuple(leaves)
        if not leaves:
            self._dir = _empty_dir(self._capacity)
            return
        seps_list = [leaf.min_key for leaf in leaves]
        seps = np.empty(len(leaves), dtype=object)
        seps[:] = seps_list
        self._dir = _Dir(seps, leaves, count, seps_list=seps_list)

    def _replace_leaf(self, idx: int, new_leaves: list[_LeafState],
                      count_delta: int) -> None:
        d = self._dir
        if len(new_leaves) == 1 and new_leaves[0].min_key == d.leaves[idx].min_key:
            # Same span, same separator: publish a directory that shares
            # the old seps columns instead of rebuilding them (the
            # common case for every scalar overwrite/absorb/delete).
            leaves = d.leaves[:idx] + (new_leaves[0],) + d.leaves[idx + 1:]
            self._dir = _Dir(d.seps, leaves, d.count + count_delta,
                             seps_list=d.seps_list)
            return
        leaves = d.leaves[:idx] + tuple(new_leaves) + d.leaves[idx + 1:]
        self._install(leaves, d.count + count_delta)

    # -- scalar writes -------------------------------------------------------

    def _leaf_upsert(self, idx: int, key: bytes, value: Any,
                     insert_only: bool, update_only: bool) -> bool:
        """COW upsert into leaf ``idx``; returns whether a write landed.

        The fresh columns are built fully before the single publishing
        store, so readers only ever see the old or the new leaf.
        """
        state = self._dir.leaves[idx]
        slot = _find_slot(state, key)
        if slot >= 0:
            if insert_only:
                return False
            vals = state.vals.copy()
            vals[slot] = value
            new = _LeafState(state.keys, vals, state.valid, state.count,
                             state.min_key, keys_list=state._keys_list)
            self._replace_leaf(idx, [new], 0)
            return True
        if update_only:
            return False
        if state.count >= self._capacity:
            # Full leaf: merge the new pair in and rebalance-split.
            lk, lv = _leaf_columns(state)
            mk, mv = _merge_runs(lk, lv, _obj_array([key]), _obj_array([value]))
            self._replace_leaf(idx, _build_leaves(mk, mv, self._capacity), 1)
            return True
        # Room in the leaf: claim an equal-key gap or shift to the
        # nearest one.  Stays on numpy copies (C memcpy of the three
        # columns beats a list round-trip for a single key).
        kl = state.key_list()
        lo = bisect.bisect_left(kl, key)
        hi = bisect.bisect_right(kl, key, lo=lo)
        keys = state.keys.copy()
        vals = state.vals.copy()
        valid = state.valid.copy()
        if hi > lo:
            # A gap already carries this exact key (its valid owner was
            # deleted): claim it with no shift — the cached key list is
            # still exact.
            pos = lo
            new_kl = kl
        else:
            cap = self._capacity
            gap_r = -1
            for j in range(lo, cap):
                if not valid[j]:
                    gap_r = j
                    break
            gap_l = -1
            for j in range(lo - 1, -1, -1):
                if not valid[j]:
                    gap_l = j
                    break
            # Shift toward the nearer gap (the gapped layout's point:
            # slots moved is the distance to the nearest gap, not n/2).
            # The cached key list shifts in lockstep — a short list
            # splice is far cheaper than the full tolist() rebuild the
            # next probe would otherwise pay.
            new_kl = kl.copy()
            if gap_l < 0 or (gap_r >= 0 and gap_r - lo <= lo - 1 - gap_l):
                keys[lo + 1: gap_r + 1] = keys[lo:gap_r]
                vals[lo + 1: gap_r + 1] = vals[lo:gap_r]
                valid[lo + 1: gap_r + 1] = valid[lo:gap_r]
                new_kl[lo + 1: gap_r + 1] = new_kl[lo:gap_r]
                pos = lo
            else:
                keys[gap_l:lo - 1] = keys[gap_l + 1:lo]
                vals[gap_l:lo - 1] = vals[gap_l + 1:lo]
                valid[gap_l:lo - 1] = valid[gap_l + 1:lo]
                new_kl[gap_l:lo - 1] = new_kl[gap_l + 1:lo]
                pos = lo - 1
        keys[pos] = key
        vals[pos] = value
        valid[pos] = True
        if new_kl is not kl:
            new_kl[pos] = key
        elif kl[pos] != key:
            new_kl = kl.copy()
            new_kl[pos] = key
        min_key = key if state.count == 0 or key < state.min_key else state.min_key
        new = _LeafState(keys, vals, valid, state.count + 1, min_key,
                         keys_list=new_kl)
        self._replace_leaf(idx, [new], 1)
        return True

    def insert(self, key: bytes, value: Any) -> bool:
        return self._leaf_upsert(_route(self._dir, key), key, value,
                                 insert_only=True, update_only=False)

    def update(self, key: bytes, value: Any) -> bool:
        return self._leaf_upsert(_route(self._dir, key), key, value,
                                 insert_only=False, update_only=True)

    def put(self, key: bytes, value: Any) -> None:
        """Upsert (the memtable write): insert or overwrite."""
        self._leaf_upsert(_route(self._dir, key), key, value,
                          insert_only=False, update_only=False)

    def delete(self, key: bytes) -> bool:
        idx = _route(self._dir, key)
        state = self._dir.leaves[idx]
        slot = _find_slot(state, key)
        if slot < 0:
            return False
        valid = state.valid.copy()
        valid[slot] = False
        count = state.count - 1
        if count == 0 and len(self._dir.leaves) > 1:
            self._replace_leaf(idx, [], -1)
            return True
        if count and slot == int(np.argmax(state.valid)):
            min_key = state.keys[np.flatnonzero(valid)[0]]
        else:
            min_key = state.min_key if count else b""
        # The slot keeps its key: it is now a gap whose copy of the
        # deleted key preserves column order (and lets a re-insert of
        # the same key reclaim it shift-free).
        new = _LeafState(state.keys, state.vals, valid, count, min_key,
                         keys_list=state._keys_list)
        self._replace_leaf(idx, [new], -1)
        return True

    # -- batch writes (the tentpole) -----------------------------------------

    def _absorb_segment(self, state: _LeafState, bk: list,
                        bv: list) -> tuple[_LeafState, int]:
        """Upsert a small sorted segment into one leaf's gaps.

        The caller guarantees the segment fits (``count + len(bk) <=
        capacity``); returns the fresh leaf state and the number of
        *new* keys.  Two regimes by segment size: a couple of keys
        claim an equal-key gap or shift toward the nearest gap on
        numpy column copies (slots moved is the distance to that gap,
        never a rebuild), while segments of four keys or more take the
        vectorized merge-and-repack path, whose near-constant cost
        beats the interpreted per-key gap walk from about that size.
        """
        if len(bk) >= 4:
            if len(bk) > self._capacity // 8:
                return self._absorb_segment_pack(state, bk, bv)
            return self._absorb_segment_list(state, bk, bv)
        cap = self._capacity
        keys_l = state.key_list().copy()
        keys = state.keys.copy()
        vals = state.vals.copy()
        valid = state.valid.copy()
        count = state.count
        for key, value in zip(bk, bv):
            lo = bisect.bisect_left(keys_l, key)
            hi = bisect.bisect_right(keys_l, key, lo=lo)
            slot = -1
            for j in range(lo, hi):
                if valid[j]:
                    slot = j
                    break
            if slot >= 0:  # live key: overwrite in place
                vals[slot] = value
                continue
            if hi > lo:  # a gap already carries this exact key
                pos = lo
            else:
                gap_r = -1
                for j in range(lo, cap):
                    if not valid[j]:
                        gap_r = j
                        break
                gap_l = -1
                for j in range(lo - 1, -1, -1):
                    if not valid[j]:
                        gap_l = j
                        break
                if gap_l < 0 or (gap_r >= 0 and gap_r - lo <= lo - 1 - gap_l):
                    keys[lo + 1: gap_r + 1] = keys[lo:gap_r]
                    vals[lo + 1: gap_r + 1] = vals[lo:gap_r]
                    valid[lo + 1: gap_r + 1] = valid[lo:gap_r]
                    keys_l[lo + 1: gap_r + 1] = keys_l[lo:gap_r]
                    pos = lo
                else:
                    keys[gap_l:lo - 1] = keys[gap_l + 1:lo]
                    vals[gap_l:lo - 1] = vals[gap_l + 1:lo]
                    valid[gap_l:lo - 1] = valid[gap_l + 1:lo]
                    keys_l[gap_l:lo - 1] = keys_l[gap_l + 1:lo]
                    pos = lo - 1
            keys[pos] = key
            keys_l[pos] = key
            vals[pos] = value
            valid[pos] = True
            count += 1
        # The segment is sorted, so its first key is the only candidate
        # for a new leaf minimum.
        if state.count == 0 or bk[0] < state.min_key:
            min_key = bk[0]
        else:
            min_key = state.min_key
        new = _LeafState(keys, vals, valid, count, min_key, keys_list=keys_l)
        return new, count - state.count

    def _absorb_segment_list(self, state: _LeafState, bk: list,
                             bv: list) -> tuple[_LeafState, int]:
        """List-mode :meth:`_absorb_segment` for mid-size segments
        (same gap-walk algorithm; see there for the dispatch
        rationale).  All three columns convert to Python lists once —
        per-key list slicing is markedly cheaper than numpy slice
        assignment, which repays the conversion from about four keys
        on.  Two economies the segment's sort order allows: the
        insertion-point search resumes from the previous key's slot
        (``bisect`` with a moving ``lo`` bound), and a single equality
        check on the slot replaces the second bisect — batch keys are
        deduped, so an equal run can only be gap duplicates."""
        cap = self._capacity
        keys_l = state.key_list().copy()
        vals_l = state.vals.tolist()
        valid_l = state.valid.tolist()
        count = state.count
        search_lo = 0
        for key, value in zip(bk, bv):
            lo = bisect.bisect_left(keys_l, key, lo=search_lo)
            search_lo = lo
            if lo < cap and keys_l[lo] == key:
                slot = -1
                j = lo
                while j < cap and keys_l[j] == key:
                    if valid_l[j]:
                        slot = j
                        break
                    j += 1
                if slot >= 0:  # live key: overwrite in place
                    vals_l[slot] = value
                    continue
                pos = lo  # a gap already carries this exact key
            else:
                gap_r = -1
                for j in range(lo, cap):
                    if not valid_l[j]:
                        gap_r = j
                        break
                # The left scan only needs to beat the right gap's
                # distance; stop as soon as it cannot.
                floor = -1 if gap_r < 0 else lo - (gap_r - lo) - 1
                gap_l = -1
                for j in range(lo - 1, max(floor, -1), -1):
                    if not valid_l[j]:
                        gap_l = j
                        break
                if gap_l < 0 or (gap_r >= 0 and gap_r - lo <= lo - 1 - gap_l):
                    keys_l[lo + 1: gap_r + 1] = keys_l[lo:gap_r]
                    vals_l[lo + 1: gap_r + 1] = vals_l[lo:gap_r]
                    valid_l[lo + 1: gap_r + 1] = valid_l[lo:gap_r]
                    pos = lo
                else:
                    keys_l[gap_l:lo - 1] = keys_l[gap_l + 1:lo]
                    vals_l[gap_l:lo - 1] = vals_l[gap_l + 1:lo]
                    valid_l[gap_l:lo - 1] = valid_l[gap_l + 1:lo]
                    pos = lo - 1
            keys_l[pos] = key
            vals_l[pos] = value
            valid_l[pos] = True
            count += 1
        keys = np.empty(cap, dtype=object)
        keys[:] = keys_l
        vals = np.empty(cap, dtype=object)
        vals[:] = vals_l
        valid = np.array(valid_l, dtype=bool)
        if state.count == 0 or bk[0] < state.min_key:
            min_key = bk[0]
        else:
            min_key = state.min_key
        new = _LeafState(keys, vals, valid, count, min_key, keys_list=keys_l)
        return new, count - state.count

    def _absorb_segment_pack(self, state: _LeafState, bk: list,
                             bv: list) -> tuple[_LeafState, int]:
        """Vectorized :meth:`_absorb_segment` for segments of >= 4
        keys: instead of walking each key to a nearby gap, merge the
        segment into the leaf's live run with one ``searchsorted``
        plus ``np.insert`` (C pointer memmoves) and relay the merged
        run through :func:`_pack_leaf`, which respreads the gaps
        evenly.  A handful of numpy kernels whose cost is nearly
        independent of the segment size — and the repacked leaf comes
        out with ideal gap spacing, where the in-place walk leaves
        gaps wherever they happened to fall."""
        lk = state.keys[state.valid]
        lv = state.vals[state.valid]
        b = _obj_array(bk)
        bvv = _obj_array(bv)
        if len(lk):
            # Batch keys are deduped, so duplicates can only pair one
            # batch key with one live key: overwrite those in place
            # and insert the rest (equal positions keep batch order).
            pos = lk.searchsorted(b)
            dup = pos < len(lk)
            if dup.any():
                dup[dup] = lk[pos[dup]] == b[dup]
            if dup.any():
                lv = lv.copy()
                lv[pos[dup]] = bvv[dup]
                fresh = ~dup
                b, bvv, pos = b[fresh], bvv[fresh], pos[fresh]
            if len(b):
                mk = np.insert(lk, pos, b)
                mv = np.insert(lv, pos, bvv)
            else:
                mk, mv = lk, lv
        else:
            mk, mv = b, bvv
        return _pack_leaf(mk, mv, self._capacity), len(b)

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        """Vectorized bulk upsert: a bisect walk over the directory
        partitions the sorted batch into contiguous per-leaf segments
        (one search per *touched leaf*, not per key); small segments
        are absorbed into leaf gaps in place, larger ones merge-and-
        rebalance the leaf in one pass (splitting on overflow)."""
        if not len(pairs):
            return
        # Last-wins dedup + sort, all C-level (dict build, one sort).
        dedup = dict(pairs)
        bk_list = sorted(dedup)
        bv_list = [dedup[k] for k in bk_list]
        d = self._dir
        if d.count == 0:
            self._install(
                _build_leaves(_obj_array(bk_list), _obj_array(bv_list),
                              self._capacity),
                len(bk_list),
            )
            return
        n = len(bk_list)
        if n * 4 >= d.count:
            # Dense batch: the walk would touch nearly every leaf, so a
            # flat whole-tree rebuild is cheaper.  Concatenate the live
            # columns once, merge the two sorted runs at C speed (a dict
            # built from the existing run then updated with the batch
            # run leaves two ascending key runs for Timsort's galloping
            # merge), and repack every leaf in one vectorized pass.
            if len(d.leaves) == 1:
                flat_keys, flat_vals = _leaf_columns(d.leaves[0])
            else:
                live = np.concatenate([leaf.valid for leaf in d.leaves])
                flat_keys = np.concatenate(
                    [leaf.keys for leaf in d.leaves])[live]
                flat_vals = np.concatenate(
                    [leaf.vals for leaf in d.leaves])[live]
            merged = dict(zip(flat_keys.tolist(), flat_vals.tolist()))
            merged.update(zip(bk_list, bv_list))
            mk_list = sorted(merged)
            mv_list = [merged[k] for k in mk_list]
            self._install(
                _build_leaves(_obj_array(mk_list), _obj_array(mv_list),
                              self._capacity),
                len(mk_list),
            )
            return
        seps_list = d.seps_list
        nsep = len(seps_list)
        new_leaves: list[_LeafState] = []
        count = d.count
        prev = 0
        i = 0
        while i < n:
            idx = bisect.bisect_right(seps_list, bk_list[i], lo=prev) - 1
            if idx < 0:
                idx = 0
            # The segment runs to the first key owned by the next leaf.
            if idx + 1 >= nsep:
                e = n
            else:
                e = bisect.bisect_left(bk_list, seps_list[idx + 1], lo=i)
            new_leaves.extend(d.leaves[prev:idx])
            prev = idx + 1
            state = d.leaves[idx]
            if e - i <= self._capacity - state.count:
                new, added = self._absorb_segment(state, bk_list[i:e],
                                                  bv_list[i:e])
                count += added
                new_leaves.append(new)
            else:
                lk, lv = _leaf_columns(state)
                mk, mv = _merge_runs(lk, lv, _obj_array(bk_list[i:e]),
                                     _obj_array(bv_list[i:e]))
                count += len(mk) - state.count
                new_leaves.extend(_build_leaves(mk, mv, self._capacity))
            i = e
        new_leaves.extend(d.leaves[prev:])
        self._install(new_leaves, count)

    def delete_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Vectorized bulk delete; one result slot per key, in order."""
        if not len(keys):
            return []
        qkeys = _obj_array(keys)
        skeys = np.unique(qkeys)  # sorted + dedup'd probe set
        d = self._dir
        li = np.searchsorted(d.seps, skeys, side="right") - 1
        np.maximum(li, 0, out=li)
        cuts = np.flatnonzero(np.diff(li)) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [len(skeys)]))
        removed: set[bytes] = set()
        new_leaves: list[_LeafState] = []
        count = d.count
        prev = 0
        for s, e in zip(starts.tolist(), ends.tolist()):
            idx = int(li[s])
            new_leaves.extend(d.leaves[prev:idx])
            prev = idx + 1
            state = d.leaves[idx]
            slots = np.flatnonzero(state.valid)
            lk = state.keys[slots]
            seg = skeys[s:e]
            pos = np.searchsorted(lk, seg)
            hit = pos < len(lk)
            if hit.any():
                hit[hit] = lk[pos[hit]] == seg[hit]
            if not hit.any():
                new_leaves.append(state)
                continue
            removed.update(seg[hit].tolist())
            valid = state.valid.copy()
            valid[slots[pos[hit]]] = False
            n = state.count - int(hit.sum())
            count -= int(hit.sum())
            if n == 0:
                continue  # drop the emptied leaf from the directory
            min_key = state.keys[np.flatnonzero(valid)[0]]
            new_leaves.append(_LeafState(state.keys, state.vals, valid, n,
                                         min_key))
        new_leaves.extend(d.leaves[prev:])
        self._install(new_leaves, count)
        # A key repeated in the batch deletes once: only its first
        # occurrence reports True (sequential-apply semantics).
        out: list[bool] = []
        for k in keys:
            hit = k in removed
            if hit:
                removed.discard(k)
            out.append(hit)
        return out

    # -- reads ---------------------------------------------------------------

    def get(self, key: bytes, default: Any = None) -> Any:
        d = self._dir
        leaf = d.leaves[_route(d, key)]
        slot = _find_slot(leaf, key)
        return default if slot < 0 else leaf.vals[slot]

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched point lookup: one directory ``searchsorted`` routes
        the whole batch; per touched leaf, both boundary searches run
        as single vectorized calls over that leaf's query group."""
        n = len(keys)
        out: list[Any | None] = [None] * n
        if n == 0:
            return out
        d = self._dir
        qkeys = _obj_array(keys)
        li = np.searchsorted(d.seps, qkeys, side="right") - 1
        np.maximum(li, 0, out=li)
        order = np.argsort(li, kind="stable")
        li_sorted = li[order]
        cuts = np.flatnonzero(np.diff(li_sorted)) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            state = d.leaves[int(li_sorted[s])]
            members = order[s:e]
            group = qkeys[members]
            los = np.searchsorted(state.keys, group, side="left")
            his = np.searchsorted(state.keys, group, side="right")
            for j, lo, hi in zip(members.tolist(), los.tolist(), his.tolist()):
                if lo == hi:
                    continue
                seg = state.valid[lo:hi]
                if seg.any():
                    out[j] = state.vals[lo + int(np.argmax(seg))]
        return out

    def __contains__(self, key: bytes) -> bool:
        # Exact (slot-based) membership: a stored None or sentinel value
        # still counts as present — the memtable contract.
        d = self._dir
        return _find_slot(d.leaves[_route(d, key)], key) >= 0

    def __getitem__(self, key: bytes) -> Any:
        d = self._dir
        leaf = d.leaves[_route(d, key)]
        slot = _find_slot(leaf, key)
        if slot < 0:
            raise KeyError(key)
        return leaf.vals[slot]

    def keys(self) -> Iterator[bytes]:
        for k, _ in self.items():
            yield k

    # -- ordered access ------------------------------------------------------

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        d = self._dir  # captured once: the iteration is over a snapshot
        idx = _route(d, key)
        for i in range(idx, len(d.leaves)):
            state = d.leaves[i]
            start = int(np.searchsorted(state.keys, key, side="left")) if i == idx else 0
            slots = np.flatnonzero(state.valid[start:]) + start
            yield from zip(state.keys[slots].tolist(), state.vals[slots].tolist())

    def items(self) -> Iterator[tuple[bytes, Any]]:
        d = self._dir
        for state in d.leaves:
            slots = np.flatnonzero(state.valid)
            yield from zip(state.keys[slots].tolist(), state.vals[slots].tolist())

    def seek(self, low: bytes, high: bytes | None = None) -> tuple[bytes, Any] | None:
        """Smallest entry with key >= ``low`` (and <= ``high`` if given)."""
        for k, v in self.lower_bound(low):
            if high is not None and k > high:
                return None
            return (k, v)
        return None

    def __len__(self) -> int:
        return self._dir.count

    # -- views / export ------------------------------------------------------

    def freeze_view(self) -> GappedView:
        """A frozen mapping over the current state — O(1): COW means
        capturing the directory *is* the snapshot."""
        return GappedView(self._dir)

    def export_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """All live entries as two sorted object columns (keys, values)
        — the Hybrid merge consumes this as a column concatenation."""
        d = self._dir
        parts = [_leaf_columns(state) for state in d.leaves if state.count]
        if not parts:
            empty = np.empty(0, dtype=object)
            return empty, empty
        return (
            np.concatenate([k for k, _ in parts]),
            np.concatenate([v for _, v in parts]),
        )

    # -- statistics ----------------------------------------------------------

    def leaf_count(self) -> int:
        return len(self._dir.leaves)

    def occupancy(self) -> float:
        d = self._dir
        return d.count / (len(d.leaves) * self._capacity)

    def memory_bytes(self) -> int:
        """Modeled C layout: per leaf, key-reference and value columns
        plus a validity bitmap; a flat separator directory; long keys
        on the heap (valid entries only)."""
        d = self._dir
        leaf_bytes = (
            self._capacity * 2 * POINTER_BYTES  # key refs + values
            + (self._capacity + 7) // 8         # valid bitmap
            + _LEAF_HEADER_BYTES
        )
        total = len(d.leaves) * leaf_bytes
        total += len(d.leaves) * 2 * POINTER_BYTES  # directory entry + sep ref
        total += sum(heap_key_bytes(k) for k, _ in self.items())
        return total

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pair-array serialization (:mod:`repro.compact.serialize`
        style: non-negative int values only)."""
        from ..compact.serialize import gapped_to_bytes

        return gapped_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "GappedBPlusTree":
        from ..compact.serialize import gapped_from_bytes

        return gapped_from_bytes(cls, data)
