"""The dual-stage Hybrid Index (Chapter 5)."""

from .hybrid import (
    DEFAULT_MERGE_RATIO,
    HybridIndex,
    hybrid_art,
    hybrid_btree,
    hybrid_compressed_btree,
    hybrid_gapped,
    hybrid_masstree,
    hybrid_skiplist,
)

__all__ = [
    "HybridIndex",
    "hybrid_btree",
    "hybrid_gapped",
    "hybrid_skiplist",
    "hybrid_art",
    "hybrid_masstree",
    "hybrid_compressed_btree",
    "DEFAULT_MERGE_RATIO",
]
