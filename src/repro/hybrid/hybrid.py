"""The dual-stage Hybrid Index (Chapter 5).

A hybrid index is one logical index made of two physical trees
(Figure 5.1): a small *dynamic stage* that absorbs all writes, and a
compact read-only *static stage* holding the bulk of the entries.  A
Bloom filter over the dynamic stage lets most point reads skip straight
to the static stage.  Periodic merges migrate everything from the
dynamic to the static stage (the merge-all strategy, Section 5.2.2),
triggered when the stage size ratio crosses a threshold (ratio-based
trigger, default 10) or at a fixed dynamic-stage size (constant
trigger).

Primary-index semantics: inserts check key uniqueness across both
stages (the ~30 % insert-throughput cost of Figures 5.3-5.6); updates
of static-stage keys insert a shadowing entry into the dynamic stage.
Secondary-index semantics (``secondary=True``): values are lists, and
updates append in place even in the static stage, so a key never lives
in both stages.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..compact import (
    CompactART,
    CompactBPlusTree,
    CompactMasstree,
    CompactSkipList,
    CompressedBPlusTree,
)
from ..filters.bloom import BloomFilter
from ..trees import ART, BPlusTree, GappedBPlusTree, Masstree, OrderedIndex, PagedSkipList
from ..trees.gapped_btree import merge_sorted_columns

_TOMBSTONE = object()

#: Default ratio-based merge trigger (Section 5.3.3 picks 10).
DEFAULT_MERGE_RATIO = 10
#: Dynamic-stage size that forces the first merge when the static
#: stage is still empty.
MIN_MERGE_SIZE = 256
#: Bits per key for the dynamic-stage Bloom filter.
BLOOM_BITS_PER_KEY = 10


class HybridIndex(OrderedIndex):
    """Dual-stage index: dynamic writes, compact static bulk."""

    def __init__(
        self,
        dynamic_factory: Callable[[], OrderedIndex],
        static_factory: Callable[[Sequence[tuple[bytes, Any]]], Any],
        merge_ratio: float = DEFAULT_MERGE_RATIO,
        merge_trigger: str = "ratio",
        merge_strategy: str = "all",
        constant_threshold: int = 4096,
        use_bloom: bool = True,
        secondary: bool = False,
        min_merge_size: int = MIN_MERGE_SIZE,
    ) -> None:
        if merge_trigger not in ("ratio", "constant"):
            raise ValueError("merge_trigger must be 'ratio' or 'constant'")
        if merge_strategy not in ("all", "cold"):
            raise ValueError("merge_strategy must be 'all' or 'cold'")
        self._dynamic_factory = dynamic_factory
        self._static_factory = static_factory
        self.dynamic: OrderedIndex = dynamic_factory()
        self.static = static_factory([])
        self.merge_ratio = merge_ratio
        self.merge_trigger = merge_trigger
        self.merge_strategy = merge_strategy
        self.constant_threshold = constant_threshold
        #: Access counts for merge-cold (Section 5.2.2): tracked only
        #: when the strategy needs them (tracking is itself a cost the
        #: paper charges against merge-cold).
        self._access: dict[bytes, int] = {}
        #: Entries retained by the last merge-cold pass; excluded from
        #: the merge trigger so retention cannot re-trigger it.
        self._retained_hot = 0
        self.use_bloom = use_bloom
        self.secondary = secondary
        self.min_merge_size = min_merge_size
        self._bloom: BloomFilter | None = (
            BloomFilter([], expected_keys=min_merge_size) if use_bloom else None
        )
        self._deleted: set[bytes] = set()
        self._len = 0
        # merge statistics (Figures 5.7/5.8)
        self.merge_count = 0
        self.total_merge_seconds = 0.0
        self.last_merge_seconds = 0.0

    # -- stage plumbing -----------------------------------------------------------

    def _bloom_positive(self, key: bytes) -> bool:
        return self._bloom is None or self._bloom.may_contain(key)

    def _rebuild_bloom(self) -> None:
        """Rebuild the dynamic-stage filter from scratch.

        Called ONLY on merge/reset (when the dynamic stage empties down
        to the retained-hot entries): day-to-day dynamic-stage writes
        go through the incremental :meth:`_dynamic_changed` /
        :meth:`_dynamic_changed_many` paths instead of re-enumerating
        every dynamic key per change.
        """
        if self.use_bloom:
            keys = [k for k, _ in self.dynamic.items()]
            # Size for the dynamic stage's expected capacity before the
            # next merge fires (static/ratio entries).
            expected = max(
                self.min_merge_size, int(len(self.static) / self.merge_ratio) + 1
            )
            self._bloom = BloomFilter(keys, BLOOM_BITS_PER_KEY, expected_keys=expected)

    def _dynamic_changed(self, new_key: bytes | None = None) -> None:
        # Bloom filters cannot delete; adding is enough for correctness
        # (false positives only cost an extra dynamic-stage probe).
        if self.use_bloom and new_key is not None:
            self._bloom.add(new_key)

    def _dynamic_changed_many(self, new_keys: Sequence[bytes]) -> None:
        if self.use_bloom and new_keys:
            self._bloom.add_many(new_keys)

    # -- merge --------------------------------------------------------------------------

    def should_merge(self) -> bool:
        dyn = len(self.dynamic) - self._retained_hot
        if dyn <= 0:
            return False
        if self.merge_trigger == "constant":
            return dyn >= self.constant_threshold
        static_len = len(self.static)
        if static_len == 0:
            return dyn >= self.min_merge_size
        return dyn * self.merge_ratio >= static_len

    def merge(self) -> None:
        """Migrate dynamic-stage entries to the static stage
        (Section 5.2).  Blocking, as in the thesis.

        merge-all moves everything; merge-cold retains entries read at
        least twice since the last merge (they are likely to be read
        again), trading merge frequency for hot-read locality.
        """
        started = time.perf_counter()
        keep_hot: list[tuple[bytes, Any]] = []
        if self.merge_strategy == "cold" and not self.secondary:
            keep_hot = [
                (k, v)
                for k, v in self.dynamic.items()
                if self._access.get(k, 0) >= 2
            ]
        hot_keys = {k for k, _ in keep_hot}
        if hasattr(self.dynamic, "export_columns"):
            merged = self._merge_columns(hot_keys)
        else:
            merged = self._merge_iterative(hot_keys)
        self.static = self._static_factory(merged)
        self.dynamic = self._dynamic_factory()
        for k, v in keep_hot:
            self.dynamic.insert(k, v)
        self._deleted = set()
        self._access = {}
        self._retained_hot = len(keep_hot)
        self._rebuild_bloom()
        self.last_merge_seconds = time.perf_counter() - started
        self.total_merge_seconds += self.last_merge_seconds
        self.merge_count += 1

    def _merge_iterative(self, hot_keys: set[bytes]) -> list[tuple[bytes, Any]]:
        """Python two-iterator merge (any dynamic stage)."""
        merged: list[tuple[bytes, Any]] = []
        dyn_iter = iter(self.dynamic.items())
        stat_iter = iter(self.static.items())
        dyn = next(dyn_iter, None)
        stat = next(stat_iter, None)
        deleted = self._deleted
        while dyn is not None or stat is not None:
            if stat is None or (dyn is not None and dyn[0] <= stat[0]):
                if dyn is not None and stat is not None and dyn[0] == stat[0]:
                    stat = next(stat_iter, None)  # dynamic shadows static
                if dyn[0] not in deleted:
                    merged.append(dyn)
                dyn = next(dyn_iter, None)
            else:
                if stat[0] not in deleted:
                    merged.append(stat)
                stat = next(stat_iter, None)
        if hot_keys:
            merged = [(k, v) for k, v in merged if k not in hot_keys]
        return merged

    def _merge_columns(self, hot_keys: set[bytes]) -> list[tuple[bytes, Any]]:
        """Column merge for dynamic stages that export sorted columns
        (the gapped B+tree): the dyn/static interleave is two
        ``searchsorted`` calls plus a scatter instead of a Python
        iterator zip, and tombstone/hot filtering is one mask pass."""
        dyn_keys, dyn_vals = self.dynamic.export_columns()
        stat_keys = getattr(self.static, "_keys", None)
        stat_vals = getattr(self.static, "_values", None)
        if stat_keys is None or stat_vals is None:
            pairs = list(self.static.items())
            stat_keys = [k for k, _ in pairs]
            stat_vals = [v for _, v in pairs]
        sk = np.empty(len(stat_keys), dtype=object)
        sv = np.empty(len(stat_keys), dtype=object)
        if len(stat_keys):
            sk[:] = list(stat_keys)
            sv[:] = list(stat_vals)
        mk, mv = merge_sorted_columns(sk, sv, dyn_keys, dyn_vals)
        drop = self._deleted | hot_keys
        if drop and len(mk):
            keep = np.fromiter((k not in drop for k in mk), dtype=bool, count=len(mk))
            mk, mv = mk[keep], mv[keep]
        return list(zip(mk.tolist(), mv.tolist()))

    def _maybe_merge(self) -> None:
        if self.should_merge():
            self.merge()

    # -- point operations ----------------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        if self.secondary:
            return self._insert_secondary(key, value)
        # Primary: uniqueness check spans both stages.
        if self._bloom_positive(key) and self.dynamic.get(key) is not None:
            return False
        in_static = self.static.get(key) is not None and key not in self._deleted
        if in_static:
            return False
        self._deleted.discard(key)
        self.dynamic.insert(key, value)
        self._len += 1
        self._dynamic_changed(key)
        self._maybe_merge()
        return True

    def _insert_secondary(self, key: bytes, value: Any) -> bool:
        """Secondary index: append to the key's value list, in place
        even when the key lives in the static stage."""
        if self._bloom_positive(key):
            existing = self.dynamic.get(key)
            if existing is not None:
                existing.append(value)
                return True
        static_list = self.static.get(key)
        if static_list is not None and key not in self._deleted:
            static_list.append(value)
            return True
        self._deleted.discard(key)
        self.dynamic.insert(key, [value])
        self._len += 1
        self._dynamic_changed(key)
        self._maybe_merge()
        return True

    def get(self, key: bytes) -> Any | None:
        if self._bloom_positive(key):
            value = self.dynamic.get(key)
            if value is not None:
                if self.merge_strategy == "cold":
                    self._access[key] = self._access.get(key, 0) + 1
                return value
        if key in self._deleted:
            return None
        return self.static.get(key)

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched :meth:`get`: one vectorized Bloom probe guards the
        dynamic stage for the whole batch, and static-stage misses go
        down as one batch when the static structure supports it."""
        n = len(keys)
        out: list[Any | None] = [None] * n
        if n == 0:
            return out
        if self._bloom is None:
            positive = [True] * n
        else:
            positive = self._bloom.may_contain_many(keys)
        track = self.merge_strategy == "cold"
        static_idx: list[int] = []
        for i, key in enumerate(keys):
            if positive[i]:
                value = self.dynamic.get(key)
                if value is not None:
                    if track:
                        self._access[key] = self._access.get(key, 0) + 1
                    out[i] = value
                    continue
            if key not in self._deleted:
                static_idx.append(i)
        if static_idx:
            batch = getattr(self.static, "get_many", None)
            if batch is not None:
                for i, value in zip(
                    static_idx, batch([keys[i] for i in static_idx])
                ):
                    out[i] = value
            else:
                for i in static_idx:
                    out[i] = self.static.get(keys[i])
        return out

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        """Batched upsert (primary semantics): one vectorized Bloom
        probe + one dynamic-stage ``get_many`` classify the batch, the
        whole batch lands in the dynamic stage as one ``put_many``
        (new keys insert, existing keys shadow/overwrite — same as
        sequential put), the Bloom filter absorbs the keys via one
        ``add_many``, and the merge trigger runs once at the end."""
        if self.secondary:
            super().put_many(pairs)  # append-path loop
            return
        dedup: dict[bytes, Any] = {}
        for key, value in pairs:
            dedup[key] = value
        if not dedup:
            return
        keys = list(dedup)
        # Presence classification (for _len), same probe order as get():
        # Bloom-guarded dynamic first, then non-tombstoned static.
        if self._bloom is None:
            positive = [True] * len(keys)
        else:
            positive = self._bloom.may_contain_many(keys)
        present = [False] * len(keys)
        probe = [i for i, p in enumerate(positive) if p]
        if probe:
            for i, value in zip(probe, self.dynamic.get_many([keys[i] for i in probe])):
                present[i] = value is not None
        static_idx = [
            i
            for i in range(len(keys))
            if not present[i] and keys[i] not in self._deleted
        ]
        if static_idx:
            batch = getattr(self.static, "get_many", None)
            if batch is not None:
                values = batch([keys[i] for i in static_idx])
            else:
                values = [self.static.get(keys[i]) for i in static_idx]
            for i, value in zip(static_idx, values):
                present[i] = value is not None
        self._len += len(keys) - sum(present)
        self._deleted.difference_update(keys)
        self.dynamic.put_many(list(dedup.items()))
        self._dynamic_changed_many(keys)
        self._maybe_merge()

    def update(self, key: bytes, value: Any) -> bool:
        if self._bloom_positive(key) and self.dynamic.update(key, value):
            return True
        if key in self._deleted or self.static.get(key) is None:
            return False
        if self.secondary:
            # In-place value update avoids duplicating the key.
            self.static.get(key)[:] = value
            return True
        # Primary: shadow the static entry with a dynamic insert.
        self.dynamic.insert(key, value)
        self._dynamic_changed(key)
        self._maybe_merge()
        return True

    def delete(self, key: bytes) -> bool:
        # A key can live in BOTH stages (an update shadows a static
        # entry with a dynamic insert; a delete + re-insert does too),
        # so a successful dynamic delete must still tombstone the
        # static copy or it resurrects at the next read/scan.
        deleted_dynamic = self._bloom_positive(key) and self.dynamic.delete(key)
        in_static = key not in self._deleted and self.static.get(key) is not None
        if in_static:
            self._deleted.add(key)  # tombstone until the next merge
        if deleted_dynamic or in_static:
            self._len -= 1
            return True
        return False

    # -- range operations ------------------------------------------------------------------

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        """Merged iteration over both stages (dynamic shadows static)."""
        dyn_iter = self.dynamic.lower_bound(key)
        stat_iter = self.static.lower_bound(key)
        dyn = next(dyn_iter, None)
        stat = next(stat_iter, None)
        while dyn is not None or stat is not None:
            if stat is None or (dyn is not None and dyn[0] <= stat[0]):
                if dyn is not None and stat is not None and dyn[0] == stat[0]:
                    stat = next(stat_iter, None)
                if dyn[0] not in self._deleted:
                    yield dyn
                dyn = next(dyn_iter, None)
            else:
                if stat[0] not in self._deleted:
                    yield stat
                stat = next(stat_iter, None)

    def items(self) -> Iterator[tuple[bytes, Any]]:
        yield from self.lower_bound(b"")

    def __len__(self) -> int:
        return self._len

    # -- memory -------------------------------------------------------------------------------

    def memory_bytes(self) -> int:
        total = self.dynamic.memory_bytes() + self.static.memory_bytes()
        if self._bloom is not None:
            total += self._bloom.memory_bytes()
        return total


# -- ready-made hybrid indexes (the four structures of Figures 5.3-5.6) ----


def hybrid_btree(**kwargs) -> HybridIndex:
    """Hybrid B+tree: B+tree front, Compact B+tree bulk."""
    return HybridIndex(BPlusTree, CompactBPlusTree, **kwargs)


def hybrid_gapped(**kwargs) -> HybridIndex:
    """Hybrid Gapped B+tree: the batch-updatable gapped tree as the
    dynamic stage (vectorized ``put_many``; ``merge()`` consumes its
    exported columns), Compact B+tree bulk."""
    return HybridIndex(GappedBPlusTree, CompactBPlusTree, **kwargs)


def hybrid_skiplist(**kwargs) -> HybridIndex:
    """Hybrid Skip List."""
    return HybridIndex(PagedSkipList, CompactSkipList, **kwargs)


def hybrid_art(**kwargs) -> HybridIndex:
    """Hybrid ART."""
    return HybridIndex(ART, CompactART, **kwargs)


def hybrid_masstree(**kwargs) -> HybridIndex:
    """Hybrid Masstree."""
    return HybridIndex(Masstree, CompactMasstree, **kwargs)


def hybrid_compressed_btree(cache_nodes: int = 32, **kwargs) -> HybridIndex:
    """Hybrid-Compressed B+tree: static stage also block-compressed."""
    return HybridIndex(
        BPlusTree,
        lambda pairs: CompressedBPlusTree(pairs, cache_nodes=cache_nodes),
        **kwargs,
    )
