"""Dynamic-to-Static compact structures (Chapter 2).

The result of applying the Compaction + Structural Reduction rules to
the four dynamic trees, plus the (optional) Compression rule applied to
the B+tree, and the CLOCK node cache both of those share.
"""

from .compact_btree import CompactBPlusTree
from .compact_skiplist import CompactSkipList
from .compact_art import CompactART
from .compact_masstree import CompactMasstree
from .compressed_btree import CompressedBPlusTree
from .node_cache import ClockNodeCache

__all__ = [
    "CompactBPlusTree",
    "CompactSkipList",
    "CompactART",
    "CompactMasstree",
    "CompressedBPlusTree",
    "ClockNodeCache",
]
