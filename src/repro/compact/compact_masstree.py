"""Compact Masstree: the D-to-S Rules applied to Masstree (Figure 2.4).

After Compaction and Structural Reduction, each trie node's internal
B+tree is flattened into a single sorted keyslice array searched with
binary search ("performing a binary search is as fast as searching a
B+tree in Masstree"), and the per-leaf keybags are replaced by one
concatenated suffix byte array per trie node with an offset array
marking suffix starts.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from ..bench.counters import COUNTERS
from ..trees.base import POINTER_BYTES, StaticOrderedIndex
from ..trees.masstree import SLICE_BYTES, slice_key


class _CompactLayer:
    """One flattened trie node: parallel sorted arrays plus a suffix heap."""

    __slots__ = ("slice_keys", "entries", "suffix_bytes", "suffix_offsets")

    def __init__(self) -> None:
        self.slice_keys: list[bytes] = []  # 9-byte encoded slices, sorted
        self.entries: list[Any] = []  # value, or a child _CompactLayer
        # Concatenated suffixes with an offsets array (offsets[i] marks
        # the start of entry i's suffix; one extra sentinel at the end).
        self.suffix_bytes = b""
        self.suffix_offsets: list[int] = []

    def suffix(self, idx: int) -> bytes:
        return self.suffix_bytes[self.suffix_offsets[idx] : self.suffix_offsets[idx + 1]]


class CompactMasstree(StaticOrderedIndex):
    """Static Masstree with flattened layers, built from sorted pairs."""

    def __init__(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        keys = [k for k, _ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("pairs must be sorted by strictly increasing key")
        self._len = len(pairs)
        self._root = self._build(pairs, 0)

    def _build(self, pairs: Sequence[tuple[bytes, Any]], depth: int) -> _CompactLayer:
        layer = _CompactLayer()
        suffixes: list[bytes] = []
        i = 0
        while i < len(pairs):
            fragment = pairs[i][0][depth : depth + SLICE_BYTES]
            skey = slice_key(fragment)
            j = i
            while (
                j < len(pairs)
                and pairs[j][0][depth : depth + SLICE_BYTES] == fragment
            ):
                j += 1
            layer.slice_keys.append(skey)
            if j - i == 1:
                layer.entries.append(pairs[i][1])
                suffixes.append(pairs[i][0][depth + SLICE_BYTES :])
            else:
                layer.entries.append(
                    self._build(pairs[i:j], depth + SLICE_BYTES)
                )
                suffixes.append(b"")
            i = j
        offsets = [0]
        for s in suffixes:
            offsets.append(offsets[-1] + len(s))
        layer.suffix_bytes = b"".join(suffixes)
        layer.suffix_offsets = offsets
        return layer

    # -- queries -----------------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        layer = self._root
        depth = 0
        while True:
            skey = slice_key(key[depth : depth + SLICE_BYTES])
            COUNTERS.node_visit(
                len(layer.slice_keys) * 2 * POINTER_BYTES,
                lines_touched=max(1, len(layer.slice_keys).bit_length()),
            )
            COUNTERS.key_compares(max(1, len(layer.slice_keys).bit_length()))
            idx = bisect.bisect_left(layer.slice_keys, skey)
            if idx >= len(layer.slice_keys) or layer.slice_keys[idx] != skey:
                return None
            entry = layer.entries[idx]
            if isinstance(entry, _CompactLayer):
                layer = entry
                depth += SLICE_BYTES
                continue
            COUNTERS.key_compares(1)
            if layer.suffix(idx) == key[depth + SLICE_BYTES :]:
                return entry
            return None

    def _emit_layer(
        self, layer: _CompactLayer, prefix: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        for idx, skey in enumerate(layer.slice_keys):
            fragment = skey[: skey[SLICE_BYTES]]
            entry = layer.entries[idx]
            if isinstance(entry, _CompactLayer):
                yield from self._emit_layer(entry, prefix + fragment)
            else:
                yield prefix + fragment + layer.suffix(idx), entry

    def items(self) -> Iterator[tuple[bytes, Any]]:
        yield from self._emit_layer(self._root, b"")

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        yield from self._lb_layer(self._root, b"", key)

    def _lb_layer(
        self, layer: _CompactLayer, prefix: bytes, key: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        rest = key[len(prefix) :]
        target = slice_key(rest[:SLICE_BYTES])
        start = bisect.bisect_left(layer.slice_keys, target)
        for idx in range(start, len(layer.slice_keys)):
            skey = layer.slice_keys[idx]
            fragment = skey[: skey[SLICE_BYTES]]
            entry = layer.entries[idx]
            if skey == target:
                if isinstance(entry, _CompactLayer):
                    yield from self._lb_layer(entry, prefix + fragment, key)
                else:
                    full = prefix + fragment + layer.suffix(idx)
                    if full >= key:
                        yield full, entry
            elif isinstance(entry, _CompactLayer):
                yield from self._emit_layer(entry, prefix + fragment)
            else:
                yield prefix + fragment + layer.suffix(idx), entry

    def __len__(self) -> int:
        return self._len

    # -- serialization ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for persisting beside an SSTable (int values only)."""
        from .serialize import pairs_to_bytes

        return pairs_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompactMasstree":
        from .serialize import pairs_from_bytes

        return pairs_from_bytes(cls, data)

    # -- statistics ---------------------------------------------------------------------

    def _walk_layers(self) -> Iterator[_CompactLayer]:
        stack = [self._root]
        while stack:
            layer = stack.pop()
            yield layer
            for entry in layer.entries:
                if isinstance(entry, _CompactLayer):
                    stack.append(entry)

    def memory_bytes(self) -> int:
        """Slice keys (8B) + value/child slots (8B) + length byte per
        entry, plus the exact suffix heap and 4-byte offsets."""
        total = 0
        for layer in self._walk_layers():
            n = len(layer.slice_keys)
            total += n * (SLICE_BYTES + POINTER_BYTES + 1)
            total += len(layer.suffix_bytes)
            total += (n + 1) * 4  # offset array
        return total
