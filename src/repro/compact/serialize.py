"""Binary serialization for the D-to-S compact structures.

PR 1 gave the succinct substrate (FST / SuRF) a wire format; this
module does the same for the Chapter 2 compact structures so they can
be persisted beside an SSTable and reloaded without a rebuild pass.

Like :mod:`repro.fst.serialize`, values must be non-negative integers
(record IDs / offsets — the paper's indexes never store payloads).
Formats are length-checked on load: a truncated or tampered buffer
raises ``ValueError`` rather than yielding a corrupt structure.

* ``CompactBPlusTree`` / ``CompactSkipList`` / ``CompactART`` /
  ``CompactMasstree`` serialize their sorted pair array and rebuild on
  load (their builds are deterministic single passes).
* ``CompressedBPlusTree`` serializes its zlib leaf blobs *as stored*,
  so loading skips recompression and round-trips the exact encoded
  form.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

MAGIC_PAIRS = b"RCP1"
MAGIC_COMPRESSED = b"RCZ1"
MAGIC_GAPPED = b"RGB1"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"corrupt compact-structure buffer: {message}")


def _read_u32(data: bytes, offset: int) -> tuple[int, int]:
    _require(offset + 4 <= len(data), "truncated u32")
    return _U32.unpack_from(data, offset)[0], offset + 4


def _read_u64(data: bytes, offset: int) -> tuple[int, int]:
    _require(offset + 8 <= len(data), "truncated u64")
    return _U64.unpack_from(data, offset)[0], offset + 8


def _read_blob(data: bytes, offset: int) -> tuple[bytes, int]:
    n, offset = _read_u32(data, offset)
    _require(offset + n <= len(data), "truncated blob")
    return data[offset : offset + n], offset + n


def _pack_pairs(pairs: Sequence[tuple[bytes, Any]]) -> bytes:
    out = bytearray(_U64.pack(len(pairs)))
    for key, value in pairs:
        if not isinstance(value, int) or value < 0:
            raise TypeError(
                "serialization requires non-negative int values "
                f"(got {value!r} for key {key!r})"
            )
        out += _U32.pack(len(key))
        out += key
        out += _U64.pack(value)
    return bytes(out)


def _unpack_pairs(data: bytes, offset: int) -> tuple[list[tuple[bytes, int]], int]:
    n, offset = _read_u64(data, offset)
    pairs: list[tuple[bytes, int]] = []
    for _ in range(n):
        key, offset = _read_blob(data, offset)
        value, offset = _read_u64(data, offset)
        pairs.append((key, value))
    return pairs, offset


# -- pair-array structures (rebuild on load) --------------------------------


def pairs_to_bytes(structure: Any) -> bytes:
    """Serialize any compact structure that can enumerate its pairs."""
    header = MAGIC_PAIRS + _U32.pack(getattr(structure, "_slots", 0))
    return header + _pack_pairs(list(structure.items()))


def pairs_from_bytes(cls: type, data: bytes) -> Any:
    """Rebuild ``cls`` from :func:`pairs_to_bytes` output."""
    _require(data[:4] == MAGIC_PAIRS, f"bad magic {data[:4]!r}")
    slots, offset = _read_u32(data, 4)
    pairs, offset = _unpack_pairs(data, offset)
    _require(offset == len(data), "trailing bytes")
    if slots:
        return cls(pairs, slots)
    return cls(pairs)


# -- gapped B+tree (pair array + leaf capacity) -----------------------------


def gapped_to_bytes(tree: Any) -> bytes:
    """Serialize a gapped B+tree: its live pairs plus the leaf
    capacity, so a reload rebuilds an equivalent (rebalanced) tree."""
    header = MAGIC_GAPPED + _U32.pack(tree._capacity)
    return header + _pack_pairs(list(tree.items()))


def gapped_from_bytes(cls: type, data: bytes) -> Any:
    """Rebuild ``cls`` from :func:`gapped_to_bytes` output."""
    _require(data[:4] == MAGIC_GAPPED, f"bad magic {data[:4]!r}")
    capacity, offset = _read_u32(data, 4)
    _require(capacity >= 8, "leaf capacity out of range")
    pairs, offset = _unpack_pairs(data, offset)
    _require(offset == len(data), "trailing bytes")
    return cls(pairs, leaf_capacity=capacity)


# -- compressed B+tree (blob-level round-trip) ------------------------------


def separator_levels(first_keys: list[bytes], node_slots: int) -> list[list[bytes]]:
    """The internal separator levels over leaf first-keys (top first)."""
    levels: list[list[bytes]] = []
    current = first_keys
    while len(current) > node_slots:
        current = [current[i] for i in range(0, len(current), node_slots)]
        levels.append(current)
    levels.reverse()
    return levels


def compressed_btree_to_bytes(tree: Any) -> bytes:
    out = bytearray(MAGIC_COMPRESSED)
    out += _U32.pack(tree._slots)
    out += _U32.pack(tree._cache.capacity)
    out += _U64.pack(tree._len)
    out += _U64.pack(tree._uncompressed_bytes)
    out += _U32.pack(len(tree._leaf_blobs))
    for blob, first_key in zip(tree._leaf_blobs, tree._leaf_first_keys):
        out += _U32.pack(len(first_key))
        out += first_key
        out += _U32.pack(len(blob))
        out += blob
    return bytes(out)


def compressed_btree_from_bytes(cls: type, data: bytes) -> Any:
    from .node_cache import ClockNodeCache

    _require(data[:4] == MAGIC_COMPRESSED, f"bad magic {data[:4]!r}")
    offset = 4
    slots, offset = _read_u32(data, offset)
    cache_nodes, offset = _read_u32(data, offset)
    length, offset = _read_u64(data, offset)
    uncompressed, offset = _read_u64(data, offset)
    n_leaves, offset = _read_u32(data, offset)
    first_keys: list[bytes] = []
    blobs: list[bytes] = []
    for _ in range(n_leaves):
        first_key, offset = _read_blob(data, offset)
        blob, offset = _read_blob(data, offset)
        first_keys.append(first_key)
        blobs.append(blob)
    _require(offset == len(data), "trailing bytes")
    _require(slots > 0, "node_slots must be positive")
    tree = cls.__new__(cls)
    tree._slots = slots
    tree._len = length
    tree._leaf_blobs = blobs
    tree._leaf_first_keys = first_keys
    tree._uncompressed_bytes = uncompressed
    tree._levels = separator_levels(first_keys, slots)
    tree._cache = ClockNodeCache(cache_nodes)
    return tree
