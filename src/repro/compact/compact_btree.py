"""Compact B+tree: the D-to-S Rules applied to the STX B+tree (Ch. 2).

Rule #1 (Compaction): every node is 100 % full — the leaf level is one
contiguous key/value array packed at full fanout.  Rule #2 (Structural
Reduction): internal nodes keep only separator key references; child
*pointers* are gone because nodes at each level are contiguous, so a
child's position is calculated from arithmetic on its parent's index
(the dashed arrows of Figure 2.3).

The structure is built in one pass from a sorted pair list and is
read-only afterwards.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

import numpy as np

from ..bench.counters import COUNTERS
from ..trees.base import POINTER_BYTES, StaticOrderedIndex, packed_key_bytes
from ..trees.btree import DEFAULT_NODE_SLOTS


class CompactBPlusTree(StaticOrderedIndex):
    """Static, fully-packed B+tree with calculated child positions."""

    def __init__(
        self,
        pairs: Sequence[tuple[bytes, Any]],
        node_slots: int = DEFAULT_NODE_SLOTS,
    ) -> None:
        """Build from pairs sorted by key (strictly increasing keys)."""
        self._slots = node_slots
        self._keys: list[bytes] = [k for k, _ in pairs]
        self._values: list[Any] = [v for _, v in pairs]
        if any(
            self._keys[i] >= self._keys[i + 1] for i in range(len(self._keys) - 1)
        ):
            raise ValueError("pairs must be sorted by strictly increasing key")
        # Internal levels: level[0] is directly above the leaves; each
        # level stores the first key of every node one level below.
        self._levels: list[list[bytes]] = []
        current = self._keys
        while len(current) > node_slots:
            level = [
                current[i] for i in range(0, len(current), node_slots)
            ]
            self._levels.append(level)
            current = level
        self._levels.reverse()  # top level first

    # -- search -------------------------------------------------------------------

    def _locate(self, key: bytes) -> int:
        """Index of the first leaf entry with key >= the argument."""
        lo = 0  # node index at the current level
        for level in self._levels:
            start = lo * self._slots
            end = min(start + self._slots, len(level))
            COUNTERS.node_visit(
                self._slots * 2 * POINTER_BYTES,
                lines_touched=max(1, (end - start).bit_length()),
            )
            COUNTERS.key_compares(max(1, (end - start).bit_length()))
            # First entry > key, minus one = the child covering key.
            idx = bisect.bisect_right(level, key, start, end) - 1
            if idx < start:
                idx = start
            lo = idx
        start = lo * self._slots
        end = min(start + self._slots, len(self._keys))
        COUNTERS.node_visit(
            self._slots * 2 * POINTER_BYTES,
            lines_touched=max(1, (end - start).bit_length()),
        )
        COUNTERS.key_compares(max(1, (end - start).bit_length()))
        return bisect.bisect_left(self._keys, key, start, end)

    def get(self, key: bytes) -> Any | None:
        if not self._keys:
            return None
        idx = self._locate(key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return None

    def _key_array(self) -> np.ndarray:
        """Leaf keys as an object array for batched ``searchsorted``
        (dtype=object: numpy 'S' padding would collide keys that differ
        only in trailing NUL bytes).  Built lazily — a query-time
        accelerator excluded from :meth:`memory_bytes`."""
        arr = getattr(self, "_keys_arr", None)
        if arr is None:
            arr = np.empty(len(self._keys), dtype=object)
            arr[:] = self._keys
            self._keys_arr = arr
        return arr

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched :meth:`get`: one ``searchsorted`` over the packed
        leaf array answers the whole batch."""
        if not self._keys or not keys:
            return [None] * len(keys)
        queries = np.empty(len(keys), dtype=object)
        queries[:] = list(keys)
        idx = np.searchsorted(self._key_array(), queries, side="left")
        if COUNTERS.enabled:
            for key in keys:
                self._locate(key)
        out: list[Any | None] = [None] * len(keys)
        n = len(self._keys)
        for i, pos in enumerate(idx.tolist()):
            if pos < n and self._keys[pos] == keys[i]:
                out[i] = self._values[pos]
        return out

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        if not self._keys:
            return
        idx = self._locate(key)
        for i in range(idx, len(self._keys)):
            yield self._keys[i], self._values[i]

    def items(self) -> Iterator[tuple[bytes, Any]]:
        yield from zip(self._keys, self._values)

    def __len__(self) -> int:
        return len(self._keys)

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for persisting beside an SSTable (int values only)."""
        from .serialize import pairs_to_bytes

        return pairs_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompactBPlusTree":
        from .serialize import pairs_from_bytes

        return pairs_from_bytes(cls, data)

    # -- statistics ------------------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self._levels) + 1

    def memory_bytes(self) -> int:
        # Leaves: packed key reference + value slots, no slack; string
        # keys live in one concatenated array with 4-byte offsets.
        total = len(self._keys) * 2 * POINTER_BYTES
        total += sum(packed_key_bytes(k) for k in self._keys)
        # Internal levels: separator key references only (children are
        # located by calculation, not pointers).
        for level in self._levels:
            total += len(level) * POINTER_BYTES
        return total
