"""Compact Skip List: the D-to-S Rules applied to the paged skip list.

After Compaction (pages 100 % full) and Structural Reduction (lateral
and down pointers removed, pages stored contiguously per level), the
paged-deterministic skip list converges to the same shape as the
Compact B+tree — a packed data array plus calculated express-lane
levels (Figure 2.3 draws exactly this convergence).  We therefore share
the implementation and keep the distinct type for reporting.
"""

from __future__ import annotations

from .compact_btree import CompactBPlusTree
from ..trees.skiplist import DEFAULT_PAGE_SLOTS


class CompactSkipList(CompactBPlusTree):
    """Static, fully-packed skip list with calculated lane positions."""

    def __init__(self, pairs, page_slots: int = DEFAULT_PAGE_SLOTS) -> None:
        super().__init__(pairs, node_slots=page_slots)
