"""A CLOCK-replacement node cache (Section 2.4).

Compressed structures keep a small cache of recently decompressed
nodes; the thesis approximates LRU with the CLOCK algorithm.  The same
cache fronts the static stage of a hybrid index (Figure 5.9).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable


class ClockNodeCache:
    """Fixed-capacity cache with second-chance (CLOCK) eviction.

    Thread-safe: the LSM engine's background flusher/compactor and any
    number of reader threads (snapshots, the torture fuzzer) share one
    instance, so every structural operation runs under an internal
    lock.  ``loader`` is invoked while the lock is held — loads are
    short (one block decode) and serializing them keeps the hand/slot
    bookkeeping trivially consistent.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._slots: list[Hashable | None] = [None] * capacity
        self._ref: list[bool] = [False] * capacity
        self._values: dict[Hashable, tuple[int, Any]] = {}  # key -> (slot, value)
        self._hand = 0
        self.hits = 0
        self.misses = 0

    def get_or_load(self, key: Hashable, loader: Callable[[], Any]) -> Any:
        """Return the cached value, invoking ``loader`` on a miss."""
        with self._lock:
            hit = self._values.get(key)
            if hit is not None:
                slot, value = hit
                self._ref[slot] = True
                self.hits += 1
                return value
            self.misses += 1
            value = loader()
            self._install(key, value)
            return value

    def _install(self, key: Hashable, value: Any) -> None:
        # Advance the clock hand until a slot with a clear ref bit.
        while True:
            if self._slots[self._hand] is None:
                break
            if not self._ref[self._hand]:
                break
            self._ref[self._hand] = False
            self._hand = (self._hand + 1) % self.capacity
        victim = self._slots[self._hand]
        if victim is not None:
            del self._values[victim]
        self._slots[self._hand] = key
        # Install cold (ref bit clear): an entry earns its second chance
        # on its first cache hit, so one-shot nodes evict first.
        self._ref[self._hand] = False
        self._values[key] = (self._hand, value)
        self._hand = (self._hand + 1) % self.capacity

    def evict(self, key: Hashable) -> bool:
        """Drop ``key`` if cached, freeing its slot immediately.

        Lets owners invalidate entries whose backing object is gone
        (e.g. blocks of an SSTable dropped by compaction) instead of
        leaving dead entries to squat on capacity until the hand
        happens around.
        """
        with self._lock:
            hit = self._values.pop(key, None)
            if hit is None:
                return False
            slot, _ = hit
            self._slots[slot] = None
            self._ref[slot] = False
            return True

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._values

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def clear(self) -> None:
        with self._lock:
            self._slots = [None] * self.capacity
            self._ref = [False] * self.capacity
            self._values.clear()
            self._hand = 0
