"""Compact ART: the D-to-S Rules applied to the Adaptive Radix Tree.

ART's variable node shapes prevent the contiguous-level trick, so the
Compaction Rule instead *custom-sizes* every node (Section 2.2): a node
with ``n`` children uses Layout 1 (key array + child array, both length
``n``) when ``n <= 227`` and Layout 3 (the flat 256-slot pointer array)
otherwise — the exact crossover at which Layout 3 becomes smaller.
Lazy expansion and path compression carry over from dynamic ART, and
leaves remain 8-byte record pointers.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..bench.counters import COUNTERS
from ..trees.base import StaticOrderedIndex

#: Layout 1 beats the 256-slot array while n*(1+8) + 16 < 16 + 256*8.
LAYOUT1_MAX_FANOUT = 227
_HEADER_BYTES = 16
LEAF_BYTES = 8


class _StaticLeaf:
    __slots__ = ("key", "value")

    def __init__(self, key: bytes, value: Any) -> None:
        self.key = key
        self.value = value


class _StaticNode:
    __slots__ = ("prefix", "keys", "children", "terminal")

    def __init__(
        self,
        prefix: bytes,
        keys: list[int],
        children: list[Any],
        terminal: _StaticLeaf | None,
    ) -> None:
        self.prefix = prefix
        self.keys = keys
        self.children = children
        self.terminal = terminal

    def layout_bytes(self) -> int:
        n = len(self.keys) + (1 if self.terminal is not None else 0)
        if n <= LAYOUT1_MAX_FANOUT:
            return _HEADER_BYTES + n * (1 + 8)
        return _HEADER_BYTES + 256 * 8

    def find(self, byte: int) -> Any | None:
        # Layout 1: binary search the custom-sized key array;
        # Layout 3 would index directly — behaviourally identical.
        keys = self.keys
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < byte:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(keys) and keys[lo] == byte:
            return self.children[lo]
        return None


def _common_prefix_len(a: bytes, b: bytes, start: int) -> int:
    n = min(len(a), len(b))
    i = start
    while i < n and a[i] == b[i]:
        i += 1
    return i - start


class CompactART(StaticOrderedIndex):
    """Static ART with custom-sized nodes, built from sorted pairs."""

    def __init__(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        keys = [k for k, _ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("pairs must be sorted by strictly increasing key")
        self._len = len(pairs)
        self._root = self._build(pairs, 0) if pairs else None

    def _build(self, pairs: Sequence[tuple[bytes, Any]], depth: int) -> Any:
        if len(pairs) == 1:
            return _StaticLeaf(pairs[0][0], pairs[0][1])  # lazy expansion
        first_key = pairs[0][0]
        last_key = pairs[-1][0]
        # Path compression: extend the shared prefix as far as possible.
        shared = _common_prefix_len(first_key, last_key, depth)
        prefix = first_key[depth : depth + shared]
        depth += shared
        terminal: _StaticLeaf | None = None
        start = 0
        if len(first_key) == depth:
            terminal = _StaticLeaf(first_key, pairs[0][1])
            start = 1
        branch_keys: list[int] = []
        children: list[Any] = []
        group_start = start
        while group_start < len(pairs):
            byte = pairs[group_start][0][depth]
            group_end = group_start
            while group_end < len(pairs) and pairs[group_end][0][depth] == byte:
                group_end += 1
            branch_keys.append(byte)
            children.append(self._build(pairs[group_start:group_end], depth + 1))
            group_start = group_end
        return _StaticNode(prefix, branch_keys, children, terminal)

    # -- queries ----------------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _StaticLeaf):
                COUNTERS.node_visit(LEAF_BYTES, lines_touched=1)
                COUNTERS.key_compares(1)
                return node.value if node.key == key else None
            size = node.layout_bytes()
            COUNTERS.node_visit(size, lines_touched=1 if size <= 128 else 2)
            if node.prefix:
                if key[depth : depth + len(node.prefix)] != node.prefix:
                    return None
                depth += len(node.prefix)
            if depth == len(key):
                return node.terminal.value if node.terminal is not None else None
            node = node.find(key[depth])
            depth += 1
        return None

    def _emit_all(self, node: Any) -> Iterator[tuple[bytes, Any]]:
        if isinstance(node, _StaticLeaf):
            yield node.key, node.value
            return
        if node.terminal is not None:
            yield node.terminal.key, node.terminal.value
        for child in node.children:
            yield from self._emit_all(child)

    def _lb(self, node: Any, path: bytes, key: bytes) -> Iterator[tuple[bytes, Any]]:
        if isinstance(node, _StaticLeaf):
            if node.key >= key:
                yield node.key, node.value
            return
        full = path + node.prefix
        key_prefix = key[: len(full)]
        if full > key_prefix:
            yield from self._emit_all(node)
            return
        if full < key_prefix:
            return
        if len(key) <= len(full):
            yield from self._emit_all(node)
            return
        branch = key[len(full)]
        for byte, child in zip(node.keys, node.children):
            if byte < branch:
                continue
            if byte == branch:
                yield from self._lb(child, full + bytes([byte]), key)
            else:
                yield from self._emit_all(child)

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        if self._root is not None:
            yield from self._lb(self._root, b"", key)

    def items(self) -> Iterator[tuple[bytes, Any]]:
        if self._root is not None:
            yield from self._emit_all(self._root)

    def __len__(self) -> int:
        return self._len

    # -- serialization -------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for persisting beside an SSTable (int values only)."""
        from .serialize import pairs_to_bytes

        return pairs_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompactART":
        from .serialize import pairs_from_bytes

        return pairs_from_bytes(cls, data)

    # -- statistics ----------------------------------------------------------------------

    def memory_bytes(self) -> int:
        total = self._len * LEAF_BYTES
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, _StaticNode):
                total += node.layout_bytes()
                stack.extend(node.children)
        return total
