"""Compressed B+tree: the Compression Rule applied on top of Compact
B+tree (Section 2.4).

Only leaf nodes are compressed, so a point query decompresses at most
one node; a CLOCK cache of recently decompressed nodes bounds that
cost.  The thesis uses Snappy; we substitute ``zlib`` level 1 (stdlib,
same fast-block-codec role — see DESIGN.md §1.3).

Values must be 64-bit integers (record pointers), as in the paper's
index workloads, so leaves serialize without an object pickler.
"""

from __future__ import annotations

import bisect
import struct
import zlib
from typing import Any, Iterator, Sequence

import numpy as np

from ..bench.counters import COUNTERS
from ..trees.base import POINTER_BYTES, StaticOrderedIndex
from ..trees.btree import DEFAULT_NODE_SLOTS
from .node_cache import ClockNodeCache

COMPRESSION_LEVEL = 1  # fast codec, like Snappy/LZ4
DEFAULT_CACHE_NODES = 32


def _pack_leaf(keys: Sequence[bytes], values: Sequence[int]) -> bytes:
    """n | value[n] | key_offset[n+1] | key bytes."""
    n = len(keys)
    offsets = [0]
    for k in keys:
        offsets.append(offsets[-1] + len(k))
    return (
        struct.pack("<I", n)
        + struct.pack(f"<{n}q", *values)
        + struct.pack(f"<{n + 1}I", *offsets)
        + b"".join(keys)
    )


def _unpack_leaf(blob: bytes) -> tuple[list[bytes], list[int]]:
    (n,) = struct.unpack_from("<I", blob, 0)
    values = list(struct.unpack_from(f"<{n}q", blob, 4))
    offsets = struct.unpack_from(f"<{n + 1}I", blob, 4 + 8 * n)
    key_base = 4 + 8 * n + 4 * (n + 1)
    keys = [blob[key_base + offsets[i] : key_base + offsets[i + 1]] for i in range(n)]
    return keys, values


class CompressedBPlusTree(StaticOrderedIndex):
    """Static B+tree with zlib-compressed leaves and a CLOCK cache."""

    def __init__(
        self,
        pairs: Sequence[tuple[bytes, Any]],
        node_slots: int = DEFAULT_NODE_SLOTS,
        cache_nodes: int = DEFAULT_CACHE_NODES,
    ) -> None:
        keys = [k for k, _ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("pairs must be sorted by strictly increasing key")
        self._slots = node_slots
        self._len = len(pairs)
        self._leaf_blobs: list[bytes] = []
        self._leaf_first_keys: list[bytes] = []
        self._uncompressed_bytes = 0
        for start in range(0, len(pairs), node_slots):
            chunk = pairs[start : start + node_slots]
            raw = _pack_leaf([k for k, _ in chunk], [v for _, v in chunk])
            self._uncompressed_bytes += len(raw)
            self._leaf_blobs.append(zlib.compress(raw, COMPRESSION_LEVEL))
            self._leaf_first_keys.append(chunk[0][0])
        # Separator levels over leaf first-keys (as in CompactBPlusTree).
        self._levels: list[list[bytes]] = []
        current = self._leaf_first_keys
        while len(current) > node_slots:
            current = [current[i] for i in range(0, len(current), node_slots)]
            self._levels.append(current)
        self._levels.reverse()
        self._cache = ClockNodeCache(cache_nodes)

    # -- leaf access ---------------------------------------------------------------

    def _leaf(self, idx: int) -> tuple[list[bytes], list[int]]:
        return self._cache.get_or_load(
            idx, lambda: _unpack_leaf(zlib.decompress(self._leaf_blobs[idx]))
        )

    def _leaf_index(self, key: bytes) -> int:
        """Index of the leaf that may contain ``key``."""
        idx = bisect.bisect_right(self._leaf_first_keys, key) - 1
        return max(idx, 0)

    # -- queries ----------------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        if not self._leaf_blobs:
            return None
        leaf_idx = self._leaf_index(key)
        COUNTERS.node_visit(len(self._leaf_blobs[leaf_idx]))
        keys, values = self._leaf(leaf_idx)
        i = bisect.bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return values[i]
        return None

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched :meth:`get`: one ``searchsorted`` over the leaf
        first-key array routes the whole batch, then each distinct leaf
        is decompressed once and all its queries answered together."""
        if not self._leaf_blobs or not keys:
            return [None] * len(keys)
        first = getattr(self, "_first_keys_arr", None)
        if first is None:
            # dtype=object: 'S' padding would collide trailing-NUL keys.
            first = np.empty(len(self._leaf_first_keys), dtype=object)
            first[:] = self._leaf_first_keys
            self._first_keys_arr = first
        queries = np.empty(len(keys), dtype=object)
        queries[:] = list(keys)
        leaf_idx = np.maximum(
            np.searchsorted(first, queries, side="right") - 1, 0
        )
        out: list[Any | None] = [None] * len(keys)
        # Group by leaf so each node is decompressed at most once.
        order = np.argsort(leaf_idx, kind="stable")
        cur_leaf = -1
        leaf_keys: list[bytes] = []
        leaf_values: list[int] = []
        for qi in order.tolist():
            li = int(leaf_idx[qi])
            if li != cur_leaf:
                if COUNTERS.enabled:
                    COUNTERS.node_visit(len(self._leaf_blobs[li]))
                leaf_keys, leaf_values = self._leaf(li)
                cur_leaf = li
            elif COUNTERS.enabled:
                COUNTERS.node_visit(len(self._leaf_blobs[li]))
            key = keys[qi]
            i = bisect.bisect_left(leaf_keys, key)
            if i < len(leaf_keys) and leaf_keys[i] == key:
                out[qi] = leaf_values[i]
        return out

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        if not self._leaf_blobs:
            return
        leaf_idx = self._leaf_index(key)
        keys, values = self._leaf(leaf_idx)
        i = bisect.bisect_left(keys, key)
        while leaf_idx < len(self._leaf_blobs):
            keys, values = self._leaf(leaf_idx)
            while i < len(keys):
                yield keys[i], values[i]
                i += 1
            leaf_idx += 1
            i = 0

    def items(self) -> Iterator[tuple[bytes, Any]]:
        for leaf_idx in range(len(self._leaf_blobs)):
            keys, values = self._leaf(leaf_idx)
            yield from zip(keys, values)

    def __len__(self) -> int:
        return self._len

    # -- serialization -------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the compressed leaves as stored: loading skips the
        compression pass and round-trips the exact encoded form."""
        from .serialize import compressed_btree_to_bytes

        return compressed_btree_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompressedBPlusTree":
        from .serialize import compressed_btree_from_bytes

        return compressed_btree_from_bytes(cls, data)

    # -- statistics ----------------------------------------------------------------------

    def compression_ratio(self) -> float:
        compressed = sum(len(b) for b in self._leaf_blobs)
        return compressed / self._uncompressed_bytes if self._uncompressed_bytes else 1.0

    def memory_bytes(self) -> int:
        total = sum(len(b) for b in self._leaf_blobs)
        total += len(self._leaf_blobs) * POINTER_BYTES  # blob pointers
        for level in [self._leaf_first_keys, *self._levels]:
            total += len(level) * POINTER_BYTES
        # Cache holds up to `capacity` uncompressed nodes (bounded by
        # the number of distinct nodes it could ever hold).
        avg_node = self._uncompressed_bytes // max(1, len(self._leaf_blobs))
        total += min(self._cache.capacity, len(self._leaf_blobs)) * avg_node
        return total
