"""FST and SuRF serialization.

The paper's flagship deployment persists one SuRF per SSTable next to
the table file (Section 4.2), so filters must round-trip through bytes.
The format is a little-endian header + the raw succinct arrays; rank
and select supports are derived structures and are rebuilt on load.

Values must be non-negative 64-bit integers (key indexes / record
pointers), which is what both SuRF and the paper's index workloads
store.
"""

from __future__ import annotations

import struct

import numpy as np

from ..succinct.bitvector import BitVector
from ..succinct.rank import RankSupport
from ..succinct.select import SelectSupport
from .fst import FST, _DENSE_RANK_BLOCK

MAGIC = b"FST1"
SURF_MAGIC = b"SRF1"


def _pack_bitvector(bv: BitVector) -> bytes:
    words = bv.words.tobytes()
    return struct.pack("<QQ", len(bv), len(words)) + words


def _unpack_bitvector(
    buf: memoryview, offset: int, copy: bool = True
) -> tuple[BitVector, int]:
    n_bits, n_bytes = struct.unpack_from("<QQ", buf, offset)
    offset += 16
    raw = buf[offset : offset + n_bytes]
    if len(raw) != n_bytes or n_bytes % 8:
        raise ValueError("corrupt FST blob: truncated or misaligned bit vector")
    # copy=False keeps an np.frombuffer view over the caller's buffer:
    # read-only (so is the BitVector — it never mutates its words after
    # construction) and aliasing the buffer's lifetime.
    words = np.frombuffer(raw, dtype=np.uint64)
    if copy:
        words = words.copy()
    # BitVector.__init__ rejects nonzero padding, so a tampered buffer
    # fails loudly here instead of silently corrupting rank/select.
    try:
        return BitVector(words, n_bits), offset + n_bytes
    except ValueError as exc:
        raise ValueError(f"corrupt FST blob: {exc}") from exc


def _pack_u64_list(values) -> bytes:
    arr = np.asarray(list(values), dtype=np.uint64)
    raw = arr.tobytes()
    return struct.pack("<Q", len(arr)) + raw


def _unpack_u64_list(buf: memoryview, offset: int) -> tuple[list[int], int]:
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    # Deliberately a *copy* (python ints): these land in FST fields that
    # are indexed scalar-by-scalar on the hot path, where boxed numpy
    # scalars from a view would be slower, not faster.
    arr = np.frombuffer(buf[offset : offset + 8 * n], dtype=np.uint64)
    return [int(v) for v in arr], offset + 8 * n


def _unpack_u64_array(buf: memoryview, offset: int) -> tuple[np.ndarray, int]:
    """View-path variant of :func:`_unpack_u64_list`: a zero-copy
    ``np.frombuffer`` view (read-only when the buffer is)."""
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    arr = np.frombuffer(buf[offset : offset + 8 * n], dtype=np.uint64)
    return arr, offset + 8 * n


def fst_to_bytes(fst: FST) -> bytes:
    """Serialize an FST whose values are non-negative integers."""
    parts = [
        MAGIC,
        struct.pack(
            "<QQQQQQB",
            fst.n_keys,
            fst.height,
            fst.dense_height,
            fst.dense_node_count,
            fst.dense_child_count,
            fst.sparse_node_count,
            1 if fst.truncated else 0,
        ),
        _pack_bitvector(fst.d_labels),
        _pack_bitvector(fst.d_haschild),
        _pack_bitvector(fst.d_isprefix),
        _pack_u64_list(fst.d_values),
        struct.pack("<Q", len(fst.s_labels)),
        fst.s_labels.astype(np.int16).tobytes(),
        _pack_bitvector(fst.s_haschild),
        _pack_bitvector(fst.s_louds),
        _pack_u64_list(fst.s_values),
        _pack_u64_list(fst._dense_level_node_start),
        _pack_u64_list(fst._sparse_level_start),
    ]
    return b"".join(parts)


def fst_from_bytes(data, copy: bool = True) -> FST:
    """Reconstruct an FST; rank/select supports are rebuilt.

    ``copy=False`` is the zero-copy path: the bit-vector words, sparse
    labels, and value arrays are ``np.frombuffer`` views aliasing
    ``data`` (read-only when ``data`` is, e.g. over an mmap'd SSTable).
    The caller owns the buffer's lifetime; the FST never mutates these
    arrays, so sharing is safe.  Rank/select supports are still built
    fresh — they are derived, engine-private, and small.
    """
    buf = memoryview(data)
    if bytes(buf[:4]) != MAGIC:
        raise ValueError("not an FST blob (bad magic)")
    offset = 4
    (
        n_keys,
        height,
        dense_height,
        dense_node_count,
        dense_child_count,
        sparse_node_count,
        truncated,
    ) = struct.unpack_from("<QQQQQQB", buf, offset)
    offset += struct.calcsize("<QQQQQQB")

    fst = FST.__new__(FST)
    fst.n_keys = n_keys
    fst.height = height
    fst.dense_height = dense_height
    fst.dense_node_count = dense_node_count
    fst.dense_child_count = dense_child_count
    fst.sparse_node_count = sparse_node_count
    fst.truncated = bool(truncated)
    fst.suffixes = []  # reconstructible only from the key corpus
    fst._label_search = "binary"
    fst._sparse_rank_block_override = 512
    fst._select_sample_override = 64

    unpack_values = _unpack_u64_list if copy else _unpack_u64_array
    fst.d_labels, offset = _unpack_bitvector(buf, offset, copy)
    fst.d_haschild, offset = _unpack_bitvector(buf, offset, copy)
    fst.d_isprefix, offset = _unpack_bitvector(buf, offset, copy)
    fst.d_values, offset = unpack_values(buf, offset)
    (n_labels,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    s_labels = np.frombuffer(buf[offset : offset + 2 * n_labels], dtype=np.int16)
    fst.s_labels = s_labels.copy() if copy else s_labels
    offset += 2 * n_labels
    fst.s_haschild, offset = _unpack_bitvector(buf, offset, copy)
    fst.s_louds, offset = _unpack_bitvector(buf, offset, copy)
    fst.s_values, offset = unpack_values(buf, offset)
    # Level-start tables are a handful of entries, indexed per lookup:
    # always materialize to python ints.
    fst._dense_level_node_start, offset = _unpack_u64_list(buf, offset)
    fst._sparse_level_start, offset = _unpack_u64_list(buf, offset)

    fst._d_labels_rank = RankSupport(fst.d_labels, _DENSE_RANK_BLOCK)
    fst._d_haschild_rank = RankSupport(fst.d_haschild, _DENSE_RANK_BLOCK)
    fst._d_isprefix_rank = RankSupport(fst.d_isprefix, _DENSE_RANK_BLOCK)
    fst._s_haschild_rank = RankSupport(fst.s_haschild, 512)
    fst._s_louds_rank = RankSupport(fst.s_louds, 512)
    fst._s_louds_select = (
        SelectSupport(fst.s_louds, bit=1, sample_rate=64)
        if len(fst.s_louds)
        else None
    )
    return fst


def surf_to_bytes(surf) -> bytes:
    """Serialize a SuRF (any suffix variant; tombstones included)."""
    from ..surf.surf import SuRF

    if not isinstance(surf, SuRF):
        raise TypeError("expected a SuRF")
    fst_blob = fst_to_bytes(surf.fst)
    tombstones = bytes(surf._tombstones) if surf._tombstones is not None else b""
    header = struct.pack(
        "<BBQQ",
        surf.hash_bits,
        surf.real_bits,
        len(fst_blob),
        len(tombstones),
    )
    return (
        SURF_MAGIC
        + header
        + fst_blob
        + tombstones
        + _pack_u64_list(surf._hash_suffixes)
        + _pack_u64_list(surf._real_suffixes)
    )


def surf_from_bytes(data, copy: bool = True):
    """Reconstruct a SuRF from :func:`surf_to_bytes` output.

    ``copy=False`` threads the zero-copy contract through to
    :func:`fst_from_bytes` and the suffix arrays; the caller keeps the
    backing buffer alive.  Tombstones are *always* copied into an owned
    ``bytearray``: they are the one mutable piece of a SuRF
    (``delete()`` sets bits in place), so a view would violate the
    read-only contract of an mmap'd source.
    """
    from ..surf.surf import SuRF

    buf = memoryview(data)
    if bytes(buf[:4]) != SURF_MAGIC:
        raise ValueError("not a SuRF blob (bad magic)")
    offset = 4
    hash_bits, real_bits, fst_len, tomb_len = struct.unpack_from("<BBQQ", buf, offset)
    offset += struct.calcsize("<BBQQ")
    fst_blob = buf[offset : offset + fst_len]
    fst = fst_from_bytes(bytes(fst_blob) if copy else fst_blob, copy=copy)
    offset += fst_len
    tombstones = bytearray(buf[offset : offset + tomb_len]) if tomb_len else None
    offset += tomb_len
    unpack_values = _unpack_u64_list if copy else _unpack_u64_array
    hash_suffixes, offset = unpack_values(buf, offset)
    real_suffixes, offset = unpack_values(buf, offset)

    surf = SuRF.__new__(SuRF)
    if hash_bits and real_bits:
        surf.suffix_type = "mixed"
    elif hash_bits:
        surf.suffix_type = "hash"
    elif real_bits:
        surf.suffix_type = "real"
    else:
        surf.suffix_type = "none"
    surf.hash_bits = hash_bits
    surf.real_bits = real_bits
    surf.fst = fst
    surf._tombstones = tombstones
    surf._hash_suffixes = hash_suffixes
    surf._real_suffixes = real_suffixes
    return surf
