"""Fast Succinct Trie (Chapter 3): LOUDS-DS encoding and operations."""

from .builder import PREFIX_LABEL, BuiltTrie, LevelData, build_trie
from .fst import DEFAULT_SIZE_RATIO, FANOUT, FST, FstIterator
from .serialize import fst_from_bytes, fst_to_bytes, surf_from_bytes, surf_to_bytes

__all__ = [
    "FST",
    "FstIterator",
    "build_trie",
    "BuiltTrie",
    "LevelData",
    "PREFIX_LABEL",
    "FANOUT",
    "DEFAULT_SIZE_RATIO",
    "fst_to_bytes",
    "fst_from_bytes",
    "surf_to_bytes",
    "surf_from_bytes",
]
