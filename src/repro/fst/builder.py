"""Level-wise trie construction for FST and SuRF (Chapters 3-4).

The builder turns a sorted key list into per-level label / has-child /
louds sequences in a single scan, independent of the final encoding
(LOUDS-Dense or LOUDS-Sparse).  Two modes:

* ``truncate=False`` — the FST mode: keys are stored completely, so a
  branch terminates exactly where its key ends.
* ``truncate=True``  — the SuRF mode: a subtree holding a single key is
  truncated to its first distinguishing byte (SuRF-Base stores "the
  shared prefix and one more byte for each key", Section 4.1.1); the
  remaining suffix is reported to the caller for optional suffix bits.

A key that is a proper prefix of other keys is represented by the
*prefix-key* pseudo-label :data:`PREFIX_LABEL` placed first in its node
(encoded later as D-IsPrefixKey in dense levels and as the positional
0xFF label in sparse levels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

#: Pseudo-label marking "the path to this node is itself a key".
#: Sorts before every real label (0..255).
PREFIX_LABEL = -1


@dataclass
class LevelData:
    """The label sequence of one trie level, in level order."""

    labels: list[int] = field(default_factory=list)
    has_child: list[bool] = field(default_factory=list)
    louds: list[bool] = field(default_factory=list)  # True = first label in node
    values: list[Any] = field(default_factory=list)  # one per terminating label
    n_nodes: int = 0


@dataclass
class BuiltTrie:
    """Builder output: per-level sequences plus key statistics."""

    levels: list[LevelData]
    n_keys: int
    #: ``suffixes[i]`` is the byte suffix of ``keys[i]`` cut off by
    #: truncation (empty when the full key is stored).
    suffixes: list[bytes]

    @property
    def height(self) -> int:
        return len(self.levels)

    def total_nodes(self) -> int:
        return sum(level.n_nodes for level in self.levels)

    def total_labels(self) -> int:
        return sum(len(level.labels) for level in self.levels)


def build_trie(
    keys: Sequence[bytes],
    values: Sequence[Any] | None = None,
    truncate: bool = False,
) -> BuiltTrie:
    """Build level data from sorted, distinct keys.

    ``values[i]`` is attached to ``keys[i]``; defaults to the key index.
    """
    for i in range(len(keys) - 1):
        if keys[i] >= keys[i + 1]:
            raise ValueError("keys must be sorted and distinct")
    if values is None:
        values = list(range(len(keys)))
    if len(values) != len(keys):
        raise ValueError("values must parallel keys")

    levels: list[LevelData] = []
    suffixes: list[bytes] = [b""] * len(keys)

    def level_at(depth: int) -> LevelData:
        while len(levels) <= depth:
            levels.append(LevelData())
        return levels[depth]

    def emit(
        depth: int, label: int, has_child: bool, first: bool, value: Any = None
    ) -> None:
        level = level_at(depth)
        level.labels.append(label)
        level.has_child.append(has_child)
        level.louds.append(first)
        if first:
            level.n_nodes += 1
        if not has_child:
            level.values.append(value)

    def build_node(lo: int, hi: int, depth: int) -> None:
        """Emit the node for keys[lo:hi], all sharing a depth-byte prefix."""
        first = True
        if len(keys[lo]) == depth:
            # The shared prefix itself is a stored key.
            emit(depth, PREFIX_LABEL, False, first, values[lo])
            lo += 1
            first = False
        i = lo
        while i < hi:
            byte = keys[i][depth]
            j = i
            while j < hi and keys[j][depth] == byte:
                j += 1
            single = j - i == 1
            if single and (truncate or len(keys[i]) == depth + 1):
                emit(depth, byte, False, first, values[i])
                suffixes[i] = keys[i][depth + 1 :]
            elif single:
                # Full-key mode, single-key subtree: a chain of
                # one-child nodes.  Emit it iteratively — recursing a
                # frame per byte would overflow on long keys.
                key = keys[i]
                emit(depth, byte, True, first)
                d = depth + 1
                while d < len(key) - 1:
                    emit(d, key[d], True, True)
                    d += 1
                emit(d, key[d], False, True, values[i])
            else:
                emit(depth, byte, True, first)
                build_node(i, j, depth + 1)
            first = False
            i = j

    if keys:
        build_node(0, len(keys), 0)
    return BuiltTrie(levels=levels, n_keys=len(keys), suffixes=suffixes)
