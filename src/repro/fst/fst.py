"""The Fast Succinct Trie (Chapter 3): LOUDS-DS encoding + operations.

The upper levels of the trie are encoded with LOUDS-Dense (three
bitmaps per node: D-Labels, D-HasChild, D-IsPrefixKey), the lower
levels with LOUDS-Sparse (S-Labels byte sequence, S-HasChild, S-LOUDS).
The dense/sparse cutoff follows the paper's size-ratio rule with
``R = 64`` by default: the cutoff is the largest level l such that
``dense_size(l) * R <= sparse_size(l)``.

Navigation uses the customized rank/select structures of Section 3.6:
rank blocks of 64 bits on the dense bitmaps and 512 bits on the sparse
ones, select sampling rate 64 on S-LOUDS.  The label-search strategy is
configurable (``vector`` = the SIMD stand-in, ``binary``, ``linear``)
for the Figure 3.6 ablation.

Supports ``get``, ``seek`` (LowerBound iterator), ``next``, ``items``
and the approximate-free ``count`` used by SuRF's range counts.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from ..bench.counters import COUNTERS
from ..succinct.bitvector import BitVector
from ..succinct.rank import RankSupport
from ..succinct.select import SelectSupport
from .builder import PREFIX_LABEL, BuiltTrie, build_trie

FANOUT = 256


def _concat_words(parts: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint64)
#: Default LOUDS-Sparse : LOUDS-Dense size ratio (Section 3.4).
DEFAULT_SIZE_RATIO = 64

_DENSE_RANK_BLOCK = 64
_SPARSE_RANK_BLOCK = 512
_SELECT_SAMPLE = 64


def _choose_dense_levels(trie: BuiltTrie, size_ratio: float) -> int:
    """Largest cutoff l with dense_size(l) * R <= sparse_size(l)."""
    heights = trie.height
    # dense_size(l): nodes above l cost 2*256+1 bits each.
    # sparse_size(l): labels at level >= l cost 8+1+1 bits each.
    nodes_above = 0
    labels_below = trie.total_labels()
    best = 0
    for level in range(heights + 1):
        dense_bits = nodes_above * (2 * FANOUT + 1)
        sparse_bits = labels_below * 10
        if dense_bits * size_ratio <= sparse_bits:
            best = level
        if level < heights:
            nodes_above += trie.levels[level].n_nodes
            labels_below -= len(trie.levels[level].labels)
    return best


class FST:
    """Static succinct trie mapping byte keys to values."""

    def __init__(
        self,
        keys: Sequence[bytes],
        values: Sequence[Any] | None = None,
        size_ratio: float = DEFAULT_SIZE_RATIO,
        dense_levels: int | None = None,
        truncate: bool = False,
        label_search: str = "binary",
        sparse_rank_block: int = _SPARSE_RANK_BLOCK,
        select_sample: int = _SELECT_SAMPLE,
    ) -> None:
        if label_search not in ("vector", "binary", "linear"):
            raise ValueError("label_search must be vector|binary|linear")
        self._label_search = label_search
        self._sparse_rank_block_override = sparse_rank_block
        self._select_sample_override = select_sample
        trie = build_trie(keys, values, truncate=truncate)
        self.n_keys = trie.n_keys
        self.height = trie.height
        self.truncated = truncate
        self.suffixes = trie.suffixes  # used by SuRF; value order
        if dense_levels is None:
            dense_levels = _choose_dense_levels(trie, size_ratio)
        self.dense_height = min(dense_levels, trie.height)
        self._encode(trie)

    # -- encoding -------------------------------------------------------------

    def _encode(self, trie: BuiltTrie) -> None:
        dh = self.dense_height
        # ---- dense levels ----
        # Bitmap assembly is a pure scatter: each real label sets bit
        # (node * 256 + label) in D-Labels (and D-HasChild when it has
        # one), so the whole level is encoded with numpy word kernels —
        # no per-bit Python work.
        words_per_node = FANOUT // 64
        label_word_parts: list[np.ndarray] = []
        child_word_parts: list[np.ndarray] = []
        isprefix_parts: list[np.ndarray] = []
        d_values: list[Any] = []
        dense_node_count = 0
        dense_child_count = 0
        #: per dense level: starting node number (for count boundaries)
        self._dense_level_node_start: list[int] = []
        for level in trie.levels[:dh]:
            self._dense_level_node_start.append(dense_node_count)
            labels = np.asarray(level.labels, dtype=np.int64)
            has_child = np.asarray(level.has_child, dtype=bool)
            louds = np.asarray(level.louds, dtype=bool)
            node_of = np.cumsum(louds) - 1  # node index within the level
            n_nodes = level.n_nodes
            real = labels >= 0  # PREFIX_LABEL has no bitmap position
            label_words = np.zeros(n_nodes * words_per_node, dtype=np.uint64)
            child_words = np.zeros(n_nodes * words_per_node, dtype=np.uint64)
            pos = node_of[real] * FANOUT + labels[real]
            bits = np.left_shift(np.uint64(1), (pos & 63).astype(np.uint64))
            np.bitwise_or.at(label_words, pos >> 6, bits)
            child = real & has_child
            cpos = node_of[child] * FANOUT + labels[child]
            np.bitwise_or.at(
                child_words,
                cpos >> 6,
                np.left_shift(np.uint64(1), (cpos & 63).astype(np.uint64)),
            )
            is_prefix = np.zeros(n_nodes, dtype=np.uint8)
            is_prefix[node_of[~real]] = 1
            label_word_parts.append(label_words)
            child_word_parts.append(child_words)
            isprefix_parts.append(is_prefix)
            # level.values holds one value per terminating label in
            # label order, which is exactly D-Values order.
            d_values.extend(level.values)
            dense_node_count += n_nodes
            dense_child_count += int(child.sum())
        n_dense_bits = dense_node_count * FANOUT
        self.d_labels = BitVector(
            _concat_words(label_word_parts), n_dense_bits
        )
        self.d_haschild = BitVector(
            _concat_words(child_word_parts), n_dense_bits
        )
        self.d_isprefix = (
            BitVector.from_bools(np.concatenate(isprefix_parts))
            if isprefix_parts
            else BitVector.zeros(0)
        )
        self.d_values = d_values
        self.dense_node_count = dense_node_count
        self.dense_child_count = dense_child_count
        self._d_labels_rank = RankSupport(self.d_labels, _DENSE_RANK_BLOCK)
        self._d_haschild_rank = RankSupport(self.d_haschild, _DENSE_RANK_BLOCK)
        self._d_isprefix_rank = RankSupport(self.d_isprefix, _DENSE_RANK_BLOCK)

        # ---- sparse levels ----
        # Per-level sequences concatenate directly; the two bitvectors
        # pack in one packbits pass each.
        label_parts: list[np.ndarray] = []
        hc_parts: list[np.ndarray] = []
        louds_parts: list[np.ndarray] = []
        s_values: list[Any] = []
        #: per sparse level: starting label index (for count boundaries)
        self._sparse_level_start: list[int] = []
        sparse_node_count = 0
        n_sparse_labels = 0
        for level in trie.levels[dh:]:
            self._sparse_level_start.append(n_sparse_labels)
            label_parts.append(np.asarray(level.labels, dtype=np.int16))
            hc_parts.append(np.asarray(level.has_child, dtype=np.uint8))
            louds_parts.append(np.asarray(level.louds, dtype=np.uint8))
            # level.values is one value per terminating label in label
            # order — exactly S-Values order.
            s_values.extend(level.values)
            sparse_node_count += level.n_nodes
            n_sparse_labels += len(level.labels)
        self.s_labels = (
            np.concatenate(label_parts) if label_parts else np.zeros(0, dtype=np.int16)
        )
        self.s_haschild = (
            BitVector.from_bools(np.concatenate(hc_parts))
            if hc_parts
            else BitVector.zeros(0)
        )
        self.s_louds = (
            BitVector.from_bools(np.concatenate(louds_parts))
            if louds_parts
            else BitVector.zeros(0)
        )
        self.s_values = s_values
        self.sparse_node_count = sparse_node_count
        self._sparse_level_start.append(n_sparse_labels)
        self._s_haschild_rank = RankSupport(self.s_haschild, self._sparse_block())
        self._s_louds_rank = RankSupport(self.s_louds, self._sparse_block())
        self._s_louds_select = (
            SelectSupport(self.s_louds, bit=1, sample_rate=self._select_rate())
            if len(self.s_louds)
            else None
        )

    def _sparse_block(self) -> int:
        return getattr(self, "_sparse_rank_block_override", _SPARSE_RANK_BLOCK)

    def _select_rate(self) -> int:
        return getattr(self, "_select_sample_override", _SELECT_SAMPLE)

    # -- basic node navigation ---------------------------------------------------

    def _sparse_node_range(self, snode: int) -> tuple[int, int]:
        """Label index range [start, end) of sparse node ``snode`` (0-based)."""
        start = self._s_louds_select.select(snode + 1)
        return start, self._louds_node_end(start)

    def _louds_node_end(self, start: int) -> int:
        """First S-LOUDS set bit after ``start`` (= node end), by local
        word scanning — nodes are small, so this beats a second select."""
        bv = self.s_louds
        n = len(bv)
        pos = start + 1
        if pos >= n:
            return n
        word_idx = pos >> 6
        word = bv.word(word_idx) >> (pos & 63)
        if word:
            return pos + ((word & -word).bit_length() - 1)
        word_idx += 1
        n_words = (n + 63) >> 6
        while word_idx < n_words:
            word = bv.word(word_idx)
            if word:
                return (word_idx << 6) + ((word & -word).bit_length() - 1)
            word_idx += 1
        return n

    def _sparse_find_label(self, start: int, end: int, byte: int) -> int | None:
        """Index of ``byte`` among s_labels[start:end], or None."""
        mode = self._label_search
        if mode == "vector":
            # numpy vectorized equality: the SIMD-search stand-in.
            hits = np.nonzero(self.s_labels[start:end] == byte)[0]
            return start + int(hits[0]) if len(hits) else None
        if mode == "binary":
            lo, hi = start, end
            # Prefix pseudo-label (-1) sorts first; array is sorted.
            while lo < hi:
                mid = (lo + hi) // 2
                if self.s_labels[mid] < byte:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < end and self.s_labels[lo] == byte:
                return lo
            return None
        for i in range(start, end):
            if self.s_labels[i] == byte:
                return i
        return None

    # -- value positions -----------------------------------------------------------

    def _dense_value_index(self, pos: int) -> int:
        """0-based D-Values index for the terminating label at ``pos``."""
        node = pos // FANOUT
        return (
            self._d_isprefix_rank.rank1(node)
            + self._d_labels_rank.rank1(pos)
            - self._d_haschild_rank.rank1(pos)
            - 1
        )

    def _dense_prefix_value_index(self, node: int) -> int:
        """0-based D-Values index of node's prefix-key value."""
        before = node * FANOUT - 1
        labels = self._d_labels_rank.rank1(before) if before >= 0 else 0
        childs = self._d_haschild_rank.rank1(before) if before >= 0 else 0
        return self._d_isprefix_rank.rank1(node) - 1 + labels - childs

    def _sparse_value_index(self, idx: int) -> int:
        """0-based S-Values index for the terminating label at ``idx``."""
        return idx - self._s_haschild_rank.rank1(idx)

    # -- point lookup -----------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        """Exact-match lookup (None if absent).

        In truncate mode a lookup that exhausts the stored prefix
        returns the stored value — the caller (SuRF) must verify suffix
        bits itself.
        """
        found = self._lookup(key)
        return found[0] if found is not None else None

    def _lookup(self, key: bytes) -> tuple[Any, bytes] | None:
        """Returns (value, remaining_key_after_stored_prefix) or None."""
        if self.n_keys == 0:
            return None
        node = 0
        level = 0
        # ---- dense walk ----
        while level < self.dense_height:
            # One LOUDS-Dense step: a D-Labels word, the colocated
            # D-HasChild word, and (amortised) the dense rank LUT line.
            COUNTERS.node_visit(2 * FANOUT // 8, lines_touched=2)
            if level == len(key):
                if self.d_isprefix.get(node):
                    return self.d_values[self._dense_prefix_value_index(node)], b""
                return None
            pos = node * FANOUT + key[level]
            if not self.d_labels.get(pos):
                return None
            if not self.d_haschild.get(pos):
                value = self.d_values[self._dense_value_index(pos)]
                remaining = key[level + 1 :]
                if not self.truncated and remaining:
                    return None
                return value, remaining
            node = self._d_haschild_rank.rank1(pos)  # global child number
            level += 1
            if node >= self.dense_node_count:
                break
        else:
            # Ran out of dense levels while still inside them: the trie
            # is fully dense and the key is longer than every path.
            if self.dense_height == self.height:
                return None
        # ---- sparse walk ----
        snode = node - self.dense_node_count
        while True:
            start, end = self._sparse_node_range(snode)
            # One LOUDS-Sparse step: the label chunk (SIMD-sized), the
            # S-HasChild word, and the rank/select LUT line; >90 % of
            # nodes fit one 16-label chunk (Section 3.6).
            COUNTERS.node_visit(
                end - start + 16, lines_touched=2 + (end - start) // 16
            )
            if level == len(key):
                if self.s_labels[start] == PREFIX_LABEL:
                    return self.s_values[self._sparse_value_index(start)], b""
                return None
            idx = self._sparse_find_label(start, end, key[level])
            if idx is None:
                return None
            if not self.s_haschild.get(idx):
                value = self.s_values[self._sparse_value_index(idx)]
                remaining = key[level + 1 :]
                if not self.truncated and remaining:
                    return None
                return value, remaining
            child = self.dense_child_count + self._s_haschild_rank.rank1(idx)
            snode = child - self.dense_node_count
            level += 1

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.n_keys

    # -- batched point lookup (level-synchronous traversal) -----------------

    def _dense_value_indexes(self, pos: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_dense_value_index` over bit positions."""
        node = pos // FANOUT
        return (
            self._d_isprefix_rank.rank1_many(node)
            + self._d_labels_rank.rank1_many(pos)
            - self._d_haschild_rank.rank1_many(pos)
            - 1
        )

    def _dense_prefix_value_indexes(self, node: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_dense_prefix_value_index` over node numbers."""
        before = node * FANOUT - 1
        safe = np.maximum(before, 0)
        labels = self._d_labels_rank.rank1_many(safe)
        childs = self._d_haschild_rank.rank1_many(safe)
        root = before < 0
        labels[root] = 0
        childs[root] = 0
        return self._d_isprefix_rank.rank1_many(node) - 1 + labels - childs

    def _sparse_batch_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Lazy accelerators for the batched sparse walk.

        ``node_starts[k]`` is the S-Labels index where sparse node ``k``
        begins (with a sentinel at ``n_labels``), replacing per-key
        select calls with one gather.  ``comp`` is the globally sorted
        composite key ``node * 512 + label + 1`` — node numbers are
        nondecreasing over S-Labels and labels sort within each node, so
        one ``searchsorted`` answers every per-node label search in the
        batch at once.
        """
        tables = getattr(self, "_sparse_tables", None)
        if tables is None:
            n = len(self.s_louds)
            if n:
                bits = np.unpackbits(
                    self.s_louds.words.view(np.uint8), bitorder="little", count=n
                )
                starts = np.flatnonzero(bits).astype(np.int64)
                node_of = np.cumsum(bits, dtype=np.int64) - 1
            else:
                starts = np.zeros(0, dtype=np.int64)
                node_of = np.zeros(0, dtype=np.int64)
            node_starts = np.concatenate([starts, [n]]).astype(np.int64)
            comp = node_of * 512 + self.s_labels.astype(np.int64) + 1
            tables = (node_starts, comp)
            self._sparse_tables = tables
        return tables

    def get_many(self, keys: Sequence[bytes]) -> list[Any | None]:
        """Batched exact-match lookup; one result slot per key.

        Bit-for-bit equivalent to ``[self.get(k) for k in keys]`` but
        executed level-synchronously: the whole batch advances through
        one LOUDS-Dense / LOUDS-Sparse level per step with vectorized
        bitmap tests, ``rank1_many`` kernels and a single
        ``searchsorted`` label search (the BS-tree-style data-parallel
        read path).
        """
        found = self._lookup_many(keys)
        return [f[0] if f is not None else None for f in found]

    def _lookup_many(
        self, keys: Sequence[bytes]
    ) -> list[tuple[Any, bytes] | None]:
        """Batched :meth:`_lookup`: (value, remaining) or None per key."""
        n = len(keys)
        results: list[tuple[Any, bytes] | None] = [None] * n
        if n == 0 or self.n_keys == 0:
            return results
        # Pad the batch into an (n, maxlen) byte matrix so each level
        # step reads its column with one gather.
        lens = np.fromiter((len(k) for k in keys), dtype=np.int64, count=n)
        maxlen = int(lens.max())
        mat = np.zeros((n, max(maxlen, 1)), dtype=np.int64)
        if maxlen:
            buf = np.frombuffer(b"".join(keys), dtype=np.uint8)
            row_starts = np.zeros(n, dtype=np.int64)
            np.cumsum(lens[:-1], out=row_starts[1:])
            rows = np.repeat(np.arange(n), lens)
            mat[rows, np.arange(len(buf)) - np.repeat(row_starts, lens)] = buf
        truncated = self.truncated
        profiling = COUNTERS.enabled
        idx = np.arange(n, dtype=np.int64)  # original slot of each live lane
        node = np.zeros(n, dtype=np.int64)
        level = 0
        # Lanes that leave the dense levels continue in the sparse walk.
        sp_idx_parts: list[np.ndarray] = []
        sp_node_parts: list[np.ndarray] = []
        sp_level_parts: list[np.ndarray] = []

        def to_sparse(lanes: np.ndarray, nodes: np.ndarray, at_level: int) -> None:
            sp_idx_parts.append(lanes)
            sp_node_parts.append(nodes)
            sp_level_parts.append(np.full(len(lanes), at_level, dtype=np.int64))

        # ---- dense walk ----
        while level < self.dense_height and idx.size:
            if profiling:
                for _ in range(len(idx)):
                    COUNTERS.node_visit(2 * FANOUT // 8, lines_touched=2)
            ended = lens[idx] == level
            if ended.any():
                e_idx, e_node = idx[ended], node[ended]
                is_pref = self.d_isprefix.get_many(e_node).astype(bool)
                if is_pref.any():
                    hit_idx = e_idx[is_pref]
                    vidx = self._dense_prefix_value_indexes(e_node[is_pref])
                    for oi, vi in zip(hit_idx.tolist(), vidx.tolist()):
                        results[oi] = (self.d_values[vi], b"")
                keep = ~ended
                idx, node = idx[keep], node[keep]
                if not idx.size:
                    break
            pos = node * FANOUT + mat[idx, level]
            has_label = self.d_labels.get_many(pos).astype(bool)
            idx, pos = idx[has_label], pos[has_label]
            if not idx.size:
                break
            has_child = self.d_haschild.get_many(pos).astype(bool)
            term = ~has_child
            if term.any():
                term_idx = idx[term]
                vidx = self._dense_value_indexes(pos[term])
                for oi, vi in zip(term_idx.tolist(), vidx.tolist()):
                    remaining = keys[oi][level + 1 :]
                    if truncated or not remaining:
                        results[oi] = (self.d_values[vi], remaining)
            idx, pos = idx[has_child], pos[has_child]
            if not idx.size:
                break
            node = self._d_haschild_rank.rank1_many(pos)
            level += 1
            crossed = node >= self.dense_node_count
            if crossed.any():
                to_sparse(idx[crossed], node[crossed], level)
                keep = ~crossed
                idx, node = idx[keep], node[keep]
        # Lanes that exhausted the dense levels: sparse-domain nodes
        # continue below; a lane still inside the dense numbering means
        # the trie is fully dense and the key outruns every stored path
        # (the scalar walk's for/else miss), so it stays None.
        if idx.size:
            crossed = node >= self.dense_node_count
            if crossed.any():
                to_sparse(idx[crossed], node[crossed], level)

        # ---- sparse walk ----
        if not sp_idx_parts:
            return results
        s_idx = np.concatenate(sp_idx_parts)
        snode = np.concatenate(sp_node_parts) - self.dense_node_count
        s_level = np.concatenate(sp_level_parts)
        node_starts, comp = self._sparse_batch_tables()
        n_comp = len(comp)
        s_labels = self.s_labels
        hc_rank = self._s_haschild_rank
        s_values = self.s_values
        while s_idx.size:
            if profiling:
                extents = node_starts[snode + 1] - node_starts[snode]
                for ext in extents.tolist():
                    COUNTERS.node_visit(ext + 16, lines_touched=2 + ext // 16)
            ended = lens[s_idx] == s_level
            if ended.any():
                e_idx = s_idx[ended]
                e_start = node_starts[snode[ended]]
                is_pref = s_labels[e_start] == PREFIX_LABEL
                if is_pref.any():
                    hit_idx = e_idx[is_pref]
                    hit_start = e_start[is_pref]
                    vidx = hit_start - hc_rank.rank1_many(hit_start)
                    for oi, vi in zip(hit_idx.tolist(), vidx.tolist()):
                        results[oi] = (s_values[vi], b"")
                keep = ~ended
                s_idx, snode, s_level = s_idx[keep], snode[keep], s_level[keep]
                if not s_idx.size:
                    break
            target = snode * 512 + mat[s_idx, s_level] + 1
            li = np.searchsorted(comp, target)
            safe_li = np.minimum(li, n_comp - 1)
            found = (li < n_comp) & (comp[safe_li] == target)
            s_idx, snode, s_level, li = (
                s_idx[found],
                snode[found],
                s_level[found],
                li[found],
            )
            if not s_idx.size:
                break
            has_child = self.s_haschild.get_many(li).astype(bool)
            term = ~has_child
            if term.any():
                t_idx, t_level = s_idx[term], s_level[term]
                vidx = li[term] - hc_rank.rank1_many(li[term])
                for oi, vi, lv in zip(
                    t_idx.tolist(), vidx.tolist(), t_level.tolist()
                ):
                    remaining = keys[oi][lv + 1 :]
                    if truncated or not remaining:
                        results[oi] = (s_values[vi], remaining)
            s_idx, s_level, li = s_idx[has_child], s_level[has_child], li[has_child]
            if not s_idx.size:
                break
            child = self.dense_child_count + hc_rank.rank1_many(li)
            snode = child - self.dense_node_count
            s_level = s_level + 1
        return results

    # -- iteration -----------------------------------------------------------------------

    def seek(self, key: bytes) -> "FstIterator":
        """Iterator at the smallest stored entry >= ``key``.

        If the smallest qualifying stored entry is a strict *prefix* of
        ``key`` (possible in truncate mode, or for full tries a shorter
        key), the iterator is positioned there with ``fp_flag`` set, as
        SuRF's moveToNext requires.
        """
        it = FstIterator(self)
        it._seek(key)
        return it

    def iter_all(self) -> "FstIterator":
        it = FstIterator(self)
        it._leftmost_from_root()
        return it

    def items(self) -> Iterator[tuple[bytes, Any]]:
        """All (stored key, value) pairs in order (truncated keys in
        truncate mode)."""
        it = self.iter_all()
        while it.valid:
            yield it.key(), it.value()
            it.next()

    def lower_bound(self, key: bytes) -> Iterator[tuple[bytes, Any]]:
        """Exact lower-bound iteration over complete keys (FST mode)."""
        it = self.seek(key)
        if it.valid and it.fp_flag and it.key() != key:
            it.next()
        while it.valid:
            yield it.key(), it.value()
            it.next()

    # -- counting --------------------------------------------------------------------------

    def count_range(self, low: bytes, high: bytes) -> int:
        """Number of stored keys in [low, high).

        Exact for complete tries; for truncated (SuRF) tries boundary
        prefixes can over-count by at most two (Section 4.1.5).
        """
        if low >= high:
            return 0
        return self._count_below(high) - self._count_below(low)

    def _count_below(self, key: bytes) -> int:
        """Number of stored entries with stored key < ``key`` (stored
        prefixes of ``key`` count as smaller only if strictly shorter)."""
        boundaries = self._extend_boundaries(key)
        total = 0
        for level, (kind, pos) in enumerate(boundaries):
            if kind == "dense":
                lvl_start_node = self._dense_level_node_start[level]
                total += self._dense_values_between(lvl_start_node * FANOUT, pos)
            else:
                sl = level - self.dense_height
                total += self._sparse_values_between(
                    self._sparse_level_start[sl], pos
                )
        return total

    def _dense_values_between(self, p1: int, p2: int) -> int:
        """Values at dense positions in [p1, p2) (prefix values count at
        their node's start position)."""
        return self._dense_values_before(p2) - self._dense_values_before(p1)

    def _dense_values_before(self, p: int) -> int:
        if p <= 0:
            return 0
        labels = self._d_labels_rank.rank1(p - 1)
        childs = self._d_haschild_rank.rank1(p - 1)
        prefixes = self._d_isprefix_rank.rank1((p - 1) // FANOUT)
        return labels - childs + prefixes

    def _sparse_values_between(self, i1: int, i2: int) -> int:
        return self._sparse_values_before(i2) - self._sparse_values_before(i1)

    def _sparse_values_before(self, i: int) -> int:
        if i <= 0:
            return 0
        return i - self._s_haschild_rank.rank1(i - 1)

    def _extend_boundaries(self, key: bytes) -> list[tuple[str, int]]:
        """Per-level boundary positions: at each level, the position of
        the first label whose subtree/terminal keys are all >= ``key``.

        Returns one ("dense"|"sparse", position) per level; dense
        positions are absolute D-Labels bit positions and sparse ones
        are S-Labels indexes.
        """
        out: list[tuple[str, int]] = []
        node = 0
        level = 0
        on_path = True  # walked prefix still equals key[:level]
        while level < self.height:
            if level < self.dense_height:
                node_start = node * FANOUT
                if not on_path:
                    # Boundary descends from the previous level boundary:
                    # the first child node at this level not before it.
                    out.append(("dense", node_start))
                    # Everything below follows from `node` leftmost; mark
                    # boundary at this node's start and continue down its
                    # leftmost spine (all its keys are >= key).
                    nxt = self._dense_first_child_at_or_after(node_start)
                    if nxt is None:
                        out.extend(self._tail_boundaries(level + 1))
                        return out
                    node = nxt
                    level += 1
                    continue
                if level == len(key):
                    # key ends here: all entries of this node qualify.
                    out.append(("dense", node_start))
                    on_path = False
                    nxt = self._dense_first_child_at_or_after(node_start)
                    if nxt is None:
                        out.extend(self._tail_boundaries(level + 1))
                        return out
                    node = nxt
                    level += 1
                    continue
                byte = key[level]
                pos = node_start + byte
                out.append(("dense", pos))
                if self.d_labels.get(pos) and self.d_haschild.get(pos):
                    node = self._d_haschild_rank.rank1(pos)
                    level += 1
                    if node >= self.dense_node_count:
                        # Transitioned into sparse levels.
                        continue
                    continue
                # Path diverges (label terminal or absent): boundary for
                # deeper levels = first child subtree at or after pos+1.
                # A terminal label at pos equals a stored prefix <= key:
                # it lies before the boundary, which is pos+1... but the
                # value "between" arithmetic treats [start, pos) so we
                # must advance past pos when its entry sorts < key.
                if self.d_labels.get(pos) and not self.d_haschild.get(pos):
                    # stored key = path+byte; it is < key iff key is longer.
                    if len(key) > level + 1:
                        out[-1] = ("dense", pos + 1)
                nxt = self._dense_first_child_at_or_after(out[-1][1])
                on_path = False
                if nxt is None:
                    out.extend(self._tail_boundaries(level + 1))
                    return out
                node = nxt
                level += 1
                continue
            # ---- sparse levels ----
            snode = node - self.dense_node_count
            start, end = self._sparse_node_range(snode)
            if not on_path:
                out.append(("sparse", start))
                nxt = self._sparse_first_child_at_or_after(start)
                if nxt is None:
                    out.extend(self._tail_boundaries(level + 1))
                    return out
                node = nxt
                level += 1
                continue
            if level == len(key):
                out.append(("sparse", start))
                on_path = False
                nxt = self._sparse_first_child_at_or_after(start)
                if nxt is None:
                    out.extend(self._tail_boundaries(level + 1))
                    return out
                node = nxt
                level += 1
                continue
            byte = key[level]
            # First label >= byte within the node (prefix label -1 < byte).
            idx = end
            for i in range(start, end):
                if self.s_labels[i] >= byte:
                    idx = i
                    break
            out.append(("sparse", idx))
            if idx < end and self.s_labels[idx] == byte:
                if self.s_haschild.get(idx):
                    node = self.dense_child_count + self._s_haschild_rank.rank1(idx)
                    level += 1
                    continue
                if len(key) > level + 1:
                    out[-1] = ("sparse", idx + 1)
            on_path = False
            nxt = self._sparse_first_child_at_or_after(out[-1][1])
            if nxt is None:
                out.extend(self._tail_boundaries(level + 1))
                return out
            node = nxt
            level += 1
        return out

    def _tail_boundaries(self, from_level: int) -> list[tuple[str, int]]:
        """Boundaries at end-of-level for levels >= from_level (no
        further subtree: everything at deeper levels under later nodes
        is past the end... i.e. boundary = level end)."""
        out = []
        for level in range(from_level, self.height):
            if level < self.dense_height:
                nxt = (
                    self._dense_level_node_start[level + 1]
                    if level + 1 < self.dense_height
                    else self.dense_node_count
                )
                out.append(("dense", nxt * FANOUT))
            else:
                sl = level - self.dense_height
                out.append(("sparse", self._sparse_level_start[sl + 1]))
        return out

    def _dense_first_child_at_or_after(self, pos: int) -> int | None:
        """Global node number of the first HasChild branch at dense
        position >= pos, or None."""
        n = len(self.d_haschild)
        while pos < n:
            if self.d_haschild.get(pos):
                return self._d_haschild_rank.rank1(pos)
            # Skip ahead word-wise for speed.
            if (pos & 63) == 0:
                word = self.d_haschild.word(pos >> 6)
                if word == 0:
                    pos += 64
                    continue
            pos += 1
        return None

    def _sparse_first_child_at_or_after(self, idx: int) -> int | None:
        n = len(self.s_haschild)
        while idx < n:
            if self.s_haschild.get(idx):
                return self.dense_child_count + self._s_haschild_rank.rank1(idx)
            if (idx & 63) == 0:
                word = self.s_haschild.word(idx >> 6)
                if word == 0:
                    idx += 64
                    continue
            idx += 1
        return None

    # -- memory ---------------------------------------------------------------------------

    def size_bits(self, value_bits: int = 0) -> int:
        """Encoded size in bits; ``value_bits`` charges per stored value
        (e.g. SuRF suffix width); pointer values are excluded as in the
        paper's index measurements."""
        dense = (
            self.d_labels.size_bits()
            + self.d_haschild.size_bits()
            + self.d_isprefix.size_bits()
            + self._d_labels_rank.size_bits()
            + self._d_haschild_rank.size_bits()
            + self._d_isprefix_rank.size_bits()
        )
        sparse = (
            len(self.s_labels) * 8  # S-Labels byte sequence
            + self.s_haschild.size_bits()
            + self.s_louds.size_bits()
            + self._s_haschild_rank.size_bits()
            + self._s_louds_rank.size_bits()
            + (self._s_louds_select.size_bits() if self._s_louds_select else 0)
        )
        values = (len(self.d_values) + len(self.s_values)) * value_bits
        return dense + sparse + values

    def memory_bytes(self) -> int:
        return (self.size_bits() + 7) // 8

    # -- serialization (values must be non-negative ints) -------------------

    def to_bytes(self) -> bytes:
        """Serialize the encoded trie (see :mod:`repro.fst.serialize`)."""
        from .serialize import fst_to_bytes

        return fst_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FST":
        from .serialize import fst_from_bytes

        return fst_from_bytes(data)

    def bits_per_node(self) -> float:
        total = self.dense_node_count + self.sparse_node_count
        return self.size_bits() / total if total else 0.0


class FstIterator:
    """Forward iterator with per-level cursors (Section 3.4).

    Frames record ``(level, node, pos, start, end)`` along the path;
    ``pos`` is a bit position (dense) or label index (sparse), with
    ``pos == -1`` denoting a dense node's conceptual prefix-key slot.
    ``start``/``end`` cache the node's extent so moving the cursor
    never repeats rank/select work — the per-level-cursor optimization
    the paper credits for fast range queries.
    """

    __slots__ = ("fst", "frames", "valid", "fp_flag")

    def __init__(self, fst: FST) -> None:
        self.fst = fst
        self.frames: list[tuple[int, int, int, int, int]] = []
        self.valid = False
        self.fp_flag = False

    # -- public API ----------------------------------------------------------------

    def key(self) -> bytes:
        """The stored key bytes at the current position."""
        out = bytearray()
        fst = self.fst
        dense_height = fst.dense_height
        s_labels = fst.s_labels
        for level, node, pos, _start, _end in self.frames:
            if level < dense_height:
                if pos >= 0:
                    out.append(pos - node * FANOUT)
            else:
                label = s_labels[pos]
                if label != PREFIX_LABEL:
                    out.append(label)
        return bytes(out)

    def value(self) -> Any:
        level, node, pos, _s, _e = self.frames[-1]
        fst = self.fst
        if level < fst.dense_height:
            if pos < 0:
                return fst.d_values[fst._dense_prefix_value_index(node)]
            return fst.d_values[fst._dense_value_index(pos)]
        return fst.s_values[fst._sparse_value_index(pos)]

    def next(self) -> None:
        """Advance to the next stored entry."""
        self.fp_flag = False
        self._advance_up()

    # -- internals --------------------------------------------------------------------

    def _make_frame(self, level: int, node: int) -> tuple[int, int, int, int, int]:
        """A frame positioned at the node's first entry."""
        fst = self.fst
        if level < fst.dense_height:
            start = node * FANOUT
            end = start + FANOUT
            if fst.d_isprefix.get(node):
                return (level, node, -1, start, end)
            pos = start
            d_labels = fst.d_labels
            while pos < end and not d_labels.get(pos):
                pos += 1
            return (level, node, pos, start, end)
        start, end = fst._sparse_node_range(node - fst.dense_node_count)
        return (level, node, start, start, end)

    def _next_pos(self, frame: tuple[int, int, int, int, int]) -> int | None:
        """The next label position within the frame's node, or None."""
        level, node, pos, start, end = frame
        fst = self.fst
        if level < fst.dense_height:
            p = start if pos < 0 else pos + 1
            d_labels = fst.d_labels
            while p < end:
                if d_labels.get(p):
                    return p
                p += 1
            return None
        p = pos + 1
        return p if p < end else None

    def _is_terminal(self, frame: tuple[int, int, int, int, int]) -> bool:
        level, node, pos, _s, _e = frame
        fst = self.fst
        if level < fst.dense_height:
            return pos < 0 or not fst.d_haschild.get(pos)
        return not fst.s_haschild.get(pos)

    def _child_of(self, frame: tuple[int, int, int, int, int]) -> int:
        level, node, pos, _s, _e = frame
        fst = self.fst
        if level < fst.dense_height:
            return fst._d_haschild_rank.rank1(pos)
        return fst.dense_child_count + fst._s_haschild_rank.rank1(pos)

    def _descend_leftmost(self, node: int, level: int) -> None:
        """Push frames following smallest labels until a terminal."""
        while True:
            frame = self._make_frame(level, node)
            self.frames.append(frame)
            if self._is_terminal(frame):
                self.valid = True
                return
            node = self._child_of(frame)
            level += 1

    def _leftmost_from_root(self) -> None:
        self.frames = []
        self.fp_flag = False
        if self.fst.n_keys == 0:
            self.valid = False
            return
        self._descend_leftmost(0, 0)

    def _seek(self, key: bytes) -> None:
        fst = self.fst
        self.frames = []
        self.fp_flag = False
        if fst.n_keys == 0:
            self.valid = False
            return
        node = 0
        level = 0
        while True:
            if level == len(key):
                self._descend_leftmost(node, level)
                return
            byte = key[level]
            frame = self._find_label_at_or_after(level, node, byte)
            if frame is None:
                self._advance_up()
                return
            label = self._label_at(frame)
            self.frames.append(frame)
            if label > byte:
                if self._is_terminal(frame):
                    self.valid = True
                    return
                self._descend_leftmost(self._child_of(frame), level + 1)
                return
            # label == byte
            if not self._is_terminal(frame):
                node = self._child_of(frame)
                level += 1
                continue
            # Terminal on the exact path: the stored key is key[:level+1].
            if len(key) == level + 1:
                self.valid = True
                return
            # Stored key is a strict prefix of the search key.
            self.valid = True
            self.fp_flag = True
            return

    def _label_at(self, frame: tuple[int, int, int, int, int]) -> int:
        level, node, pos, _s, _e = frame
        fst = self.fst
        if level < fst.dense_height:
            return pos - node * FANOUT
        return int(fst.s_labels[pos])

    def _find_label_at_or_after(
        self, level: int, node: int, byte: int
    ) -> tuple[int, int, int, int, int] | None:
        """Frame at the smallest real label >= byte within the node
        (the prefix slot is excluded: it is always < byte on a search
        path), or None."""
        fst = self.fst
        if level < fst.dense_height:
            start = node * FANOUT
            end = start + FANOUT
            p = start + byte
            d_labels = fst.d_labels
            while p < end:
                if d_labels.get(p):
                    return (level, node, p, start, end)
                p += 1
            return None
        start, end = fst._sparse_node_range(node - fst.dense_node_count)
        s_labels = fst.s_labels
        for i in range(start, end):
            if s_labels[i] >= byte:
                return (level, node, i, start, end)
        return None

    def _advance_up(self) -> None:
        """Advance the deepest cursor, popping exhausted frames."""
        while self.frames:
            frame = self.frames.pop()
            nxt = self._next_pos(frame)
            if nxt is None:
                continue
            frame = (frame[0], frame[1], nxt, frame[3], frame[4])
            self.frames.append(frame)
            if self._is_terminal(frame):
                self.valid = True
                return
            self._descend_leftmost(self._child_of(frame), frame[0] + 1)
            return
        self.valid = False
