"""The paper's primary contributions, re-exported as one namespace.

* :class:`~repro.fst.FST` — the Fast Succinct Trie (Chapter 3)
* :class:`~repro.surf.SuRF` — the Succinct Range Filter (Chapter 4)
* :class:`~repro.hybrid.HybridIndex` — the dual-stage index (Chapter 5)
* :class:`~repro.hope.HopeEncoder` — order-preserving key compression
  (Chapter 6)
* The Dynamic-to-Static compact structures (Chapter 2) live in
  :mod:`repro.compact`.
"""

from ..compact import (
    CompactART,
    CompactBPlusTree,
    CompactMasstree,
    CompactSkipList,
    CompressedBPlusTree,
)
from ..fst import FST
from ..hope import HopeEncoder, HopeIndex, HopeSuRF
from ..hybrid import (
    HybridIndex,
    hybrid_art,
    hybrid_btree,
    hybrid_compressed_btree,
    hybrid_masstree,
    hybrid_skiplist,
)
from ..surf import SuRF, surf_base, surf_hash, surf_mixed, surf_real

__all__ = [
    "FST",
    "SuRF",
    "surf_base",
    "surf_hash",
    "surf_real",
    "surf_mixed",
    "HybridIndex",
    "hybrid_btree",
    "hybrid_skiplist",
    "hybrid_art",
    "hybrid_masstree",
    "hybrid_compressed_btree",
    "HopeEncoder",
    "HopeIndex",
    "HopeSuRF",
    "CompactBPlusTree",
    "CompactSkipList",
    "CompactART",
    "CompactMasstree",
    "CompressedBPlusTree",
]
