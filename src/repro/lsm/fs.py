"""Filesystem abstraction behind the durable LSM engine.

Every byte the engine persists flows through this interface, which is
what makes crash testing possible: the production backend
(:class:`OsFileSystem`) maps straight onto POSIX files with real
``fsync``, while the test backend (:class:`repro.testing.faultfs`)
simulates a power failure at any durability point and replays the
surviving bytes.

Durability contract (the engine relies on exactly this):

* ``WritableFile.append`` buffers; the data is guaranteed on stable
  storage only after ``sync()`` returns.
* ``rename`` is atomic (either the old or the new name exists, never a
  mix) and durable once it returns — the classic commit point for
  write-temp → sync → rename installs.
* ``remove``/``mkdir`` are metadata operations with immediate effect.

Paths are ``/``-joined strings; backends may interpret them however
they like as long as the same string round-trips.
"""

from __future__ import annotations

import mmap as _mmap
import os


class MappedFile:
    """A read-only, zero-copy view of one whole file.

    ``view`` is a :class:`memoryview` over the file's bytes; slices of
    it alias the mapping without copying, which is what lets every
    shard process share one page-cache copy of each SSTable.

    Ownership rule (see DESIGN.md "Buffer ownership"): any object built
    over a slice of ``view`` — a block payload, a filter's
    ``np.frombuffer`` arrays — keeps the underlying buffer alive via
    the normal buffer protocol.  ``close()`` is therefore best-effort:
    it drops this wrapper's references and *tolerates* outstanding
    exports (``mmap.close`` raises :class:`BufferError` while views are
    exported; on POSIX an unlinked-but-mapped file stays readable, so
    the pages are simply reclaimed when the last view dies).
    """

    def __init__(self, buf) -> None:
        self._buf = buf
        self.view: memoryview = memoryview(buf)
        self.closed = False

    def __len__(self) -> int:
        return len(self.view) if self.view is not None else 0

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        view, self.view = self.view, None
        if view is not None:
            view.release()
        close = getattr(self._buf, "close", None)
        if close is not None:
            try:
                close()
            except BufferError:
                # Outstanding views alias the mapping; the pages stay
                # valid and are released when the last view is GC'd.
                pass
        self._buf = None


class WritableFile:
    """An append-only file handle with an explicit durability barrier."""

    def append(self, data: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Block until everything appended so far is on stable storage."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class FileSystem:
    """Minimal VFS used by :class:`repro.lsm.engine.LSMTree`."""

    def mkdir(self, path: str) -> None:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def listdir(self, path: str) -> list[str]:
        raise NotImplementedError

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        raise NotImplementedError

    def open_mmap(self, path: str) -> MappedFile:
        """Map ``path`` read-only for zero-copy access.

        The default implementation snapshots the file into one
        immutable ``bytes`` object — correct for any backend (and what
        MemFS/FaultFS rely on, since SSTable files are immutable once
        written), just not page-shared.  :class:`OsFileSystem`
        overrides with a real ``mmap``.
        """
        return MappedFile(self.read(path))

    def create(self, path: str) -> WritableFile:
        """Create (or truncate) ``path`` for appending."""
        raise NotImplementedError

    def rename(self, src: str, dst: str) -> None:
        raise NotImplementedError

    def remove(self, path: str) -> None:
        raise NotImplementedError


def join(*parts: str) -> str:
    return "/".join(p.rstrip("/") for p in parts if p)


class _OsWritableFile(WritableFile):
    def __init__(self, path: str) -> None:
        self._f = open(path, "wb")

    def append(self, data: bytes) -> None:
        self._f.write(data)

    def sync(self) -> None:
        self._f.flush()
        os.fsync(self._f.fileno())

    def close(self) -> None:
        if not self._f.closed:
            self._f.flush()
            self._f.close()


class OsFileSystem(FileSystem):
    """The real thing: POSIX files, ``os.fsync``, atomic ``os.replace``.

    ``rename`` additionally fsyncs the containing directory so the new
    directory entry itself survives power loss (the step naive
    implementations forget)."""

    def mkdir(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        with open(path, "rb") as f:
            if offset:
                f.seek(offset)
            return f.read() if length is None else f.read(length)

    def open_mmap(self, path: str) -> MappedFile:
        with open(path, "rb") as f:
            size = os.fstat(f.fileno()).st_size
            if size == 0:
                # Zero-length files cannot be mmap'd; an empty snapshot
                # is equivalent.
                return MappedFile(b"")
            m = _mmap.mmap(f.fileno(), 0, access=_mmap.ACCESS_READ)
        return MappedFile(m)

    def create(self, path: str) -> WritableFile:
        return _OsWritableFile(path)

    def rename(self, src: str, dst: str) -> None:
        os.replace(src, dst)
        dir_fd = os.open(os.path.dirname(dst) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def remove(self, path: str) -> None:
        os.remove(path)
