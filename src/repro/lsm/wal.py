"""Write-ahead log: sequenced, CRC-framed put/delete records.

Each record is one :mod:`.disk_format` frame whose payload is::

    <u8 type> <u64 seq> <u32 keylen> <key> [<u32 vallen> <value>]

Appends are buffered; :meth:`WalWriter.sync` is the durability barrier
(group commit).  The writer auto-syncs every ``sync_every`` records, so
an acknowledged write is one whose sequence number is <=
``synced_seq``.  Replay reads records in order and stops at the first
frame that fails its length or CRC check — a torn tail is by
construction unacknowledged, so stopping there recovers exactly a
prefix of the op sequence.

Commit observer (replication tap): a :class:`WalWriter` built with an
``observer`` calls it with ``[(seq, frame_bytes), ...]`` every time a
batch of records becomes *committed* — after the fsync in
:meth:`WalWriter.sync` returns, or in :meth:`WalWriter.abandon` when an
installed SSTable supersedes the segment (those records are durable via
the manifest even though the segment itself was never synced).  Frames
are the exact on-disk encoding, so a replication stream can ship them
verbatim and the receiver decodes with :func:`iter_records` — the same
code path recovery uses.  The observer never fires for records that
are not yet durable somewhere.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Iterator

from . import disk_format
from .disk_format import FrameError
from .fs import FileSystem

_PUT = 1
_DELETE = 2

_U32 = struct.Struct("<I")


def wal_file_name(index: int) -> str:
    return f"wal-{index:08d}.log"


def encode_record(kind: int, seq: int, key: bytes, value: Any = None) -> bytes:
    payload = bytearray()
    payload.append(kind)
    payload += disk_format.pack_u64(seq)
    payload += _U32.pack(len(key))
    payload += key
    if kind == _PUT:
        val = disk_format.encode_value(value)
        payload += _U32.pack(len(val))
        payload += val
    return disk_format.frame(bytes(payload))


class WalWriter:
    """Appends records to one WAL segment with batched fsync."""

    def __init__(
        self,
        fs: FileSystem,
        path: str,
        sync_every: int = 32,
        observer: Callable[[list[tuple[int, bytes]]], None] | None = None,
    ) -> None:
        if sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        self._file = fs.create(path)
        self.path = path
        self._sync_every = sync_every
        self._unsynced = 0
        self.last_seq = 0
        self.synced_seq = 0
        self._observer = observer
        #: Frames appended since the last durability barrier, kept only
        #: when an observer wants them (replication).
        self._pending_frames: list[tuple[int, bytes]] = []
        # An empty segment must itself be durable before the manifest
        # can point at it.
        self._file.sync()

    def append_put(self, seq: int, key: bytes, value: Any) -> None:
        self._append(encode_record(_PUT, seq, key, value), seq)

    def append_delete(self, seq: int, key: bytes) -> None:
        self._append(encode_record(_DELETE, seq, key), seq)

    def append_batch(self, records: list[tuple[int, bytes, Any]]) -> None:
        """Append a whole write batch and fsync once (one group commit).

        ``records`` are ``(seq, key, value)`` with
        :data:`~repro.lsm.disk_format.TOMBSTONE` marking deletes.  The
        batch is encoded in full before any byte reaches the segment,
        so an unstorable value aborts with the log unchanged, and the
        single trailing :meth:`sync` acknowledges every record at once
        — the server's write workers rely on exactly this to turn a
        queue drain into one durability barrier.
        """
        if not records:
            return
        buf = bytearray()
        encoded: list[tuple[int, bytes]] = []
        for seq, key, value in records:
            if value is disk_format.TOMBSTONE:
                frame_bytes = encode_record(_DELETE, seq, key)
            else:
                frame_bytes = encode_record(_PUT, seq, key, value)
            buf += frame_bytes
            if self._observer is not None:
                encoded.append((seq, frame_bytes))
        self._file.append(bytes(buf))
        if self._observer is not None:
            self._pending_frames.extend(encoded)
        self.last_seq = records[-1][0]
        self._unsynced += len(records)
        self.sync()

    def _append(self, record: bytes, seq: int) -> None:
        self._file.append(record)
        if self._observer is not None:
            self._pending_frames.append((seq, record))
        self.last_seq = seq
        self._unsynced += 1
        if self._unsynced >= self._sync_every:
            self.sync()

    def sync(self) -> None:
        """Group-commit barrier: every appended record becomes durable."""
        if self._unsynced:
            self._file.sync()
            self._unsynced = 0
        self.synced_seq = self.last_seq
        self._notify_committed()

    def _notify_committed(self) -> None:
        """Hand the committed frames to the observer (after the fsync —
        a PowerFailure raised inside ``sync`` must leave them pending,
        never shipped, because nothing made them durable)."""
        if self._observer is not None and self._pending_frames:
            frames, self._pending_frames = self._pending_frames, []
            self._observer(frames)

    def close(self) -> None:
        self.sync()
        self._file.close()

    def abandon(self) -> None:
        """Close without syncing: the segment is superseded (its records
        are covered by an installed SSTable) and about to be deleted.

        Records still pending here were committed by the *manifest*
        install that superseded the segment (the inline flush path never
        fsyncs the old segment), so the observer must still see them —
        they are durable, just not via this file.
        """
        self._notify_committed()
        self._file.close()


def iter_records(
    data: bytes, *, source: str = "<wal>", strict: bool = False
) -> Iterator[tuple[int, bytes, Any]]:
    """Decode a byte string of WAL frames into (seq, key, value) records.

    ``value`` is :data:`~repro.lsm.sstable.TOMBSTONE` for deletes.  With
    ``strict=False`` (recovery) decoding stops silently at the first
    torn or corrupt frame: those records were never acknowledged.  With
    ``strict=True`` (a replication payload, which travels over a
    CRC-checked, length-prefixed wire) a bad frame is a protocol bug and
    raises.  Non-monotonic sequence numbers always raise: the log itself
    is inconsistent.
    """
    offset = 0
    last_seq = 0
    while offset < len(data):
        try:
            payload, offset = disk_format.read_frame(data, offset)
        except FrameError:
            if strict:
                raise
            break  # torn tail: everything after is unacknowledged
        kind = payload[0]
        seq, pos = disk_format.unpack_u64(payload, 1)
        if seq <= last_seq:
            raise FrameError(f"{source}: non-monotonic WAL sequence {seq}")
        last_seq = seq
        (klen,) = _U32.unpack_from(payload, pos)
        pos += 4
        key = payload[pos : pos + klen]
        pos += klen
        if kind == _PUT:
            (vlen,) = _U32.unpack_from(payload, pos)
            pos += 4
            value = disk_format.decode_value(payload[pos : pos + vlen])
            pos += vlen
        elif kind == _DELETE:
            value = disk_format.TOMBSTONE
        else:
            raise FrameError(f"{source}: unknown WAL record type {kind}")
        if pos != len(payload):
            raise FrameError(f"{source}: trailing bytes in WAL record")
        yield seq, key, value


def replay(fs: FileSystem, path: str) -> list[tuple[int, bytes, Any]]:
    """Decode a WAL segment into (seq, key, value) records (see
    :func:`iter_records`; replay is its tolerant, recovery-side mode)."""
    return list(iter_records(fs.read(path), source=path))
