"""LSM-tree storage engine with simulated I/O (Chapter 4 substrate)."""

from .engine import IoStats, LSMTree
from .sstable import SSTable, TOMBSTONE

__all__ = ["LSMTree", "SSTable", "TOMBSTONE", "IoStats"]
