"""LSM-tree storage engine (Chapter 4 substrate): simulated or durable."""

from .engine import IoStats, LSMTree
from .fs import FileSystem, OsFileSystem
from .manifest import ManifestState
from .sstable import DiskSSTable, SSTable, TOMBSTONE, write_sstable

__all__ = [
    "LSMTree",
    "SSTable",
    "DiskSSTable",
    "write_sstable",
    "TOMBSTONE",
    "IoStats",
    "FileSystem",
    "OsFileSystem",
    "ManifestState",
]
