"""On-disk encodings shared by the SSTable, WAL, and manifest.

Every persisted unit is a *frame*::

    <u32 crc32(payload)> <u32 len(payload)> <payload>

so torn and corrupted writes are detected at the first read: a frame
whose length runs past the file or whose CRC mismatches is rejected
(``FrameError``), and sequential readers (the WAL) treat it as
end-of-log.  This is the checksummed-block discipline of the
FB+-tree / RocksDB file formats.

Values are typed, not pickled: the durable engine stores ints, bytes,
UTF-8 strings, and tombstones.  Anything else raises ``TypeError`` at
write time — a storage format must not silently depend on pickle.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

#: Marker value for deletions (RocksDB tombstones).  Defined here, at
#: the bottom of the lsm import graph, and re-exported by
#: :mod:`repro.lsm.sstable` for the public API.
TOMBSTONE = object()

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_FRAME_HEADER = struct.Struct("<II")

#: Value-codec tags.
_VAL_TOMBSTONE = 0
_VAL_INT = 1
_VAL_BYTES = 2
_VAL_STR = 3

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class FrameError(ValueError):
    """A frame failed its length or CRC check (torn/corrupt write)."""


# -- value codec -------------------------------------------------------------


def encode_value(value: Any) -> bytes:
    """Encode a storable value (int / bytes / str / TOMBSTONE)."""
    if value is TOMBSTONE:
        return bytes([_VAL_TOMBSTONE])
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("durable LSM values must be int, bytes, or str")
    if isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise TypeError("int values must fit in a signed 64-bit word")
        return bytes([_VAL_INT]) + struct.pack("<q", value)
    if isinstance(value, bytes):
        return bytes([_VAL_BYTES]) + value
    if isinstance(value, str):
        return bytes([_VAL_STR]) + value.encode("utf-8")
    raise TypeError(
        f"durable LSM values must be int, bytes, or str (got {type(value).__name__})"
    )


def decode_value(data: bytes) -> Any:
    if not data:
        raise FrameError("empty value encoding")
    tag = data[0]
    if tag == _VAL_TOMBSTONE:
        return TOMBSTONE
    if tag == _VAL_INT:
        if len(data) != 9:
            raise FrameError("bad int value length")
        return struct.unpack("<q", data[1:])[0]
    if tag == _VAL_BYTES:
        return data[1:]
    if tag == _VAL_STR:
        return data[1:].decode("utf-8")
    raise FrameError(f"unknown value tag {tag}")


# -- frames ------------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(zlib.crc32(payload), len(payload)) + payload


def read_frame(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode one frame at ``offset``; returns (payload, next_offset).

    Raises :class:`FrameError` on truncation or checksum mismatch.
    """
    if offset + _FRAME_HEADER.size > len(data):
        raise FrameError("truncated frame header")
    crc, length = _FRAME_HEADER.unpack_from(data, offset)
    start = offset + _FRAME_HEADER.size
    payload = data[start : start + length]
    if len(payload) != length:
        raise FrameError("truncated frame payload")
    if zlib.crc32(payload) != crc:
        raise FrameError("frame CRC mismatch")
    return payload, start + length


# -- entry blocks ------------------------------------------------------------


def encode_block(pairs: list[tuple[bytes, Any]]) -> bytes:
    """One SSTable block: framed, CRC-checked entry run."""
    out = bytearray(_U32.pack(len(pairs)))
    for key, value in pairs:
        val = encode_value(value)
        out += _U32.pack(len(key))
        out += key
        out += _U32.pack(len(val))
        out += val
    return frame(bytes(out))


def decode_block(data: bytes) -> list[tuple[bytes, Any]]:
    """Inverse of :func:`encode_block` over one framed block.

    Accepts any bytes-like input (including a ``memoryview`` slice of
    an mmap'd table file); the decoded entries are always materialized
    ``bytes`` objects so they never alias the caller's buffer.
    """
    payload, _ = read_frame(data)
    if not isinstance(payload, bytes):
        payload = bytes(payload)
    (count,) = _U32.unpack_from(payload, 0)
    offset = 4
    pairs: list[tuple[bytes, Any]] = []
    for _ in range(count):
        (klen,) = _U32.unpack_from(payload, offset)
        offset += 4
        key = payload[offset : offset + klen]
        offset += klen
        (vlen,) = _U32.unpack_from(payload, offset)
        offset += 4
        pairs.append((key, decode_value(payload[offset : offset + vlen])))
        offset += vlen
    if offset != len(payload):
        raise FrameError("trailing bytes in block payload")
    return pairs


# -- length-prefixed byte strings (for footers / manifests) ------------------


def pack_bytes(b: bytes) -> bytes:
    return _U32.pack(len(b)) + b


def unpack_bytes(data: bytes, offset: int) -> tuple[bytes, int]:
    (n,) = _U32.unpack_from(data, offset)
    offset += 4
    out = data[offset : offset + n]
    if len(out) != n:
        raise FrameError("truncated byte string")
    return out, offset + n


def pack_u64(v: int) -> bytes:
    return _U64.pack(v)


def unpack_u64(data: bytes, offset: int) -> tuple[int, int]:
    return _U64.unpack_from(data, offset)[0], offset + 8
