"""Versioned manifest: the atomic commit point for LSM state changes.

A manifest is one CRC-framed snapshot of the engine's durable
metadata — the level layout (table ids), the table-id allocator, the
sequence-number floor, and the live WAL segment.  Installs follow the
RocksDB discipline::

    write MANIFEST-<v>.tmp  →  fsync  →  rename to MANIFEST-<v>
    write CURRENT.tmp       →  fsync  →  rename to CURRENT

``rename`` is the backing filesystem's atomic commit, so a crash at
any point leaves either the old or the new version fully installed,
never a mix.  Recovery reads CURRENT, loads the named manifest, and
garbage-collects every file the manifest does not reference (orphan
tables from an uninstalled flush, stale WALs, old manifests, tmps).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from .disk_format import FrameError
from .fs import FileSystem, join

MANIFEST_MAGIC = b"LSMM"
CURRENT = "CURRENT"


@dataclass
class ManifestState:
    """The durable metadata snapshot one manifest file encodes."""

    version: int = 0
    #: Next table id the engine may allocate (ids below are spoken for).
    next_table_id: int = 0
    #: Every write with seq <= last_seq is in an installed SSTable; the
    #: live WAL may carry records above this floor.
    last_seq: int = 0
    #: File name of the live WAL segment (within the db directory).
    wal_name: str = ""
    #: Index of the live WAL segment (allocator for rotation).
    wal_index: int = 0
    #: Table ids per level; level 0 is newest-first.
    levels: list[list[int]] = field(default_factory=lambda: [[]])

    def encode(self) -> bytes:
        doc = {
            "version": self.version,
            "next_table_id": self.next_table_id,
            "last_seq": self.last_seq,
            "wal_name": self.wal_name,
            "wal_index": self.wal_index,
            "levels": self.levels,
        }
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        crc = zlib.crc32(payload)
        return MANIFEST_MAGIC + crc.to_bytes(4, "little") + payload

    @classmethod
    def decode(cls, data: bytes) -> "ManifestState":
        if data[:4] != MANIFEST_MAGIC:
            raise FrameError("not a manifest (bad magic)")
        crc = int.from_bytes(data[4:8], "little")
        payload = data[8:]
        if zlib.crc32(payload) != crc:
            raise FrameError("manifest CRC mismatch")
        doc = json.loads(payload.decode("utf-8"))
        return cls(
            version=doc["version"],
            next_table_id=doc["next_table_id"],
            last_seq=doc["last_seq"],
            wal_name=doc["wal_name"],
            wal_index=doc["wal_index"],
            levels=[list(level) for level in doc["levels"]],
        )


def manifest_file_name(version: int) -> str:
    return f"MANIFEST-{version:08d}"


def _atomic_write(fs: FileSystem, root: str, name: str, data: bytes) -> None:
    tmp = join(root, name + ".tmp")
    f = fs.create(tmp)
    f.append(data)
    f.sync()
    f.close()
    fs.rename(tmp, join(root, name))


def install(fs: FileSystem, root: str, state: ManifestState) -> None:
    """Durably install ``state`` as the current version."""
    name = manifest_file_name(state.version)
    _atomic_write(fs, root, name, state.encode())
    _atomic_write(fs, root, CURRENT, name.encode("utf-8") + b"\n")


def load_current(fs: FileSystem, root: str) -> ManifestState | None:
    """The installed manifest, or None for a fresh directory."""
    current_path = join(root, CURRENT)
    if not fs.exists(current_path):
        return None
    name = fs.read(current_path).decode("utf-8").strip()
    return ManifestState.decode(fs.read(join(root, name)))
