"""A leveled LSM-tree storage engine with simulated I/O (Section 4.2).

The architecture mirrors Figure 4.2: writes land in a MemTable; full
MemTables become level-0 SSTables; compaction merges runs downward so
that every level >= 1 holds disjoint key ranges.  A block cache (CLOCK)
approximates RocksDB's block cache + OS page cache; fence indexes and
filters live in the always-resident table cache.

Query execution follows the Figure 4.3 flowcharts, and performance is
reported as simulated I/Os: every block fetch that misses the cache
costs one I/O.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator

from ..compact.node_cache import ClockNodeCache
from .sstable import DEFAULT_BLOCK_ENTRIES, SSTable, TOMBSTONE


class IoStats:
    """Simulated I/O counters."""

    __slots__ = ("block_reads", "cache_hits")

    def __init__(self) -> None:
        self.block_reads = 0
        self.cache_hits = 0

    def reset(self) -> None:
        self.block_reads = 0
        self.cache_hits = 0


class LSMTree:
    """Log-structured merge tree with pluggable per-table filters."""

    def __init__(
        self,
        memtable_entries: int = 512,
        sstable_entries: int = 4096,
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        level0_limit: int = 4,
        level_fanout: int = 10,
        block_cache_blocks: int = 128,
        filter_factory: Callable | None = None,
    ) -> None:
        self._memtable: dict[bytes, Any] = {}
        self._memtable_entries = memtable_entries
        self._sstable_entries = sstable_entries
        self._block_entries = block_entries
        self._level0_limit = level0_limit
        self._level_fanout = level_fanout
        self._filter_factory = filter_factory
        #: levels[0] is newest-first and may overlap; levels[i >= 1]
        #: are sorted by min_key with disjoint ranges.
        self.levels: list[list[SSTable]] = [[]]
        self._block_cache = ClockNodeCache(block_cache_blocks)
        self.io = IoStats()

    # -- write path --------------------------------------------------------------

    def put(self, key: bytes, value: Any) -> None:
        self._memtable[key] = value
        if len(self._memtable) >= self._memtable_entries:
            self.flush_memtable()

    def delete(self, key: bytes) -> None:
        self.put(key, TOMBSTONE)

    def flush_memtable(self) -> None:
        if not self._memtable:
            return
        pairs = sorted(self._memtable.items())
        self.levels[0].insert(0, self._make_table(pairs))
        self._memtable = {}
        self._maybe_compact()

    def _make_table(self, pairs) -> SSTable:
        return SSTable(
            pairs,
            block_entries=self._block_entries,
            filter_factory=self._filter_factory,
        )

    # -- compaction -----------------------------------------------------------------

    def _level_limit(self, level: int) -> int:
        if level == 0:
            return self._level0_limit
        return self._level0_limit * (self._level_fanout ** level)

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self.levels):
            if len(self.levels[level]) > self._level_limit(level):
                self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        """Merge one level's overflow into the next level."""
        if level + 1 >= len(self.levels):
            self.levels.append([])
        if level == 0:
            sources = self.levels[0]
            self.levels[0] = []
        else:
            sources = [self.levels[level].pop(0)]
        lo = min(t.min_key for t in sources)
        hi = max(t.max_key for t in sources)
        next_level = self.levels[level + 1]
        overlapping = [t for t in next_level if t.overlaps(lo, hi)]
        keep = [t for t in next_level if not t.overlaps(lo, hi)]
        merged = self._merge_tables(sources, overlapping, drop_tombstones=level + 2 == len(self.levels))
        new_tables = [
            self._make_table(merged[i : i + self._sstable_entries])
            for i in range(0, len(merged), self._sstable_entries)
        ]
        self.levels[level + 1] = sorted(keep + new_tables, key=lambda t: t.min_key)

    def _merge_tables(
        self, newer: list[SSTable], older: list[SSTable], drop_tombstones: bool
    ) -> list[tuple[bytes, Any]]:
        """Newest-wins merge of runs (``newer`` is newest-first)."""
        merged: dict[bytes, Any] = {}
        for table in older:
            for k, v in table.items():
                merged[k] = v
        for table in reversed(newer):  # apply oldest first, newest last
            for k, v in table.items():
                merged[k] = v
        out = sorted(merged.items())
        if drop_tombstones:
            out = [(k, v) for k, v in out if v is not TOMBSTONE]
        return out

    # -- block access with simulated I/O ------------------------------------------------

    def _read_block(self, table: SSTable, block_idx: int) -> list[tuple[bytes, Any]]:
        cache_key = (table.table_id, block_idx)
        before = self._block_cache.misses
        block = self._block_cache.get_or_load(
            cache_key, lambda: table.blocks[block_idx]
        )
        if self._block_cache.misses > before:
            self.io.block_reads += 1
        else:
            self.io.cache_hits += 1
        return block

    # -- Get (Figure 4.3 left) ------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is TOMBSTONE else value
        for table in self._candidates_for(key):
            if not table.may_contain(key):
                continue
            block = self._read_block(table, table.block_for(key))
            idx = bisect_left(block, (key,))
            if idx < len(block) and block[idx][0] == key:
                value = block[idx][1]
                return None if value is TOMBSTONE else value
        return None

    def _candidates_for(self, key: bytes) -> Iterator[SSTable]:
        for table in self.levels[0]:
            if table.min_key <= key <= table.max_key:
                yield table
        for level in self.levels[1:]:
            idx = bisect_right([t.min_key for t in level], key) - 1
            if idx >= 0 and key <= level[idx].max_key:
                yield level[idx]

    # -- Seek (Figure 4.3 middle) -----------------------------------------------------------

    def seek(self, low: bytes, high: bytes | None = None) -> tuple[bytes, Any] | None:
        """Smallest entry with key >= low (and <= high if given).

        With SuRF filters, candidate keys come from the filters and at
        most one block is fetched; without them, one block per
        candidate SSTable is fetched (the I/O the paper saves).
        """
        best: tuple[bytes, Any] | None = None
        # MemTable candidate (no I/O).
        mem = [(k, v) for k, v in self._memtable.items() if k >= low]
        if mem:
            best = min(mem)
        candidates = list(self._seek_candidates(low))
        if candidates and all(
            t.filter is not None and hasattr(t.filter, "move_to_next")
            for t in candidates
        ):
            cand = self._filtered_seek(candidates, low, high, best)
            if cand is not None and (best is None or cand[0] < best[0]):
                best = cand
        else:
            for table in candidates:
                cand = self._table_seek(table, low, high, best)
                if cand is not None and (best is None or cand[0] < best[0]):
                    best = cand
        if best is None or best[1] is TOMBSTONE:
            # Tombstones shadow older entries; step past them.
            if best is not None:
                return self.seek(best[0] + b"\x00", high)
            return None
        if high is not None and best[0] > high:
            return None
        return best

    def _filtered_seek(
        self,
        candidates: list[SSTable],
        low: bytes,
        high: bytes | None,
        best: tuple[bytes, Any] | None,
    ) -> tuple[bytes, Any] | None:
        """The paper's SuRF seek (Section 4.2): obtain each table's
        candidate *key prefix* from its filter (no I/O), find the global
        minimum, and fetch exactly one block — plus extra fetches only
        for ambiguous prefix ties or fp-flagged boundaries."""
        prefixed: list[tuple[bytes, SSTable]] = []
        for table in candidates:
            it, _fp = table.filter_seek(low)
            if not it.valid:
                continue
            prefixed.append((it.key(), table))
        if not prefixed:
            return None
        min_prefix = min(p for p, _ in prefixed)
        if high is not None and min_prefix > high:
            return None  # every candidate starts past the bound: no I/O
        # Resolve the winner: any table whose prefix ties with or is a
        # prefix-relative of the minimum needs its complete key.
        result: tuple[bytes, Any] | None = None
        for prefix, table in prefixed:
            ambiguous = (
                prefix == min_prefix
                or prefix.startswith(min_prefix)
                or min_prefix.startswith(prefix)
            )
            if not ambiguous:
                continue
            cand = self._table_seek(table, low, high, result or best)
            if cand is not None and (result is None or cand[0] < result[0]):
                result = cand
        return result

    def _seek_candidates(self, low: bytes) -> Iterator[SSTable]:
        for table in self.levels[0]:
            if table.max_key >= low:
                yield table
        for level in self.levels[1:]:
            idx = bisect_right([t.min_key for t in level], low) - 1
            start = max(idx, 0)
            for table in level[start:]:
                if table.max_key >= low:
                    yield table
                    break  # disjoint level: first qualifying table wins

    def _table_seek(
        self,
        table: SSTable,
        low: bytes,
        high: bytes | None,
        best: tuple[bytes, Any] | None,
    ) -> tuple[bytes, Any] | None:
        filter_it = table.filter_seek(low)
        if filter_it is not None:
            it, _fp = filter_it
            if not it.valid:
                return None  # filter proves nothing >= low here
            candidate_prefix = it.key()
            if high is not None and candidate_prefix > high:
                return None  # beyond the bound: I/O saved
            if best is not None and candidate_prefix > best[0]:
                return None  # cannot beat the current winner
        # Fetch the one block that holds the table's first key >= low.
        block_idx = table.block_for(low)
        block = self._read_block(table, block_idx)
        idx = bisect_left(block, (low,))
        while True:
            if idx < len(block):
                return block[idx]
            block_idx += 1
            if block_idx >= len(table.blocks):
                return None
            block = self._read_block(table, block_idx)
            idx = 0

    # -- iteration / Count (Figure 4.3 right) ---------------------------------------------------

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Seek + Next*: the first ``count`` live entries >= low."""
        out: list[tuple[bytes, Any]] = []
        cursor = low
        while len(out) < count:
            entry = self.seek(cursor)
            if entry is None:
                break
            out.append(entry)
            cursor = entry[0] + b"\x00"
        return out

    def count(self, low: bytes, high: bytes) -> int:
        """Approximate count of entries in [low, high).

        With SuRF filters this runs from the filters plus at most two
        boundary block reads per level; otherwise it scans blocks.
        As in the paper, LSM semantics make it approximate (it cannot
        distinguish updates/deletes across runs without a full merge).
        """
        total = 0
        total += sum(1 for k in self._memtable if low <= k < high)
        for level in self.levels:
            for table in level:
                if not table.overlaps(low, high):
                    continue
                if table.filter is not None and hasattr(table.filter, "count"):
                    total += table.filter.count(low, high)
                else:
                    total += self._scan_count(table, low, high)
        return total

    def _scan_count(self, table: SSTable, low: bytes, high: bytes) -> int:
        count = 0
        block_idx = table.block_for(low)
        while block_idx < len(table.blocks):
            block = self._read_block(table, block_idx)
            for k, _ in block:
                if k >= high:
                    return count
                if k >= low:
                    count += 1
            block_idx += 1
        return count

    # -- statistics -----------------------------------------------------------------------------

    def total_entries(self) -> int:
        return len(self._memtable) + sum(
            t.n_entries for level in self.levels for t in level
        )

    def filter_memory_bytes(self) -> int:
        return sum(t.filter_memory_bytes() for level in self.levels for t in level)

    def table_count(self) -> int:
        return sum(len(level) for level in self.levels)
