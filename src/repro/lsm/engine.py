"""A leveled LSM-tree storage engine (Section 4.2), durable or simulated.

The architecture mirrors Figure 4.2: writes land in a MemTable; full
MemTables become level-0 SSTables; compaction merges runs downward so
that every level >= 1 holds disjoint key ranges.  A block cache (CLOCK)
approximates RocksDB's block cache + OS page cache; fence indexes and
filters live in the always-resident table cache.

Query execution follows the Figure 4.3 flowcharts, and performance is
reported as simulated I/Os: every block fetch that misses the cache
costs one I/O.

Two modes share all of that logic:

* **in-memory** (``path=None``): SSTables live on the heap, I/O is
  simulated — the original reproduction substrate;
* **durable** (``path=...``): writes are sequenced through a
  write-ahead log with batched fsync (group commit), flushes and
  compactions write CRC-framed table files and commit them through a
  versioned manifest (write-temp → sync → rename), and
  :meth:`LSMTree.open` recovers exactly the last acknowledged state —
  a write is acknowledged once its WAL record is fsynced
  (``seq <= last_acked_seq``).

Crash-safety invariants the recovery tests machine-check:

1. a table file is always fully written and fsynced before any
   manifest references it;
2. the manifest version switch (CURRENT rename) is the only commit
   point — a crash on either side leaves a consistent old/new state;
3. the previous WAL segment is deleted only after the manifest that
   supersedes it is installed;
4. recovery garbage-collects every file the current manifest does not
   reference, so half-installed flushes cannot resurrect.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator, Sequence

from ..compact.node_cache import ClockNodeCache
from . import manifest as manifest_mod
from . import wal as wal_mod
from .fs import FileSystem, OsFileSystem, join
from .manifest import ManifestState
from .sstable import (
    DEFAULT_BLOCK_ENTRIES,
    DiskSSTable,
    SSTable,
    SSTableBase,
    TOMBSTONE,
    table_file_name,
    write_sstable,
)


class IoStats:
    """Simulated I/O and filter-probe counters."""

    __slots__ = ("block_reads", "cache_hits", "filter_probes", "filter_negatives")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.block_reads = 0
        self.cache_hits = 0
        #: Point-read probes against a per-table filter, and how many
        #: proved the table could not hold the key (I/O avoided) — the
        #: serving layer reports these as the filter hit rate.
        self.filter_probes = 0
        self.filter_negatives = 0


class LSMTree:
    """Log-structured merge tree with pluggable per-table filters."""

    def __init__(
        self,
        memtable_entries: int = 512,
        sstable_entries: int = 4096,
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        level0_limit: int = 4,
        level_fanout: int = 10,
        block_cache_blocks: int = 128,
        filter_factory: Callable | None = None,
        path: str | None = None,
        fs: FileSystem | None = None,
        wal_sync_every: int = 32,
    ) -> None:
        self._memtable: dict[bytes, Any] = {}
        self._memtable_entries = memtable_entries
        self._sstable_entries = sstable_entries
        self._block_entries = block_entries
        self._level0_limit = level0_limit
        self._level_fanout = level_fanout
        self._filter_factory = filter_factory
        #: levels[0] is newest-first and may overlap; levels[i >= 1]
        #: are sorted by min_key with disjoint ranges.
        self.levels: list[list[SSTableBase]] = [[]]
        self._block_cache = ClockNodeCache(block_cache_blocks)
        self.io = IoStats()
        #: Engine-scoped table-id allocator (persisted via the manifest
        #: in durable mode, so recovered engines never reuse an id).
        self._next_table_id = 0
        #: Monotonic write sequence; every put/delete gets the next one.
        self._seq = 0
        #: Every seq <= this is covered by installed SSTables.
        self._flushed_seq = 0
        #: Every seq <= this is known durable via a *committed* manifest
        #: install — the conservative floor of the ack watermark.
        self._acked_floor = 0

        self.path = path
        self._fs = fs if fs is not None else (OsFileSystem() if path else None)
        self._wal: wal_mod.WalWriter | None = None
        self._wal_sync_every = wal_sync_every
        self._wal_index = 0
        self._wal_name = ""
        self._manifest_version = 0
        self._closed = False
        if path is not None:
            self._open_durable()

    @classmethod
    def open(cls, path: str, fs: FileSystem | None = None, **config) -> "LSMTree":
        """Open (or create) a durable engine at ``path``, recovering to
        exactly the last acknowledged state after any crash."""
        return cls(path=path, fs=fs, **config)

    # -- durability: open / recover ------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.path is not None

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent accepted write."""
        return self._seq

    @property
    def last_acked_seq(self) -> int:
        """Writes with seq <= this are guaranteed to survive a crash.

        In-memory engines have no durability, so every accepted write
        counts as acknowledged.  In durable mode a write is acked by
        either a WAL group-commit fsync or a committed manifest
        install — never by work still in flight: during a flush the
        watermark stays at its pre-flush value until the CURRENT
        rename lands, because only that rename makes the new SSTable
        reachable by recovery.
        """
        if self._wal is None:
            return self._seq
        return max(self._acked_floor, self._wal.synced_seq)

    def _open_durable(self) -> None:
        fs, path = self._fs, self.path
        fs.mkdir(path)
        state = manifest_mod.load_current(fs, path)
        if state is not None:
            self._recover(state)
        else:
            self._start_wal(1)
            self._install_manifest()
        self._collect_garbage()

    def _recover(self, state: ManifestState) -> None:
        fs, path = self._fs, self.path
        self._manifest_version = state.version
        self._next_table_id = state.next_table_id
        self._seq = self._flushed_seq = self._acked_floor = state.last_seq
        self.levels = [
            [
                # Passing the manifest's table id makes construction
                # zero-I/O: the footer and filter load lazily on first
                # access, so open time is O(1) per table.
                DiskSSTable(
                    fs,
                    join(path, table_file_name(tid)),
                    filter_factory=self._filter_factory,
                    table_id=tid,
                )
                for tid in level
            ]
            for level in state.levels
        ] or [[]]
        # Replay the WAL into the memtable; a torn tail ends the replay
        # (those records were never acknowledged).
        records = wal_mod.replay(fs, join(path, state.wal_name))
        self._start_wal(state.wal_index + 1)
        for seq, key, value in records:
            if seq <= state.last_seq:
                continue  # already covered by an installed SSTable
            self._memtable[key] = value
            self._seq = max(self._seq, seq)
            # Re-log into the fresh segment so recovered writes stay
            # durable once the old segment is garbage-collected.
            if value is TOMBSTONE:
                self._wal.append_delete(seq, key)
            else:
                self._wal.append_put(seq, key, value)
        self._wal.sync()
        self._install_manifest()

    def _start_wal(self, index: int) -> None:
        self._wal_index = index
        self._wal_name = wal_mod.wal_file_name(index)
        self._wal = wal_mod.WalWriter(
            self._fs, join(self.path, self._wal_name), self._wal_sync_every
        )
        # The fresh segment starts at the current sequence but claims
        # nothing durable: until the manifest that pairs with it is
        # installed, recovery still runs from the previous segment.
        self._wal.last_seq = self._seq
        self._wal.synced_seq = 0

    def _install_manifest(self) -> None:
        self._manifest_version += 1
        state = ManifestState(
            version=self._manifest_version,
            next_table_id=self._next_table_id,
            last_seq=self._flushed_seq,
            wal_name=self._wal_name,
            wal_index=self._wal_index,
            levels=[[t.table_id for t in level] for level in self.levels],
        )
        manifest_mod.install(self._fs, self.path, state)
        # The superseded manifest is garbage now that CURRENT moved on.
        old = join(self.path, manifest_mod.manifest_file_name(self._manifest_version - 1))
        if self._fs.exists(old):
            self._fs.remove(old)

    def _collect_garbage(self) -> None:
        """Remove every file the installed manifest does not reference."""
        referenced = {
            manifest_mod.CURRENT,
            manifest_mod.manifest_file_name(self._manifest_version),
            self._wal_name,
        }
        for level in self.levels:
            for table in level:
                referenced.add(table_file_name(table.table_id))
        for name in self._fs.listdir(self.path):
            if name not in referenced:
                self._fs.remove(join(self.path, name))

    def sync(self) -> None:
        """Force the WAL durability barrier (acknowledge everything)."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        """Sync and release the WAL; the engine must not be used after.

        Idempotent: a second ``close()`` is a no-op, which the server's
        drain path relies on (a shard may be closed by the worker and
        again by the shutdown sweep)."""
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        for level in self.levels:
            for table in level:
                table.close()

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write path --------------------------------------------------------------

    def put(self, key: bytes, value: Any) -> None:
        self._seq += 1
        if self._wal is not None:
            self._wal.append_put(self._seq, key, value)
        self._memtable[key] = value
        if len(self._memtable) >= self._memtable_entries:
            self.flush_memtable()

    def delete(self, key: bytes) -> None:
        self._seq += 1
        if self._wal is not None:
            self._wal.append_delete(self._seq, key)
        self._memtable[key] = TOMBSTONE
        if len(self._memtable) >= self._memtable_entries:
            self.flush_memtable()

    def write_batch(self, entries: Sequence[tuple[bytes, Any]]) -> None:
        """Apply a mixed put/delete batch as one acknowledgement unit.

        ``entries`` are ``(key, value)`` pairs applied in order, with
        ``value is TOMBSTONE`` marking a delete.  In durable mode every
        record rides a *single* WAL group commit — one fsync covers the
        whole batch, so when this returns the batch is fully
        acknowledged (``last_acked_seq`` covers its final sequence
        number) and a crash can never split it from the caller's point
        of view.  The memtable is updated in one pass and the flush
        check runs once, after the batch.
        """
        entries = list(entries)
        if not entries:
            return
        records = []
        seq = self._seq
        for key, value in entries:
            seq += 1
            records.append((seq, key, value))
        if self._wal is not None:
            # append_batch encodes everything before appending, so a
            # TypeError from the value codec leaves WAL and seq intact.
            self._wal.append_batch(records)
        self._seq = seq
        for _, key, value in records:
            self._memtable[key] = value
        if len(self._memtable) >= self._memtable_entries:
            self.flush_memtable()

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        """Batch :meth:`put`: one WAL group commit, one flush check."""
        self.write_batch(pairs)

    def delete_many(self, keys: Sequence[bytes]) -> None:
        """Batch :meth:`delete`: one WAL group commit, one flush check."""
        self.write_batch([(key, TOMBSTONE) for key in keys])

    def flush_memtable(self) -> None:
        if not self._memtable:
            return
        pairs = sorted(self._memtable.items())
        if self.durable:
            table: SSTableBase = self._write_table(pairs)
            self.levels[0].insert(0, table)
            old_wal = self._wal
            flush_seq = self._seq
            acked_before = self.last_acked_seq
            self._start_wal(self._wal_index + 1)
            self._flushed_seq = flush_seq
            self._install_manifest()
            # The CURRENT rename just committed: every write the new
            # table covers is durable now (and not one moment sooner).
            self._acked_floor = max(acked_before, flush_seq)
            # Only now is the old segment redundant (invariant 3).
            old_wal.abandon()
            self._fs.remove(old_wal.path)
        else:
            self.levels[0].insert(0, self._make_table(pairs))
        self._memtable = {}
        self._maybe_compact()

    def _alloc_table_id(self) -> int:
        tid = self._next_table_id
        self._next_table_id += 1
        return tid

    def _make_table(self, pairs) -> SSTable:
        return SSTable(
            pairs,
            block_entries=self._block_entries,
            filter_factory=self._filter_factory,
            table_id=self._alloc_table_id(),
        )

    def _write_table(self, pairs) -> DiskSSTable:
        """Write one durable table file (fsynced before it returns)."""
        tid = self._alloc_table_id()
        file_path = join(self.path, table_file_name(tid))
        write_sstable(
            self._fs,
            file_path,
            pairs,
            tid,
            block_entries=self._block_entries,
            filter_factory=self._filter_factory,
        )
        return DiskSSTable(
            self._fs, file_path, filter_factory=self._filter_factory, table_id=tid
        )

    # -- compaction -----------------------------------------------------------------

    def _level_limit(self, level: int) -> int:
        if level == 0:
            return self._level0_limit
        return self._level0_limit * (self._level_fanout ** level)

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self.levels):
            if len(self.levels[level]) > self._level_limit(level):
                self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        """Merge one level's overflow into the next level."""
        if level + 1 >= len(self.levels):
            self.levels.append([])
        if level == 0:
            sources = self.levels[0]
            self.levels[0] = []
        else:
            sources = [self.levels[level].pop(0)]
        lo = min(t.min_key for t in sources)
        hi = max(t.max_key for t in sources)
        next_level = self.levels[level + 1]
        overlapping = [t for t in next_level if t.overlaps(lo, hi)]
        keep = [t for t in next_level if not t.overlaps(lo, hi)]
        merged = self._merge_tables(sources, overlapping, drop_tombstones=level + 2 == len(self.levels))
        make = self._write_table if self.durable else self._make_table
        new_tables = [
            make(merged[i : i + self._sstable_entries])
            for i in range(0, len(merged), self._sstable_entries)
        ]
        self.levels[level + 1] = sorted(keep + new_tables, key=lambda t: t.min_key)
        if self.durable:
            self._install_manifest()
        # The replaced tables left ``self.levels``: their cached blocks
        # are dead weight now — evict them so live blocks get the
        # capacity (and delete the files once the manifest no longer
        # references them).
        for table in list(sources) + overlapping:
            self._drop_table(table)

    def _drop_table(self, table: SSTableBase) -> None:
        for idx in range(table.n_blocks):
            self._block_cache.evict((table.table_id, idx))
        if self.durable:
            self._fs.remove(table.path)
        # Release the mapping after the unlink.  Outstanding views (a
        # filter someone still holds, a block mid-decode) keep the
        # pages alive on POSIX; close() tolerates them.
        table.close()

    def _merge_tables(
        self, newer: list[SSTableBase], older: list[SSTableBase], drop_tombstones: bool
    ) -> list[tuple[bytes, Any]]:
        """Newest-wins merge of runs (``newer`` is newest-first)."""
        merged: dict[bytes, Any] = {}
        for table in older:
            for k, v in table.items():
                merged[k] = v
        for table in reversed(newer):  # apply oldest first, newest last
            for k, v in table.items():
                merged[k] = v
        out = sorted(merged.items())
        if drop_tombstones:
            out = [(k, v) for k, v in out if v is not TOMBSTONE]
        return out

    # -- block access with simulated I/O ------------------------------------------------

    def _read_block(self, table: SSTableBase, block_idx: int) -> list[tuple[bytes, Any]]:
        cache_key = (table.table_id, block_idx)
        before = self._block_cache.misses
        block = self._block_cache.get_or_load(
            cache_key, lambda: table.read_block(block_idx)
        )
        if self._block_cache.misses > before:
            self.io.block_reads += 1
        else:
            self.io.cache_hits += 1
        return block

    # -- Get (Figure 4.3 left) ------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is TOMBSTONE else value
        for table in self._candidates_for(key):
            if table.filter is not None:
                self.io.filter_probes += 1
                if not table.may_contain(key):
                    self.io.filter_negatives += 1
                    continue
            elif not table.may_contain(key):
                continue
            block = self._read_block(table, table.block_for(key))
            idx = bisect_left(block, (key,))
            if idx < len(block) and block[idx][0] == key:
                value = block[idx][1]
                return None if value is TOMBSTONE else value
        return None

    def get_many(self, keys: Sequence[bytes]) -> list[Any]:
        """Batch point reads matching element-wise scalar :meth:`get`.

        The batch walks the LSM hierarchy level-synchronously: per
        table, every still-unresolved key in the table's range is
        probed through the filter's vectorized ``lookup_many`` (PR 3
        batch kernels) in one call, and the survivors are grouped by
        block so each block is fetched and decoded once no matter how
        many keys land in it.  A key resolved by a newer table (value
        *or* tombstone) never touches older tables, preserving
        newest-wins semantics exactly.
        """
        keys = list(keys)
        out: list[Any] = [None] * len(keys)
        pending: list[int] = []
        for i, key in enumerate(keys):
            if key in self._memtable:
                value = self._memtable[key]
                out[i] = None if value is TOMBSTONE else value
            else:
                pending.append(i)
        for table in self.levels[0]:
            if not pending:
                return out
            pending = self._table_get_many(table, keys, out, pending)
        for level in self.levels[1:]:
            if not pending:
                return out
            # Disjoint level: each key has at most one candidate table.
            min_keys = [t.min_key for t in level]
            by_table: dict[int, list[int]] = {}
            next_pending: list[int] = []
            for i in pending:
                ti = bisect_right(min_keys, keys[i]) - 1
                if ti >= 0 and keys[i] <= level[ti].max_key:
                    by_table.setdefault(ti, []).append(i)
                else:
                    next_pending.append(i)
            for ti, members in sorted(by_table.items()):
                next_pending.extend(
                    self._table_get_many(level[ti], keys, out, members)
                )
            pending = next_pending
        return out

    def _table_get_many(
        self, table: SSTableBase, keys: list[bytes], out: list[Any], idxs: list[int]
    ) -> list[int]:
        """Resolve what ``table`` holds of ``keys[idxs]``; return the
        indexes still unresolved (filter negatives, false positives,
        and keys outside the table's range)."""
        in_range = [i for i in idxs if table.min_key <= keys[i] <= table.max_key]
        if not in_range:
            return idxs
        if table.filter is not None:
            flt = table.filter
            probe = getattr(flt, "lookup_many", None) or getattr(
                flt, "may_contain_many", None
            )
            if probe is not None:
                mask = probe([keys[i] for i in in_range])
            else:
                mask = [table.may_contain(keys[i]) for i in in_range]
            self.io.filter_probes += len(in_range)
            passed = [i for i, hit in zip(in_range, mask) if hit]
            self.io.filter_negatives += len(in_range) - len(passed)
        else:
            passed = in_range
        if not passed:
            return idxs
        by_block: dict[int, list[int]] = {}
        for i in passed:
            by_block.setdefault(table.block_for(keys[i]), []).append(i)
        resolved: set[int] = set()
        for block_idx in sorted(by_block):
            block = self._read_block(table, block_idx)
            for i in by_block[block_idx]:
                j = bisect_left(block, (keys[i],))
                if j < len(block) and block[j][0] == keys[i]:
                    value = block[j][1]
                    out[i] = None if value is TOMBSTONE else value
                    resolved.add(i)
        if not resolved:
            return idxs
        return [i for i in idxs if i not in resolved]

    def _candidates_for(self, key: bytes) -> Iterator[SSTableBase]:
        for table in self.levels[0]:
            if table.min_key <= key <= table.max_key:
                yield table
        for level in self.levels[1:]:
            idx = bisect_right([t.min_key for t in level], key) - 1
            if idx >= 0 and key <= level[idx].max_key:
                yield level[idx]

    # -- Seek (Figure 4.3 middle) -----------------------------------------------------------

    def seek(self, low: bytes, high: bytes | None = None) -> tuple[bytes, Any] | None:
        """Smallest entry with key >= low (and <= high if given).

        With SuRF filters, candidate keys come from the filters and at
        most one block is fetched; without them, one block per
        candidate SSTable is fetched (the I/O the paper saves).  When
        the winner turns out to be a tombstone, the engine switches to
        an iterative merged cursor (:meth:`_merge_seek`) that skips the
        whole tombstone run reading each block at most once — a run of
        100k deleted keys costs O(blocks) reads and O(1) stack.
        """
        best: tuple[bytes, Any] | None = None
        # MemTable candidate (no I/O).
        mem = [(k, v) for k, v in self._memtable.items() if k >= low]
        if mem:
            best = min(mem)
        candidates = list(self._seek_candidates(low))
        if candidates and all(
            t.filter is not None and hasattr(t.filter, "move_to_next")
            for t in candidates
        ):
            cand = self._filtered_seek(candidates, low, high, best)
            if cand is not None and (best is None or cand[0] < best[0]):
                best = cand
        else:
            for table in candidates:
                cand = self._table_seek(table, low, high, best)
                if cand is not None and (best is None or cand[0] < best[0]):
                    best = cand
        if best is None:
            return None
        if best[1] is TOMBSTONE:
            # Tombstones shadow older entries; skip the run iteratively.
            return self._merge_seek(best[0], high)
        if high is not None and best[0] > high:
            return None
        return best

    def _merge_seek(
        self, start: bytes, high: bytes | None
    ) -> tuple[bytes, Any] | None:
        """First live entry >= ``start`` via a newest-wins k-way merge.

        One sorted cursor per source (memtable, each L0 table, each
        deeper level) advances through a heap; for duplicate keys the
        lowest-rank (newest) source wins.  Every block along the skip
        is read at most once, so a contiguous tombstone run costs
        O(run / block_entries) block reads, not O(run) seek restarts.
        """
        iters: list[Iterator[tuple[bytes, Any]]] = [
            iter(sorted((k, v) for k, v in self._memtable.items() if k >= start))
        ]
        for table in self.levels[0]:
            if table.max_key >= start:
                iters.append(self._table_cursor(table, start))
        for level in self.levels[1:]:
            iters.append(self._level_cursor(level, start))
        # Heap entries are (key, rank, value); ranks are unique, so the
        # (unorderable) values never get compared.
        heap: list[tuple[bytes, int, Any]] = []
        for rank, it in enumerate(iters):
            first = next(it, None)
            if first is not None:
                heap.append((first[0], rank, first[1]))
        heapq.heapify(heap)
        while heap:
            key = heap[0][0]
            if high is not None and key > high:
                return None
            # Pop every version of ``key``; the first popped has the
            # lowest rank (newest source) and decides liveness.
            winner = heap[0][2]
            while heap and heap[0][0] == key:
                _, rank, _ = heapq.heappop(heap)
                nxt = next(iters[rank], None)
                if nxt is not None:
                    heapq.heappush(heap, (nxt[0], rank, nxt[1]))
            if winner is not TOMBSTONE:
                return (key, winner)
        return None

    def _table_cursor(
        self, table: SSTableBase, start: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        """Entries >= ``start`` from one table, block by cached block."""
        block_idx = table.block_for(start)
        block = self._read_block(table, block_idx)
        for entry in block[bisect_left(block, (start,)) :]:
            yield entry
        for block_idx in range(block_idx + 1, table.n_blocks):
            yield from self._read_block(table, block_idx)

    def _level_cursor(
        self, level: list[SSTableBase], start: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        """Entries >= ``start`` across one disjoint sorted level."""
        idx = max(bisect_right([t.min_key for t in level], start) - 1, 0)
        for table in level[idx:]:
            if table.max_key < start:
                continue
            yield from self._table_cursor(table, max(start, table.min_key))

    def _filtered_seek(
        self,
        candidates: list[SSTableBase],
        low: bytes,
        high: bytes | None,
        best: tuple[bytes, Any] | None,
    ) -> tuple[bytes, Any] | None:
        """The paper's SuRF seek (Section 4.2): obtain each table's
        candidate *key prefix* from its filter (no I/O) and resolve the
        winner with as few block fetches as the prefixes allow.

        A filter prefix is a *truncated lower bound* on the table's
        first key >= ``low`` — truncation can make prefixes from
        different tables conflate distinct keys, so prefix order alone
        cannot pick the winner (an earlier version skipped tables whose
        prefix was not string-prefix-related to the minimum, silently
        dropping newer versions and tombstones of the winning key).
        The only sound prefix deduction is pruning: ``prefix > k``
        proves the table holds nothing in ``[low, k]``.  So every
        candidate is consulted newest-first, and :meth:`_table_seek`'s
        internal prefix prune skips the block fetch whenever the prefix
        already exceeds the running winner."""
        prefixed: list[tuple[bytes, SSTableBase]] = []
        for table in candidates:
            it, _fp = table.filter_seek(low)
            if not it.valid:
                continue  # sound: no stored entry (nor prefix) >= low
            prefixed.append((it.key(), table))
        if not prefixed:
            return None
        min_prefix = min(p for p, _ in prefixed)
        if high is not None and min_prefix > high:
            return None  # every candidate starts past the bound: no I/O
        # ``candidates`` arrive newest-first, so on a full-key tie the
        # first (newest) table's entry — live or tombstone — wins.
        result: tuple[bytes, Any] | None = None
        for _prefix, table in prefixed:
            cand = self._table_seek(table, low, high, result or best)
            if cand is not None and (result is None or cand[0] < result[0]):
                result = cand
        return result

    def _seek_candidates(self, low: bytes) -> Iterator[SSTableBase]:
        for table in self.levels[0]:
            if table.max_key >= low:
                yield table
        for level in self.levels[1:]:
            idx = bisect_right([t.min_key for t in level], low) - 1
            start = max(idx, 0)
            for table in level[start:]:
                if table.max_key >= low:
                    yield table
                    break  # disjoint level: first qualifying table wins

    def _table_seek(
        self,
        table: SSTableBase,
        low: bytes,
        high: bytes | None,
        best: tuple[bytes, Any] | None,
    ) -> tuple[bytes, Any] | None:
        filter_it = table.filter_seek(low)
        if filter_it is not None:
            it, _fp = filter_it
            if not it.valid:
                return None  # filter proves nothing >= low here
            candidate_prefix = it.key()
            if high is not None and candidate_prefix > high:
                return None  # beyond the bound: I/O saved
            if best is not None and candidate_prefix > best[0]:
                return None  # cannot beat the current winner
        # Fetch the one block that holds the table's first key >= low.
        block_idx = table.block_for(low)
        block = self._read_block(table, block_idx)
        idx = bisect_left(block, (low,))
        while True:
            if idx < len(block):
                return block[idx]
            block_idx += 1
            if block_idx >= table.n_blocks:
                return None
            block = self._read_block(table, block_idx)
            idx = 0

    # -- iteration / Count (Figure 4.3 right) ---------------------------------------------------

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Seek + Next*: the first ``count`` live entries >= low."""
        out: list[tuple[bytes, Any]] = []
        cursor = low
        while len(out) < count:
            entry = self.seek(cursor)
            if entry is None:
                break
            out.append(entry)
            cursor = entry[0] + b"\x00"
        return out

    def count(self, low: bytes, high: bytes) -> int:
        """Approximate count of entries in [low, high).

        With SuRF filters this runs from the filters plus at most two
        boundary block reads per level; otherwise it scans blocks.
        As in the paper, LSM semantics make it approximate (it cannot
        distinguish updates/deletes across runs without a full merge).
        """
        total = 0
        total += sum(1 for k in self._memtable if low <= k < high)
        for level in self.levels:
            for table in level:
                if not table.overlaps(low, high):
                    continue
                if table.filter is not None and hasattr(table.filter, "count"):
                    total += table.filter.count(low, high)
                else:
                    total += self._scan_count(table, low, high)
        return total

    def _scan_count(self, table: SSTableBase, low: bytes, high: bytes) -> int:
        count = 0
        block_idx = table.block_for(low)
        while block_idx < table.n_blocks:
            block = self._read_block(table, block_idx)
            for k, _ in block:
                if k >= high:
                    return count
                if k >= low:
                    count += 1
            block_idx += 1
        return count

    # -- statistics -----------------------------------------------------------------------------

    def total_entries(self) -> int:
        return len(self._memtable) + sum(
            t.n_entries for level in self.levels for t in level
        )

    def filter_memory_bytes(self) -> int:
        return sum(t.filter_memory_bytes() for level in self.levels for t in level)

    def table_count(self) -> int:
        return sum(len(level) for level in self.levels)

    def info(self) -> dict[str, Any]:
        """JSON-ready engine counters (the per-shard STATS payload)."""
        io = self.io
        reads, hits = io.block_reads, io.cache_hits
        probes, negatives = io.filter_probes, io.filter_negatives
        return {
            "entries": self.total_entries(),
            "tables": self.table_count(),
            "last_seq": self.last_seq,
            "block_reads": reads,
            "cache_hits": hits,
            "cache_hit_rate": hits / (reads + hits) if reads + hits else 0.0,
            "filter_probes": probes,
            "filter_negatives": negatives,
            "filter_hit_rate": negatives / probes if probes else 0.0,
        }
