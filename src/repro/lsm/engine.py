"""A leveled LSM-tree storage engine (Section 4.2), durable or simulated.

The architecture mirrors Figure 4.2 with the LevelDB lifecycle: writes
land in a *mutable* memtable; at capacity the memtable **freezes** into
an immutable list; a flusher turns immutable memtables into level-0
SSTables; compaction merges runs downward so that every level >= 1
holds disjoint key ranges.  The memtable is a gapped, batch-updatable
B+tree (:mod:`repro.trees.gapped_btree`) by default — a WAL group
commit applies as one vectorized batch insert, its copy-on-write node
states keep lock-free point reads safe, and flushes emit its leaves
already in key order (``memtable_factory`` swaps in the plain-dict
baseline, :class:`DictMemtable`).  A block cache (CLOCK) approximates
RocksDB's block cache + OS page cache; fence indexes and filters live
in the always-resident table cache.

Query execution follows the Figure 4.3 flowcharts, and performance is
reported as simulated I/Os: every block fetch that misses the cache
costs one I/O.

Two execution modes share the state machine:

* **inline** (``background=False``, the default): freeze, flush and
  compaction all run synchronously on the writer's thread — fully
  deterministic, which the kill-at-every-sync-point matrix and the
  differential fuzzer rely on;
* **background** (``background=True``): a flusher thread and a
  compaction thread do the heavy lifting while writers only pay for
  the WAL append and a memtable insert.  Backpressure replaces inline
  blocking: crossing ``l0_slowdown`` L0 tables injects a small sleep
  per write, and crossing ``l0_stall`` (or piling up
  ``max_immutables`` frozen memtables) stalls the writer until the
  background threads catch up — both are counted and exported via
  :meth:`LSMTree.info`.

Two storage modes also share all of it:

* **in-memory** (``path=None``): SSTables live on the heap, I/O is
  simulated — the original reproduction substrate;
* **durable** (``path=...``): writes are sequenced through a
  write-ahead log with batched fsync (group commit), flushes and
  compactions write CRC-framed table files and commit them through a
  versioned manifest (write-temp → sync → rename), and
  :meth:`LSMTree.open` recovers exactly the last acknowledged state —
  a write is acknowledged once its WAL record is fsynced
  (``seq <= last_acked_seq``).

**Snapshots.**  Every write is stamped with a sequence number;
:meth:`LSMTree.snapshot` pins the current one and returns a
:class:`Snapshot` whose reads see exactly the pinned state while
flushes and compactions proceed underneath.  Consistency comes from
two mechanisms: the memtable stack (mutable + immutables) is merged
into one frozen dict at pin time, and the table layout is captured as
a refcounted :class:`_Version` — compaction installs a *new* version
instead of mutating the old one, and a replaced table's blocks are
evicted and its file unlinked only when the last version referencing
it is released (which is what keeps the §7 mmap views in DESIGN.md
valid for iterators that outlive a compaction).

Crash-safety invariants the recovery tests machine-check:

1. a table file is always fully written and fsynced before any
   manifest references it;
2. the manifest version switch (CURRENT rename) is the only commit
   point — a crash on either side leaves a consistent old/new state;
3. a WAL segment is deleted only after the manifest that supersedes it
   is installed, and a memtable's segment is fsynced *before* the next
   segment is created, so the live segments always replay to a gap-free
   sequence prefix;
4. recovery garbage-collects every file the current manifest does not
   reference, so half-installed flushes and orphaned compaction
   outputs cannot resurrect.
"""

from __future__ import annotations

import heapq
import threading
import time
from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator, Sequence

from ..compact.node_cache import ClockNodeCache
from ..trees.gapped_btree import GappedBPlusTree
from . import manifest as manifest_mod
from . import wal as wal_mod
from .fs import FileSystem, OsFileSystem, join
from .manifest import ManifestState
from .sstable import (
    DEFAULT_BLOCK_ENTRIES,
    DiskSSTable,
    SSTable,
    SSTableBase,
    TOMBSTONE,
    table_file_name,
    write_sstable,
)


class IoStats:
    """Simulated I/O and filter-probe counters."""

    __slots__ = ("block_reads", "cache_hits", "filter_probes", "filter_negatives")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.block_reads = 0
        self.cache_hits = 0
        #: Point-read probes against a per-table filter, and how many
        #: proved the table could not hold the key (I/O avoided) — the
        #: serving layer reports these as the filter hit rate.
        self.filter_probes = 0
        self.filter_negatives = 0


class DictMemtable:
    """The pre-gapped reference memtable: a plain dict, sorted at
    flush time.

    Kept as a ``memtable_factory`` option so benchmarks can compare
    the gapped write path against the baseline it replaced, and as the
    minimal example of the memtable protocol: ``put`` / ``put_many``,
    mapping reads (``in`` / ``[]`` must be safe without the engine
    lock), *sorted* ``items()``, ``len``, and ``freeze_view`` returning
    an immutable snapshot for pinned scans.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: dict[bytes, Any] = {}

    def put(self, key: bytes, value: Any) -> None:
        self._data[key] = value

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        for key, value in pairs:
            self._data[key] = value

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __getitem__(self, key: bytes) -> Any:
        return self._data[key]

    def get(self, key: bytes, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[bytes]:
        return iter(sorted(self._data))

    def items(self) -> Iterator[tuple[bytes, Any]]:
        return iter(sorted(self._data.items()))

    def freeze_view(self) -> dict[bytes, Any]:
        return dict(self._data)


_MISSING = object()


class GappedMemtable:
    """The engine's memtable: a gapped B+tree paired with a dict
    mirror.

    Two structures hold the same live entries and split the work by
    access pattern:

    * the **mirror dict** serves every point read (one GIL-atomic hash
      probe — exactly what the pre-gapped baseline paid) and is the
      authoritative entry count;
    * the **gapped tree** serves everything ordered — flushes read its
      leaves already in key order (no sort step, unlike the dict
      baseline's sort-at-flush), and pinned scans get its
      copy-on-write ``freeze_view``.

    Writes update the mirror at dict speed and accumulate in a small
    *fresh* delta dict that drains into the tree as one vectorized
    ``put_many`` when it fills; batches at least as large as the drain
    limit skip the delta and go straight to the tree.  Either way the
    tree cost is an amortized share of one batch insert per key, not a
    full tree insert per key.  ``dict.update`` applies pairs in order,
    so last-write-wins within a batch holds in both structures.

    Concurrency: writers mutate only under the engine lock; lock-free
    readers touch only the mirror, whose dict ops are GIL-atomic.
    Order-sensitive consumers (``items``, ``keys``, ``freeze_view``)
    drain the delta first; the engine calls them under its lock or
    from the sole flusher thread that owns a sealed memtable, so the
    drain never races a writer.  Memory cost of the pairing is one
    dict slot per entry on top of the tree's leaf slot — bounded by
    the memtable size, and the mirror is dropped with the memtable at
    flush.
    """

    __slots__ = ("_tree", "_mirror", "_fresh", "_limit")

    def __init__(self, drain_limit: int = 256) -> None:
        self._tree = GappedBPlusTree()
        self._mirror: dict[bytes, Any] = {}
        self._fresh: dict[bytes, Any] = {}
        self._limit = drain_limit

    def _drain(self) -> None:
        if self._fresh:
            self._tree.put_many(list(self._fresh.items()))
            self._fresh.clear()

    def put(self, key: bytes, value: Any) -> None:
        self._mirror[key] = value
        self._fresh[key] = value
        if len(self._fresh) >= self._limit:
            self._drain()

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        self._mirror.update(pairs)
        if len(pairs) < self._limit:
            self._fresh.update(pairs)
            if len(self._fresh) >= self._limit:
                self._drain()
        elif self._fresh:
            # Fresh writes are older than the batch: prepend so
            # last-write-wins resolves in arrival order.
            self._tree.put_many(list(self._fresh.items()) + list(pairs))
            self._fresh.clear()
        else:
            self._tree.put_many(pairs)

    def __contains__(self, key: bytes) -> bool:
        return key in self._mirror

    def __getitem__(self, key: bytes) -> Any:
        return self._mirror[key]

    def get(self, key: bytes, default: Any = None) -> Any:
        return self._mirror.get(key, default)

    def __len__(self) -> int:
        return len(self._mirror)

    def keys(self) -> Iterator[bytes]:
        self._drain()
        return self._tree.keys()

    def items(self) -> Iterator[tuple[bytes, Any]]:
        self._drain()
        return self._tree.items()

    def freeze_view(self):
        self._drain()
        return self._tree.freeze_view()


def default_memtable() -> GappedMemtable:
    """The engine's memtable: a gapped B+tree paired with a dict
    mirror, so point reads cost one hash probe, WAL group commits
    apply as amortized vectorized ``put_many`` drains, and flushes
    emit the tree's leaves already sorted (no sort step)."""
    return GappedMemtable()


class _Version:
    """One immutable table layout, shared by reference counting.

    ``levels[0]`` is newest-first and may overlap; ``levels[i >= 1]``
    are sorted by ``min_key`` with disjoint ranges.  The engine holds
    one baseline reference on the current version; every pinned read,
    snapshot, and in-flight scan holds another.  When the count drops
    to zero the version releases its per-table references, and a table
    whose own count reaches zero is actually dropped (cache eviction +
    unlink + close) — never sooner, so a reader that pinned before a
    compaction keeps valid mmap views of the replaced tables.
    """

    __slots__ = ("levels", "refs")

    def __init__(self, levels: list[list[SSTableBase]]) -> None:
        self.levels = levels
        self.refs = 1

    def tables(self) -> Iterator[SSTableBase]:
        for level in self.levels:
            yield from level


class _Frozen:
    """An immutable memtable waiting for the flusher.

    Owns the WAL segment its records were logged to (already fully
    fsynced at freeze time), so recovery can replay it until the flush
    commits and the segment is deleted.
    """

    __slots__ = ("data", "last_seq", "wal", "wal_name", "wal_index")

    def __init__(self, data, last_seq, wal, wal_name, wal_index) -> None:
        #: The sealed memtable object (no writer touches it again), so
        #: its mapping reads and sorted ``items()`` are safe lock-free.
        self.data = data
        self.last_seq = last_seq
        self.wal: wal_mod.WalWriter | None = wal
        self.wal_name = wal_name
        self.wal_index = wal_index


class _View:
    """A pinned, consistent read context: memtable layers (newest
    first) plus one referenced :class:`_Version` of the table layout."""

    __slots__ = ("mems", "version", "seq", "_merged")

    def __init__(self, mems: list, version: _Version, seq: int) -> None:
        self.mems = mems
        self.version = version
        self.seq = seq
        self._merged: dict[bytes, Any] | None = None

    @property
    def levels(self) -> list[list[SSTableBase]]:
        return self.version.levels

    def merged(self) -> dict[bytes, Any]:
        """Newest-wins merge of the memtable layers (tombstones kept).

        Only safe on views whose layer dicts are frozen (snapshot
        views, or ephemeral views pinned with ``copy_mem=True``).
        """
        if self._merged is None:
            m: dict[bytes, Any] = {}
            for layer in reversed(self.mems):
                m.update(layer.items())
            self._merged = m
        return self._merged


class Snapshot:
    """A consistent point-in-time read view (``seq`` is the pin).

    Reads see exactly the writes with sequence number <= ``seq`` —
    no more, no less — while flushes and compactions proceed
    underneath.  Holds one reference on the pinned version, so no
    table it can read is unlinked until :meth:`release` (context
    manager exit releases too).
    """

    def __init__(self, engine: "LSMTree", seq: int, mem: dict, version: _Version):
        self._engine = engine
        self.seq = seq
        self._view = _View([mem], version, seq)
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the pin (idempotent).  Tables only this snapshot kept
        alive become droppable the moment this returns."""
        if self._released:
            return
        self._released = True
        self._engine._release_snapshot(self._view)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def _check(self) -> _View:
        if self._released:
            raise ValueError("snapshot already released")
        return self._view

    def get(self, key: bytes) -> Any | None:
        return self._engine._get_in(self._check(), key)

    def get_many(self, keys: Sequence[bytes]) -> list[Any]:
        return self._engine._get_many_in(self._check(), keys)

    def seek(self, low: bytes, high: bytes | None = None):
        return self._engine._seek_in(self._check(), low, high)

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        return self._engine._scan_in(self._check(), low, count)

    def count(self, low: bytes, high: bytes) -> int:
        return self._engine._count_in(self._check(), low, high)

    # -- snapshot shipping (cluster resync / migration) --------------------

    def table_layout(self) -> list[list[tuple[int, str]]]:
        """The pinned version's level layout as ``(table_id, path)``
        pairs (level 0 newest-first).  Because this snapshot holds a
        reference on the version, every named file stays on disk —
        un-unlinked even across compactions — until :meth:`release`,
        which is exactly the window a resync sender needs to read the
        bytes it announced."""
        view = self._check()
        return [
            [(table.table_id, table.path) for table in level]
            for level in view.levels
        ]

    def mem_items(self) -> list[tuple[bytes, Any]]:
        """The merged memtable content at the pin, sorted by key, with
        tombstones preserved — ready to be written out as one synthetic
        newest-first L0 SSTable so a shipped snapshot is nothing but
        SSTables plus a manifest."""
        return sorted(self._check().merged().items())


class LSMTree:
    """Log-structured merge tree with pluggable per-table filters."""

    def __init__(
        self,
        memtable_entries: int = 512,
        sstable_entries: int = 4096,
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        level0_limit: int = 4,
        level_fanout: int = 10,
        block_cache_blocks: int = 128,
        filter_factory: Callable | None = None,
        path: str | None = None,
        fs: FileSystem | None = None,
        wal_sync_every: int = 32,
        background: bool = False,
        max_immutables: int = 2,
        l0_slowdown: int | None = None,
        l0_stall: int | None = None,
        slowdown_sleep: float = 0.001,
        memtable_factory: Callable[[], Any] | None = None,
        wal_observer: Callable[[list[tuple[int, bytes]]], None] | None = None,
    ) -> None:
        #: Memtable protocol (see :class:`DictMemtable`): the default
        #: gapped B+tree makes ``write_batch`` a single vectorized
        #: apply and flushes sort-free; reads on the live memtable are
        #: lock-free because its node states are copy-on-write.
        self._memtable_factory = memtable_factory or default_memtable
        self._memtable = self._memtable_factory()
        self._memtable_entries = memtable_entries
        self._sstable_entries = sstable_entries
        self._block_entries = block_entries
        self._level0_limit = level0_limit
        self._level_fanout = level_fanout
        self._filter_factory = filter_factory
        self._version = _Version([[]])
        self._immutables: list[_Frozen] = []
        self._block_cache = ClockNodeCache(block_cache_blocks)
        self.io = IoStats()
        #: Engine-scoped table-id allocator (persisted via the manifest
        #: in durable mode, so recovered engines never reuse an id).
        self._next_table_id = 0
        #: Monotonic write sequence; every put/delete gets the next one.
        self._seq = 0
        #: Last sequence actually applied to the memtable — the pin
        #: point snapshots capture (== _seq between writes).
        self._visible_seq = 0
        #: Every seq <= this is covered by installed SSTables.
        self._flushed_seq = 0
        #: Every seq <= this is known durable via a *committed* manifest
        #: install or a full freeze-time segment sync — the conservative
        #: floor of the ack watermark.
        self._acked_floor = 0

        #: One lock guards memtable swaps, version installs, manifest
        #: writes, refcounts, and the backpressure counters; the
        #: condition signals flusher/compactor work and stall clears.
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)

        self._background = background
        self._max_immutables = max(1, max_immutables)
        self._l0_slowdown = (
            l0_slowdown if l0_slowdown is not None else level0_limit * 2
        )
        self._l0_stall = l0_stall if l0_stall is not None else level0_limit * 4
        self._slowdown_sleep = slowdown_sleep
        #: Backpressure + lifecycle counters (exported via info()).
        self.stall_count = 0
        self.slowdown_count = 0
        self.stall_seconds = 0.0
        self.flush_count = 0
        self.compaction_count = 0
        self._snapshots_live = 0
        self._bg_error: BaseException | None = None

        self.path = path
        self._fs = fs if fs is not None else (OsFileSystem() if path else None)
        self._wal: wal_mod.WalWriter | None = None
        self._wal_sync_every = wal_sync_every
        #: Commit observer threaded into every WAL segment (replication
        #: tap — see the ``wal`` module docstring for the contract).
        self._wal_observer = wal_observer
        self._wal_index = 0
        self._wal_name = ""
        self._manifest_version = 0
        self._closed = False
        if path is not None:
            self._open_durable()

        self._flusher: threading.Thread | None = None
        self._compactor: threading.Thread | None = None
        if background:
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="lsm-flusher", daemon=True
            )
            self._compactor = threading.Thread(
                target=self._compactor_loop, name="lsm-compactor", daemon=True
            )
            self._flusher.start()
            self._compactor.start()

    @classmethod
    def open(cls, path: str, fs: FileSystem | None = None, **config) -> "LSMTree":
        """Open (or create) a durable engine at ``path``, recovering to
        exactly the last acknowledged state after any crash."""
        return cls(path=path, fs=fs, **config)

    # -- level layout (compat view) ------------------------------------------------

    @property
    def levels(self) -> list[list[SSTableBase]]:
        """The current version's table layout.

        Callers must treat it as read-only: mutations install a fresh
        :class:`_Version` so pinned readers keep a consistent view.
        """
        return self._version.levels

    # -- durability: open / recover ------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.path is not None

    @property
    def fs(self) -> FileSystem | None:
        """The backing filesystem (None for pure in-memory engines).
        Snapshot shipping reads pinned table bytes through this."""
        return self._fs

    @property
    def background(self) -> bool:
        return self._background

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent accepted write."""
        return self._seq

    @property
    def last_acked_seq(self) -> int:
        """Writes with seq <= this are guaranteed to survive a crash.

        In-memory engines have no durability, so every accepted write
        counts as acknowledged.  In durable mode a write is acked by a
        WAL group-commit fsync, a freeze-time segment sync, or a
        committed manifest install — never by work still in flight:
        during a flush the watermark stays at its pre-flush value until
        the CURRENT rename lands, because only that rename makes the
        new SSTable reachable by recovery.
        """
        if self._wal is None:
            return self._seq
        return max(self._acked_floor, self._wal.synced_seq)

    def _open_durable(self) -> None:
        fs, path = self._fs, self.path
        fs.mkdir(path)
        state = manifest_mod.load_current(fs, path)
        if state is not None:
            self._recover(state)
        else:
            self._start_wal(1)
            self._install_manifest()
        self._collect_garbage()

    def _live_wal_segments(self, state: ManifestState) -> list[tuple[int, str]]:
        """WAL segments recovery must replay: every on-disk segment with
        index >= the manifest's, oldest first.  More than one exists
        when the engine froze memtables (rotating the WAL) faster than
        the flusher committed them."""
        segments = []
        for name in self._fs.listdir(self.path):
            if name.startswith("wal-") and name.endswith(".log"):
                try:
                    index = int(name[4:-4])
                except ValueError:
                    continue
                if index >= state.wal_index:
                    segments.append((index, name))
        return sorted(segments)

    def _recover(self, state: ManifestState) -> None:
        fs, path = self._fs, self.path
        self._manifest_version = state.version
        self._next_table_id = state.next_table_id
        self._seq = self._visible_seq = state.last_seq
        self._flushed_seq = self._acked_floor = state.last_seq
        self._version = _Version(
            [
                [
                    # Passing the manifest's table id makes construction
                    # zero-I/O: the footer and filter load lazily on first
                    # access, so open time is O(1) per table.
                    DiskSSTable(
                        fs,
                        join(path, table_file_name(tid)),
                        filter_factory=self._filter_factory,
                        table_id=tid,
                    )
                    for tid in level
                ]
                for level in state.levels
            ]
            or [[]]
        )
        for table in self._version.tables():
            table._engine_refs = 1
        # Replay the live WAL segments oldest-first into the memtable.
        # A frozen segment is fully fsynced before its successor is
        # created, so a torn frame can only be the newest segment's
        # unacknowledged tail — replay stops there.  A sequence gap
        # between segments would mean records beyond a torn point; stop
        # at the gap for the same reason (nothing past it was acked).
        segments = self._live_wal_segments(state)
        max_index = max((i for i, _ in segments), default=state.wal_index)
        records: list[tuple[int, bytes, Any]] = []
        prev_seq = None
        for _, name in segments:
            for seq, key, value in wal_mod.replay(fs, join(path, name)):
                if prev_seq is not None and seq != prev_seq + 1:
                    break
                prev_seq = seq
                records.append((seq, key, value))
            else:
                continue
            break
        self._start_wal(max_index + 1)
        for seq, key, value in records:
            if seq <= state.last_seq:
                continue  # already covered by an installed SSTable
            self._memtable.put(key, value)
            self._seq = max(self._seq, seq)
            # Re-log into the fresh segment so recovered writes stay
            # durable once the old segments are garbage-collected.
            if value is TOMBSTONE:
                self._wal.append_delete(seq, key)
            else:
                self._wal.append_put(seq, key, value)
        self._visible_seq = self._seq
        self._wal.sync()
        self._install_manifest()

    def _start_wal(self, index: int) -> None:
        self._wal_index = index
        self._wal_name = wal_mod.wal_file_name(index)
        self._wal = wal_mod.WalWriter(
            self._fs,
            join(self.path, self._wal_name),
            self._wal_sync_every,
            observer=self._wal_observer,
        )
        # The fresh segment starts at the current sequence but claims
        # nothing durable: until the manifest that pairs with it is
        # installed, recovery still runs from the previous segment.
        self._wal.last_seq = self._seq
        self._wal.synced_seq = 0

    def _install_manifest(self) -> None:
        """Write + atomically install the next manifest version.

        Caller holds the lock in background mode.  The WAL pointer
        names the *oldest* live segment: the oldest unflushed frozen
        memtable's, or the mutable memtable's when nothing is frozen —
        recovery replays every segment from there upward.
        """
        if self._immutables:
            wal_name = self._immutables[0].wal_name
            wal_index = self._immutables[0].wal_index
        else:
            wal_name, wal_index = self._wal_name, self._wal_index
        self._manifest_version += 1
        state = ManifestState(
            version=self._manifest_version,
            next_table_id=self._next_table_id,
            last_seq=self._flushed_seq,
            wal_name=wal_name,
            wal_index=wal_index,
            levels=[[t.table_id for t in level] for level in self._version.levels],
        )
        manifest_mod.install(self._fs, self.path, state)
        # The superseded manifest is garbage now that CURRENT moved on.
        old = join(self.path, manifest_mod.manifest_file_name(self._manifest_version - 1))
        if self._fs.exists(old):
            self._fs.remove(old)

    def _collect_garbage(self) -> None:
        """Remove every file the installed manifest does not reference."""
        referenced = {
            manifest_mod.CURRENT,
            manifest_mod.manifest_file_name(self._manifest_version),
            self._wal_name,
        }
        for frozen in self._immutables:
            referenced.add(frozen.wal_name)
        for table in self._version.tables():
            referenced.add(table_file_name(table.table_id))
        for name in self._fs.listdir(self.path):
            if name not in referenced:
                self._fs.remove(join(self.path, name))

    def sync(self) -> None:
        """Force the WAL durability barrier (acknowledge everything)."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        """Sync and release the WAL; the engine must not be used after.

        Background threads are stopped and joined first.  Frozen
        memtables not yet flushed are left to WAL recovery: their
        segments were fully fsynced at freeze time, so nothing acked is
        lost.  Idempotent: a second ``close()`` is a no-op, which the
        server's drain path relies on (a shard may be closed by the
        worker and again by the shutdown sweep)."""
        if self._closed:
            return
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for thread in (self._flusher, self._compactor):
            if thread is not None and thread.is_alive():
                thread.join(timeout=10.0)
        try:
            for frozen in self._immutables:
                if frozen.wal is not None:
                    frozen.wal.close()
            if self._wal is not None:
                self._wal.close()
        finally:
            for table in self._version.tables():
                table.close()

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- version / table lifecycle -------------------------------------------------

    def _install_version(self, levels: list[list[SSTableBase]]) -> _Version:
        """Swap in a new table layout (caller holds the lock).

        Tables joining gain a reference.  The *old* version is returned
        still holding the engine's baseline reference: the caller must
        :meth:`_release_version` it — **after** installing the manifest
        that stops referencing the replaced tables, because releasing
        is what may unlink their files (crash invariant 2: the old
        manifest must stay fully readable until CURRENT moves on).
        """
        new = _Version(levels)
        for table in new.tables():
            table._engine_refs = getattr(table, "_engine_refs", 0) + 1
        old = self._version
        self._version = new
        return old

    def _release_version(self, version: _Version) -> None:
        version.refs -= 1
        if version.refs == 0:
            for table in version.tables():
                table._engine_refs -= 1
                if table._engine_refs == 0:
                    self._drop_table(table)

    def _drop_table(self, table: SSTableBase) -> None:
        """Physically drop a table nothing references anymore: evict
        its cached blocks, unlink the file, release the mapping."""
        for idx in range(table.n_blocks):
            self._block_cache.evict((table.table_id, idx))
        if self.durable and not self._closed:
            try:
                self._fs.remove(table.path)
            except Exception:
                # Already gone, or a frozen fault-injection fs refusing
                # access post-crash; the orphan is GC'd at the next open.
                pass
        # Release the mapping after the unlink.  Outstanding views (a
        # filter someone still holds, a block mid-decode) keep the
        # pages alive on POSIX; close() tolerates them.
        table.close()

    def _pin(self, copy_mem: bool = False) -> _View:
        """Pin a consistent read context.  ``copy_mem=True`` freezes
        the mutable layer too (required by any read that *iterates*
        the memtable while a writer may be inserting)."""
        with self._lock:
            version = self._version
            version.refs += 1
            mems = [self._memtable.freeze_view() if copy_mem else self._memtable]
            for frozen in reversed(self._immutables):
                mems.append(frozen.data)
            return _View(mems, version, self._visible_seq)

    def _unpin(self, view: _View) -> None:
        with self._lock:
            self._release_version(view.version)

    def snapshot(self) -> Snapshot:
        """Pin the current sequence number and return a consistent
        point-in-time :class:`Snapshot` (release it when done)."""
        with self._lock:
            version = self._version
            version.refs += 1
            merged: dict[bytes, Any] = {}
            for frozen in self._immutables:
                merged.update(frozen.data.items())
            merged.update(self._memtable.items())
            self._snapshots_live += 1
            return Snapshot(self, self._visible_seq, merged, version)

    def _release_snapshot(self, view: _View) -> None:
        with self._lock:
            self._snapshots_live -= 1
            self._release_version(view.version)

    # -- write path --------------------------------------------------------------

    def _check_bg_error(self) -> None:
        err = self._bg_error
        if err is not None:
            raise err

    def _apply_backpressure(self) -> None:
        """Slowdown/stall gate for background mode (writer thread).

        Mirrors LevelDB's write controller: too many L0 tables injects
        a small sleep per write (compaction debt grows read
        amplification); a full immutable list or an L0 pile-up past the
        stall trigger blocks the writer until the background threads
        drain — bounded, counted, and surfaced in :meth:`info`.
        """
        self._check_bg_error()
        with self._cond:
            stalled = (
                len(self._immutables) >= self._max_immutables
                or len(self._version.levels[0]) >= self._l0_stall
            )
            if not stalled:
                slow = len(self._version.levels[0]) >= self._l0_slowdown
            else:
                self.stall_count += 1
                started = time.perf_counter()
                while not self._closed and self._bg_error is None and (
                    len(self._immutables) >= self._max_immutables
                    or len(self._version.levels[0]) >= self._l0_stall
                ):
                    self._cond.wait(timeout=0.05)
                self.stall_seconds += time.perf_counter() - started
                self._check_bg_error()
                return
        if slow:
            self.slowdown_count += 1
            time.sleep(self._slowdown_sleep)

    def put(self, key: bytes, value: Any) -> None:
        if self._background:
            self._apply_backpressure()
        self._seq += 1
        if self._wal is not None:
            self._wal.append_put(self._seq, key, value)
        with self._lock:
            self._memtable.put(key, value)
            self._visible_seq = self._seq
        self._maybe_freeze()

    def delete(self, key: bytes) -> None:
        if self._background:
            self._apply_backpressure()
        self._seq += 1
        if self._wal is not None:
            self._wal.append_delete(self._seq, key)
        with self._lock:
            self._memtable.put(key, TOMBSTONE)
            self._visible_seq = self._seq
        self._maybe_freeze()

    def write_batch(self, entries: Sequence[tuple[bytes, Any]]) -> int:
        """Apply a mixed put/delete batch as one acknowledgement unit.

        ``entries`` are ``(key, value)`` pairs applied in order, with
        ``value is TOMBSTONE`` marking a delete.  In durable mode every
        record rides a *single* WAL group commit — one fsync covers the
        whole batch, so when this returns the batch is fully
        acknowledged (``last_acked_seq`` covers its final sequence
        number) and a crash can never split it from the caller's point
        of view.  The memtable is updated in one pass (under the lock,
        so a snapshot sees all of the batch or none of it) and the
        freeze check runs once, after the batch.

        Returns the sequence number of the batch's final record — the
        causal token the server hands back in write acks so clients can
        demand read-your-writes from a replication follower.
        """
        entries = list(entries)
        if not entries:
            return self._seq
        if self._background:
            self._apply_backpressure()
        records = []
        seq = self._seq
        for key, value in entries:
            seq += 1
            records.append((seq, key, value))
        if self._wal is not None:
            # append_batch encodes everything before appending, so a
            # TypeError from the value codec leaves WAL and seq intact.
            self._wal.append_batch(records)
        self._seq = seq
        with self._lock:
            # One vectorized apply: the whole group commit lands in the
            # gapped memtable as a single batch insert (last write wins
            # within the batch, same as the sequential dict loop).
            self._memtable.put_many([(key, value) for _, key, value in records])
            self._visible_seq = seq
        self._maybe_freeze()
        return seq

    def put_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        """Batch :meth:`put`: one WAL group commit, one freeze check."""
        self.write_batch(pairs)

    def delete_many(self, keys: Sequence[bytes]) -> None:
        """Batch :meth:`delete`: one WAL group commit, one freeze check."""
        self.write_batch([(key, TOMBSTONE) for key in keys])

    def _maybe_freeze(self) -> None:
        if len(self._memtable) < self._memtable_entries:
            return
        if self._background:
            self._freeze()
        else:
            self.flush_memtable()

    def _freeze(self) -> None:
        """Seal the mutable memtable into the immutable list (writer
        thread, background mode) and hand it to the flusher.

        Ordering is the crash-safety crux: the old WAL segment is
        fsynced *before* the new one is created, so (a) every frozen
        record is acknowledged at freeze time, and (b) the on-disk
        segments never hold a sequence gap — a torn frame can only be
        the newest segment's unsynced tail.
        """
        if not len(self._memtable):
            return
        old_wal, old_name, old_index = self._wal, self._wal_name, self._wal_index
        if old_wal is not None:
            old_wal.sync()  # durability point: frozen records are acked
        # Rotation and registration are one atomic step under the lock:
        # a concurrent flush commit must never compute its manifest WAL
        # pointer between the new segment appearing and the frozen
        # memtable (which still owns the old segment) being listed.
        with self._cond:
            if old_wal is not None:
                self._start_wal(self._wal_index + 1)
            frozen = _Frozen(
                self._memtable, self._visible_seq, old_wal, old_name, old_index
            )
            self._immutables.append(frozen)
            self._memtable = self._memtable_factory()
            if old_wal is not None:
                self._acked_floor = max(self._acked_floor, old_wal.synced_seq)
            self._cond.notify_all()

    def flush_memtable(self) -> None:
        """Flush the memtable through to L0.

        Inline mode runs the whole freeze → flush → compact pipeline
        synchronously (the deterministic path every recovery test
        drives).  Background mode freezes and then *waits* for the
        flusher to drain — used by tests and the fuzzer's ``merge`` op
        to force a table boundary.
        """
        if self._background:
            self._freeze()
            with self._cond:
                while self._immutables and self._bg_error is None:
                    self._cond.wait(timeout=0.05)
            self._check_bg_error()
            return
        if not len(self._memtable):
            return
        # The memtable iterates in key order (gapped tree: leaves in
        # directory order), so the L0 table needs no sort pass.
        pairs = list(self._memtable.items())
        if self.durable:
            table: SSTableBase = self._write_table(pairs)
            with self._lock:
                levels = [list(level) for level in self._version.levels]
                levels[0].insert(0, table)
                old_wal = self._wal
                flush_seq = self._seq
                acked_before = self.last_acked_seq
                self._start_wal(self._wal_index + 1)
                self._flushed_seq = flush_seq
                self._memtable = self._memtable_factory()
                old_version = self._install_version(levels)
                self._install_manifest()
                self._release_version(old_version)
                # The CURRENT rename just committed: every write the new
                # table covers is durable now (and not one moment sooner).
                self._acked_floor = max(acked_before, flush_seq)
            # Only now is the old segment redundant (invariant 3).
            old_wal.abandon()
            self._fs.remove(old_wal.path)
        else:
            with self._lock:
                levels = [list(level) for level in self._version.levels]
                levels[0].insert(0, self._make_table(pairs))
                self._memtable = self._memtable_factory()
                self._release_version(self._install_version(levels))
        self.flush_count += 1
        self._maybe_compact()

    def _alloc_table_id(self) -> int:
        with self._lock:
            tid = self._next_table_id
            self._next_table_id += 1
            return tid

    def _make_table(self, pairs) -> SSTable:
        return SSTable(
            pairs,
            block_entries=self._block_entries,
            filter_factory=self._filter_factory,
            table_id=self._alloc_table_id(),
        )

    def _write_table(self, pairs) -> DiskSSTable:
        """Write one durable table file (fsynced before it returns)."""
        tid = self._alloc_table_id()
        file_path = join(self.path, table_file_name(tid))
        write_sstable(
            self._fs,
            file_path,
            pairs,
            tid,
            block_entries=self._block_entries,
            filter_factory=self._filter_factory,
        )
        return DiskSSTable(
            self._fs, file_path, filter_factory=self._filter_factory, table_id=tid
        )

    # -- background threads ---------------------------------------------------------

    def _flusher_loop(self) -> None:
        """Turn frozen memtables into L0 tables, oldest first."""
        while True:
            with self._cond:
                while not self._immutables and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return  # pending immutables recover from their WALs
                frozen = self._immutables[0]
            try:
                self._flush_frozen(frozen)
            except BaseException as exc:  # noqa: BLE001 — surfaced to writers
                with self._cond:
                    self._bg_error = exc
                    self._cond.notify_all()
                return

    def _flush_frozen(self, frozen: _Frozen) -> None:
        """Flush one frozen memtable (flusher thread).

        The table write runs outside the lock (the frozen dict is
        immutable); the commit — L0 insert, manifest install, ack-floor
        raise, WAL retirement — happens under it.
        """
        pairs = list(frozen.data.items())
        table = self._write_table(pairs) if self.durable else self._make_table(pairs)
        with self._cond:
            levels = [list(level) for level in self._version.levels]
            levels[0].insert(0, table)
            old_version = self._install_version(levels)
            self._immutables.pop(0)
            if self.durable:
                self._flushed_seq = max(self._flushed_seq, frozen.last_seq)
                self._install_manifest()
                self._acked_floor = max(self._acked_floor, frozen.last_seq)
            self._release_version(old_version)
            self.flush_count += 1
            self._cond.notify_all()
        # Only now is the frozen segment redundant (invariant 3).
        if self.durable and frozen.wal is not None:
            frozen.wal.abandon()
            try:
                self._fs.remove(frozen.wal.path)
            except FileNotFoundError:
                pass

    def _compactor_loop(self) -> None:
        """Leveled background compaction, lowest overflowing level first."""
        while True:
            with self._cond:
                while not self._closed and self._pick_compaction_level() is None:
                    self._cond.wait()
                if self._closed:
                    return
                level = self._pick_compaction_level()
            try:
                if level is not None:
                    self._compact_level(level)
            except BaseException as exc:  # noqa: BLE001 — surfaced to writers
                with self._cond:
                    self._bg_error = exc
                    self._cond.notify_all()
                return

    # -- compaction -----------------------------------------------------------------

    def _level_limit(self, level: int) -> int:
        if level == 0:
            return self._level0_limit
        return self._level0_limit * (self._level_fanout ** level)

    def _pick_compaction_level(self) -> int | None:
        for i, level in enumerate(self._version.levels):
            if len(level) > self._level_limit(i):
                return i
        return None

    def _maybe_compact(self) -> None:
        """Inline-mode compaction driver (runs on the writer thread)."""
        while True:
            level = self._pick_compaction_level()
            if level is None:
                return
            self._compact_level(level)

    def _compact_level(self, level: int) -> None:
        """Merge one level's overflow into the next level.

        Source selection happens under the lock; the merge and the
        table writes run outside it (sources stay alive — they are
        referenced by the current version, and only this thread removes
        tables from levels >= 1 while the flusher only *prepends* to
        L0).  The commit re-reads the current layout, so L0 tables the
        flusher added mid-merge survive untouched.
        """
        with self._lock:
            cur = self._version.levels
            if level == 0:
                sources = list(cur[0])
            else:
                sources = [cur[level][0]]
            lo = min(t.min_key for t in sources)
            hi = max(t.max_key for t in sources)
            next_level = cur[level + 1] if level + 1 < len(cur) else []
            overlapping = [t for t in next_level if t.overlaps(lo, hi)]
            # Tombstones drop when the output lands on the bottom level.
            drop_tombstones = len(cur) <= level + 2
        merged = self._merge_tables(sources, overlapping, drop_tombstones)
        make = self._write_table if self.durable else self._make_table
        new_tables = [
            make(merged[i : i + self._sstable_entries])
            for i in range(0, len(merged), self._sstable_entries)
        ]
        source_ids = {t.table_id for t in sources}
        overlap_ids = {t.table_id for t in overlapping}
        with self._cond:
            levels = [list(lvl) for lvl in self._version.levels]
            while len(levels) < level + 2:
                levels.append([])
            levels[level] = [t for t in levels[level] if t.table_id not in source_ids]
            keep = [t for t in levels[level + 1] if t.table_id not in overlap_ids]
            levels[level + 1] = sorted(keep + new_tables, key=lambda t: t.min_key)
            old_version = self._install_version(levels)
            if self.durable:
                self._install_manifest()
            self._release_version(old_version)
            self.compaction_count += 1
            self._cond.notify_all()
        # The replaced tables left the current version; their blocks are
        # evicted and files unlinked when the last snapshot/iterator
        # holding the old version releases it (possibly just now).

    def _merge_tables(
        self, newer: list[SSTableBase], older: list[SSTableBase], drop_tombstones: bool
    ) -> list[tuple[bytes, Any]]:
        """Newest-wins merge of runs (``newer`` is newest-first)."""
        merged: dict[bytes, Any] = {}
        for table in older:
            for k, v in table.items():
                merged[k] = v
        for table in reversed(newer):  # apply oldest first, newest last
            for k, v in table.items():
                merged[k] = v
        out = sorted(merged.items())
        if drop_tombstones:
            out = [(k, v) for k, v in out if v is not TOMBSTONE]
        return out

    # -- block access with simulated I/O ------------------------------------------------

    def _read_block(self, table: SSTableBase, block_idx: int) -> list[tuple[bytes, Any]]:
        cache_key = (table.table_id, block_idx)
        before = self._block_cache.misses
        block = self._block_cache.get_or_load(
            cache_key, lambda: table.read_block(block_idx)
        )
        if self._block_cache.misses > before:
            self.io.block_reads += 1
        else:
            self.io.cache_hits += 1
        return block

    # -- Get (Figure 4.3 left) ------------------------------------------------------------

    def get(self, key: bytes) -> Any | None:
        view = self._pin()
        try:
            return self._get_in(view, key)
        finally:
            self._unpin(view)

    def _get_in(self, view: _View, key: bytes) -> Any | None:
        for layer in view.mems:
            # Single probe per layer: every memtable/view type takes a
            # default, and a miss-sentinel distinguishes absent keys
            # from stored values.
            value = layer.get(key, _MISSING)
            if value is not _MISSING:
                return None if value is TOMBSTONE else value
        for table in self._candidates_for(view, key):
            if table.filter is not None:
                self.io.filter_probes += 1
                if not table.may_contain(key):
                    self.io.filter_negatives += 1
                    continue
            elif not table.may_contain(key):
                continue
            block = self._read_block(table, table.block_for(key))
            idx = bisect_left(block, (key,))
            if idx < len(block) and block[idx][0] == key:
                value = block[idx][1]
                return None if value is TOMBSTONE else value
        return None

    def get_many(self, keys: Sequence[bytes]) -> list[Any]:
        """Batch point reads matching element-wise scalar :meth:`get`.

        The batch walks the LSM hierarchy level-synchronously: per
        table, every still-unresolved key in the table's range is
        probed through the filter's vectorized ``lookup_many`` (PR 3
        batch kernels) in one call, and the survivors are grouped by
        block so each block is fetched and decoded once no matter how
        many keys land in it.  A key resolved by a newer table (value
        *or* tombstone) never touches older tables, preserving
        newest-wins semantics exactly.
        """
        view = self._pin()
        try:
            return self._get_many_in(view, keys)
        finally:
            self._unpin(view)

    def _get_many_in(self, view: _View, keys: Sequence[bytes]) -> list[Any]:
        keys = list(keys)
        out: list[Any] = [None] * len(keys)
        pending: list[int] = []
        for i, key in enumerate(keys):
            resolved = False
            for layer in view.mems:
                value = layer.get(key, _MISSING)
                if value is not _MISSING:
                    out[i] = None if value is TOMBSTONE else value
                    resolved = True
                    break
            if not resolved:
                pending.append(i)
        levels = view.levels
        for table in levels[0]:
            if not pending:
                return out
            pending = self._table_get_many(table, keys, out, pending)
        for level in levels[1:]:
            if not pending:
                return out
            # Disjoint level: each key has at most one candidate table.
            min_keys = [t.min_key for t in level]
            by_table: dict[int, list[int]] = {}
            next_pending: list[int] = []
            for i in pending:
                ti = bisect_right(min_keys, keys[i]) - 1
                if ti >= 0 and keys[i] <= level[ti].max_key:
                    by_table.setdefault(ti, []).append(i)
                else:
                    next_pending.append(i)
            for ti, members in sorted(by_table.items()):
                next_pending.extend(
                    self._table_get_many(level[ti], keys, out, members)
                )
            pending = next_pending
        return out

    def _table_get_many(
        self, table: SSTableBase, keys: list[bytes], out: list[Any], idxs: list[int]
    ) -> list[int]:
        """Resolve what ``table`` holds of ``keys[idxs]``; return the
        indexes still unresolved (filter negatives, false positives,
        and keys outside the table's range)."""
        in_range = [i for i in idxs if table.min_key <= keys[i] <= table.max_key]
        if not in_range:
            return idxs
        if table.filter is not None:
            flt = table.filter
            probe = getattr(flt, "lookup_many", None) or getattr(
                flt, "may_contain_many", None
            )
            if probe is not None:
                mask = probe([keys[i] for i in in_range])
            else:
                mask = [table.may_contain(keys[i]) for i in in_range]
            self.io.filter_probes += len(in_range)
            passed = [i for i, hit in zip(in_range, mask) if hit]
            self.io.filter_negatives += len(in_range) - len(passed)
        else:
            passed = in_range
        if not passed:
            return idxs
        by_block: dict[int, list[int]] = {}
        for i in passed:
            by_block.setdefault(table.block_for(keys[i]), []).append(i)
        resolved: set[int] = set()
        for block_idx in sorted(by_block):
            block = self._read_block(table, block_idx)
            for i in by_block[block_idx]:
                j = bisect_left(block, (keys[i],))
                if j < len(block) and block[j][0] == keys[i]:
                    value = block[j][1]
                    out[i] = None if value is TOMBSTONE else value
                    resolved.add(i)
        if not resolved:
            return idxs
        return [i for i in idxs if i not in resolved]

    def _candidates_for(self, view: _View, key: bytes) -> Iterator[SSTableBase]:
        levels = view.levels
        for table in levels[0]:
            if table.min_key <= key <= table.max_key:
                yield table
        for level in levels[1:]:
            idx = bisect_right([t.min_key for t in level], key) - 1
            if idx >= 0 and key <= level[idx].max_key:
                yield level[idx]

    # -- Seek (Figure 4.3 middle) -----------------------------------------------------------

    def seek(self, low: bytes, high: bytes | None = None) -> tuple[bytes, Any] | None:
        """Smallest entry with key >= low (and <= high if given).

        With SuRF filters, candidate keys come from the filters and at
        most one block is fetched; without them, one block per
        candidate SSTable is fetched (the I/O the paper saves).  When
        the winner turns out to be a tombstone, the engine switches to
        an iterative merged cursor (:meth:`_merge_seek_in`) that skips
        the whole tombstone run reading each block at most once — a run
        of 100k deleted keys costs O(blocks) reads and O(1) stack.
        """
        view = self._pin(copy_mem=True)
        try:
            return self._seek_in(view, low, high)
        finally:
            self._unpin(view)

    def _seek_in(
        self, view: _View, low: bytes, high: bytes | None = None
    ) -> tuple[bytes, Any] | None:
        best: tuple[bytes, Any] | None = None
        # MemTable candidate (no I/O) — newest-wins across the layers.
        mem = [(k, v) for k, v in view.merged().items() if k >= low]
        if mem:
            best = min(mem)
        candidates = list(self._seek_candidates(view, low))
        if candidates and all(
            t.filter is not None and hasattr(t.filter, "move_to_next")
            for t in candidates
        ):
            cand = self._filtered_seek(candidates, low, high, best)
            if cand is not None and (best is None or cand[0] < best[0]):
                best = cand
        else:
            for table in candidates:
                cand = self._table_seek(table, low, high, best)
                if cand is not None and (best is None or cand[0] < best[0]):
                    best = cand
        if best is None:
            return None
        if best[1] is TOMBSTONE:
            # Tombstones shadow older entries; skip the run iteratively.
            return self._merge_seek_in(view, best[0], high)
        if high is not None and best[0] > high:
            return None
        return best

    def _merge_seek_in(
        self, view: _View, start: bytes, high: bytes | None
    ) -> tuple[bytes, Any] | None:
        """First live entry >= ``start`` via a newest-wins k-way merge.

        One sorted cursor per source (merged memtable layers, each L0
        table, each deeper level) advances through a heap; for
        duplicate keys the lowest-rank (newest) source wins.  Every
        block along the skip is read at most once, so a contiguous
        tombstone run costs O(run / block_entries) block reads, not
        O(run) seek restarts.
        """
        iters: list[Iterator[tuple[bytes, Any]]] = [
            iter(sorted((k, v) for k, v in view.merged().items() if k >= start))
        ]
        levels = view.levels
        for table in levels[0]:
            if table.max_key >= start:
                iters.append(self._table_cursor(table, start))
        for level in levels[1:]:
            iters.append(self._level_cursor(level, start))
        # Heap entries are (key, rank, value); ranks are unique, so the
        # (unorderable) values never get compared.
        heap: list[tuple[bytes, int, Any]] = []
        for rank, it in enumerate(iters):
            first = next(it, None)
            if first is not None:
                heap.append((first[0], rank, first[1]))
        heapq.heapify(heap)
        while heap:
            key = heap[0][0]
            if high is not None and key > high:
                return None
            # Pop every version of ``key``; the first popped has the
            # lowest rank (newest source) and decides liveness.
            winner = heap[0][2]
            while heap and heap[0][0] == key:
                _, rank, _ = heapq.heappop(heap)
                nxt = next(iters[rank], None)
                if nxt is not None:
                    heapq.heappush(heap, (nxt[0], rank, nxt[1]))
            if winner is not TOMBSTONE:
                return (key, winner)
        return None

    def _table_cursor(
        self, table: SSTableBase, start: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        """Entries >= ``start`` from one table, block by cached block."""
        block_idx = table.block_for(start)
        block = self._read_block(table, block_idx)
        for entry in block[bisect_left(block, (start,)) :]:
            yield entry
        for block_idx in range(block_idx + 1, table.n_blocks):
            yield from self._read_block(table, block_idx)

    def _level_cursor(
        self, level: list[SSTableBase], start: bytes
    ) -> Iterator[tuple[bytes, Any]]:
        """Entries >= ``start`` across one disjoint sorted level."""
        idx = max(bisect_right([t.min_key for t in level], start) - 1, 0)
        for table in level[idx:]:
            if table.max_key < start:
                continue
            yield from self._table_cursor(table, max(start, table.min_key))

    def _filtered_seek(
        self,
        candidates: list[SSTableBase],
        low: bytes,
        high: bytes | None,
        best: tuple[bytes, Any] | None,
    ) -> tuple[bytes, Any] | None:
        """The paper's SuRF seek (Section 4.2): obtain each table's
        candidate *key prefix* from its filter (no I/O) and resolve the
        winner with as few block fetches as the prefixes allow.

        A filter prefix is a *truncated lower bound* on the table's
        first key >= ``low`` — truncation can make prefixes from
        different tables conflate distinct keys, so prefix order alone
        cannot pick the winner (an earlier version skipped tables whose
        prefix was not string-prefix-related to the minimum, silently
        dropping newer versions and tombstones of the winning key).
        The only sound prefix deduction is pruning: ``prefix > k``
        proves the table holds nothing in ``[low, k]``.  So every
        candidate is consulted newest-first, and :meth:`_table_seek`'s
        internal prefix prune skips the block fetch whenever the prefix
        already exceeds the running winner."""
        prefixed: list[tuple[bytes, SSTableBase]] = []
        for table in candidates:
            it, _fp = table.filter_seek(low)
            if not it.valid:
                continue  # sound: no stored entry (nor prefix) >= low
            prefixed.append((it.key(), table))
        if not prefixed:
            return None
        min_prefix = min(p for p, _ in prefixed)
        if high is not None and min_prefix > high:
            return None  # every candidate starts past the bound: no I/O
        # ``candidates`` arrive newest-first, so on a full-key tie the
        # first (newest) table's entry — live or tombstone — wins.
        result: tuple[bytes, Any] | None = None
        for _prefix, table in prefixed:
            cand = self._table_seek(table, low, high, result or best)
            if cand is not None and (result is None or cand[0] < result[0]):
                result = cand
        return result

    def _seek_candidates(self, view: _View, low: bytes) -> Iterator[SSTableBase]:
        levels = view.levels
        for table in levels[0]:
            if table.max_key >= low:
                yield table
        for level in levels[1:]:
            idx = bisect_right([t.min_key for t in level], low) - 1
            start = max(idx, 0)
            for table in level[start:]:
                if table.max_key >= low:
                    yield table
                    break  # disjoint level: first qualifying table wins

    def _table_seek(
        self,
        table: SSTableBase,
        low: bytes,
        high: bytes | None,
        best: tuple[bytes, Any] | None,
    ) -> tuple[bytes, Any] | None:
        filter_it = table.filter_seek(low)
        if filter_it is not None:
            it, _fp = filter_it
            if not it.valid:
                return None  # filter proves nothing >= low here
            candidate_prefix = it.key()
            if high is not None and candidate_prefix > high:
                return None  # beyond the bound: I/O saved
            if best is not None and candidate_prefix > best[0]:
                return None  # cannot beat the current winner
        # Fetch the one block that holds the table's first key >= low.
        block_idx = table.block_for(low)
        block = self._read_block(table, block_idx)
        idx = bisect_left(block, (low,))
        while True:
            if idx < len(block):
                return block[idx]
            block_idx += 1
            if block_idx >= table.n_blocks:
                return None
            block = self._read_block(table, block_idx)
            idx = 0

    # -- iteration / Count (Figure 4.3 right) ---------------------------------------------------

    def scan(self, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        """Seek + Next*: the first ``count`` live entries >= low.

        Pins one view for the whole scan, so the result is consistent
        even while flushes and compactions run underneath."""
        view = self._pin(copy_mem=True)
        try:
            return self._scan_in(view, low, count)
        finally:
            self._unpin(view)

    def _scan_in(self, view: _View, low: bytes, count: int) -> list[tuple[bytes, Any]]:
        out: list[tuple[bytes, Any]] = []
        cursor = low
        while len(out) < count:
            entry = self._seek_in(view, cursor)
            if entry is None:
                break
            out.append(entry)
            cursor = entry[0] + b"\x00"
        return out

    def count(self, low: bytes, high: bytes) -> int:
        """Approximate count of entries in [low, high).

        With SuRF filters this runs from the filters plus at most two
        boundary block reads per level; otherwise it scans blocks.
        As in the paper, LSM semantics make it approximate (it cannot
        distinguish updates/deletes across runs without a full merge).
        """
        view = self._pin(copy_mem=True)
        try:
            return self._count_in(view, low, high)
        finally:
            self._unpin(view)

    def _count_in(self, view: _View, low: bytes, high: bytes) -> int:
        total = sum(1 for k in view.merged() if low <= k < high)
        for level in view.levels:
            for table in level:
                if not table.overlaps(low, high):
                    continue
                if table.filter is not None and hasattr(table.filter, "count"):
                    total += table.filter.count(low, high)
                else:
                    total += self._scan_count(table, low, high)
        return total

    def _scan_count(self, table: SSTableBase, low: bytes, high: bytes) -> int:
        count = 0
        block_idx = table.block_for(low)
        while block_idx < table.n_blocks:
            block = self._read_block(table, block_idx)
            for k, _ in block:
                if k >= high:
                    return count
                if k >= low:
                    count += 1
            block_idx += 1
        return count

    # -- quiescence (tests / benchmarks) --------------------------------------------------------

    def wait_idle(self, timeout: float = 30.0) -> None:
        """Block until no frozen memtable is pending and no level is
        over its limit (background mode; inline returns immediately).

        Raises the background error if a flusher/compactor died, and
        ``TimeoutError`` if the backlog does not drain in time.
        """
        if not self._background:
            return
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._immutables or self._pick_compaction_level() is not None:
                self._check_bg_error()
                if self._closed:
                    return
                # Wait on the *remaining* time, not a fixed slice: a
                # fixed 50 ms poll both overshoots tight deadlines (a
                # 1 ms timeout slept 50 ms) and never times out at all
                # when notifications keep arriving faster than the
                # slice, since the deadline was only checked after a
                # timed-out wait.
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("background work did not drain")
                self._cond.wait(timeout=remaining)
            self._check_bg_error()

    # -- statistics -----------------------------------------------------------------------------

    def total_entries(self) -> int:
        with self._lock:
            mem = len(self._memtable) + sum(len(f.data) for f in self._immutables)
            return mem + sum(t.n_entries for t in self._version.tables())

    def filter_memory_bytes(self) -> int:
        return sum(t.filter_memory_bytes() for t in self._version.tables())

    def table_count(self) -> int:
        return sum(len(level) for level in self._version.levels)

    def compaction_backlog(self) -> int:
        """Tables above their level limits (0 when fully compacted)."""
        levels = self._version.levels
        return sum(
            max(0, len(level) - self._level_limit(i))
            for i, level in enumerate(levels)
        )

    def info(self) -> dict[str, Any]:
        """JSON-ready engine counters (the per-shard STATS payload)."""
        io = self.io
        reads, hits = io.block_reads, io.cache_hits
        probes, negatives = io.filter_probes, io.filter_negatives
        return {
            "entries": self.total_entries(),
            "tables": self.table_count(),
            "last_seq": self.last_seq,
            "block_reads": reads,
            "cache_hits": hits,
            "cache_hit_rate": hits / (reads + hits) if reads + hits else 0.0,
            "filter_probes": probes,
            "filter_negatives": negatives,
            "filter_hit_rate": negatives / probes if probes else 0.0,
            "background": self._background,
            "immutables": len(self._immutables),
            "l0_tables": len(self._version.levels[0]),
            "compaction_backlog": self.compaction_backlog(),
            "stalls": self.stall_count,
            "slowdowns": self.slowdown_count,
            "stall_seconds": self.stall_seconds,
            "flushes": self.flush_count,
            "compactions": self.compaction_count,
            "snapshots": self._snapshots_live,
        }
