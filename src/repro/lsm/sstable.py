"""SSTables: immutable sorted runs with blocks, fences, and filters.

An SSTable holds sorted key-value pairs divided into fixed-size blocks
(the smallest disk access units).  The per-block "restarting points"
(first key of each block) form the fence index kept in the table cache;
an optional filter (Bloom or SuRF) guards the table (Section 4.2).

Disk I/O is simulated: reading a block that is not cached costs one
I/O, counted by the engine.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Sequence

#: Marker value for deletions (RocksDB tombstones).
TOMBSTONE = object()

DEFAULT_BLOCK_ENTRIES = 64


class SSTable:
    """One immutable sorted run."""

    _next_id = 0

    def __init__(
        self,
        pairs: Sequence[tuple[bytes, Any]],
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        filter_factory=None,
    ) -> None:
        """``pairs`` must be sorted by strictly increasing key."""
        if not pairs:
            raise ValueError("SSTable cannot be empty")
        for i in range(len(pairs) - 1):
            if pairs[i][0] >= pairs[i + 1][0]:
                raise ValueError("SSTable pairs must be sorted and distinct")
        self.table_id = SSTable._next_id
        SSTable._next_id += 1
        self.blocks: list[list[tuple[bytes, Any]]] = [
            list(pairs[i : i + block_entries])
            for i in range(0, len(pairs), block_entries)
        ]
        self.fences: list[bytes] = [block[0][0] for block in self.blocks]
        self.min_key = pairs[0][0]
        self.max_key = pairs[-1][0]
        self.n_entries = len(pairs)
        # Filters guard only live keys (tombstones would false-negative
        # reads of older versions, so they are included as keys too).
        self.filter = (
            filter_factory([k for k, _ in pairs]) if filter_factory else None
        )

    def block_for(self, key: bytes) -> int:
        """Index of the block that may contain ``key``."""
        idx = bisect_right(self.fences, key) - 1
        return max(idx, 0)

    def overlaps(self, lo: bytes, hi: bytes) -> bool:
        return not (self.max_key < lo or self.min_key > hi)

    def may_contain(self, key: bytes) -> bool:
        """Filter probe (no I/O); True when no filter is attached."""
        if self.filter is None:
            return self.min_key <= key <= self.max_key
        return self.filter.lookup(key) if hasattr(self.filter, "lookup") else self.filter.may_contain(key)

    def filter_seek(self, key: bytes):
        """SuRF moveToNext on the table's filter, or None if the filter
        cannot answer (absent or a Bloom filter)."""
        if self.filter is None or not hasattr(self.filter, "move_to_next"):
            return None
        return self.filter.move_to_next(key)

    def items(self):
        for block in self.blocks:
            yield from block

    def filter_memory_bytes(self) -> int:
        return self.filter.memory_bytes() if self.filter is not None else 0
