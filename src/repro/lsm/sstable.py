"""SSTables: immutable sorted runs with blocks, fences, and filters.

An SSTable holds sorted key-value pairs divided into fixed-size blocks
(the smallest disk access units).  The per-block "restarting points"
(first key of each block) form the fence index kept in the table cache;
an optional filter (Bloom or SuRF) guards the table (Section 4.2).

Two concrete kinds share one interface (:class:`SSTableBase`):

* :class:`SSTable` keeps its blocks in memory — the original simulated
  engine, where reading an uncached block costs one *counted* I/O;
* :class:`DiskSSTable` is backed by a file written by
  :func:`write_sstable`; only the footer (fences, offsets, filter) is
  resident, and ``read_block`` does a real positioned read with CRC
  verification.

On-disk layout (all units CRC-framed, see :mod:`.disk_format`)::

    [block 0] [block 1] ... [block n-1] [filter frame] [footer frame]
    <u32 footer_frame_len> <magic "LSMS">

The footer is found from the fixed-size trailer at the end of the
file, RocksDB-style, so a table is self-describing.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Any, Sequence

from . import disk_format
from .disk_format import TOMBSTONE, FrameError  # noqa: F401  (re-exported)
from .fs import FileSystem

DEFAULT_BLOCK_ENTRIES = 64

TABLE_MAGIC = b"LSMS"

#: Filter-blob tags in the table footer.
_FILTER_NONE = 0
_FILTER_SURF = 1
_FILTER_BLOOM = 2
_FILTER_REBUILD = 3  # unknown filter type: rebuild from keys on load


def table_file_name(table_id: int) -> str:
    return f"sst-{table_id:08d}.sst"


class SSTableBase:
    """Interface both table kinds implement.

    Concrete subclasses provide ``table_id``, ``fences``, ``min_key``,
    ``max_key``, ``n_entries``, ``filter``, ``n_blocks`` and
    ``read_block``.
    """

    table_id: int
    fences: list[bytes]
    min_key: bytes
    max_key: bytes
    n_entries: int
    filter: Any

    @property
    def n_blocks(self) -> int:
        raise NotImplementedError

    def read_block(self, idx: int) -> list[tuple[bytes, Any]]:
        raise NotImplementedError

    def block_for(self, key: bytes) -> int:
        """Index of the block that may contain ``key``."""
        idx = bisect_right(self.fences, key) - 1
        return max(idx, 0)

    def overlaps(self, lo: bytes, hi: bytes) -> bool:
        return not (self.max_key < lo or self.min_key > hi)

    def may_contain(self, key: bytes) -> bool:
        """Filter probe (no I/O); True when no filter is attached."""
        if self.filter is None:
            return self.min_key <= key <= self.max_key
        return self.filter.lookup(key) if hasattr(self.filter, "lookup") else self.filter.may_contain(key)

    def filter_seek(self, key: bytes):
        """SuRF moveToNext on the table's filter, or None if the filter
        cannot answer (absent or a Bloom filter)."""
        if self.filter is None or not hasattr(self.filter, "move_to_next"):
            return None
        return self.filter.move_to_next(key)

    def items(self):
        for idx in range(self.n_blocks):
            yield from self.read_block(idx)

    def filter_memory_bytes(self) -> int:
        return self.filter.memory_bytes() if self.filter is not None else 0

    def close(self) -> None:
        """Release any backing resources (no-op for in-memory tables)."""


class SSTable(SSTableBase):
    """One immutable in-memory sorted run.

    ``table_id`` should come from the owning engine's allocator so ids
    are engine-scoped (and persistable); the module-level fallback
    counter exists only for standalone construction in tests, where no
    block cache is shared between engines.
    """

    _fallback_id = 0

    def __init__(
        self,
        pairs: Sequence[tuple[bytes, Any]],
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        filter_factory=None,
        table_id: int | None = None,
    ) -> None:
        """``pairs`` must be sorted by strictly increasing key."""
        if not pairs:
            raise ValueError("SSTable cannot be empty")
        for i in range(len(pairs) - 1):
            if pairs[i][0] >= pairs[i + 1][0]:
                raise ValueError("SSTable pairs must be sorted and distinct")
        if table_id is None:
            table_id = SSTable._fallback_id
            SSTable._fallback_id += 1
        self.table_id = table_id
        self.blocks: list[list[tuple[bytes, Any]]] = [
            list(pairs[i : i + block_entries])
            for i in range(0, len(pairs), block_entries)
        ]
        self.fences = [block[0][0] for block in self.blocks]
        self.min_key = pairs[0][0]
        self.max_key = pairs[-1][0]
        self.n_entries = len(pairs)
        # Filters guard only live keys (tombstones would false-negative
        # reads of older versions, so they are included as keys too).
        self.filter = (
            filter_factory([k for k, _ in pairs]) if filter_factory else None
        )

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def read_block(self, idx: int) -> list[tuple[bytes, Any]]:
        return self.blocks[idx]


# -- durable tables ----------------------------------------------------------


def _encode_filter(flt: Any) -> tuple[int, bytes]:
    if flt is None:
        return _FILTER_NONE, b""
    from ..fst.serialize import surf_to_bytes
    from ..surf.surf import SuRF

    if isinstance(flt, SuRF):
        return _FILTER_SURF, surf_to_bytes(flt)
    from ..filters.bloom import BloomFilter

    if type(flt) is BloomFilter:
        return _FILTER_BLOOM, flt.to_bytes()
    return _FILTER_REBUILD, b""


def _decode_filter(tag: int, blob, keys_loader, filter_factory, copy: bool = True) -> Any:
    """Decode a filter blob.

    With ``copy=False`` the filter's internal arrays are
    ``np.frombuffer`` *views* over ``blob`` (the zero-copy mmap path);
    the caller must keep the backing buffer alive for the filter's
    lifetime — which :class:`DiskSSTable` does by holding its
    :class:`~repro.lsm.fs.MappedFile` open.
    """
    if tag == _FILTER_NONE:
        return None
    if tag == _FILTER_SURF:
        from ..fst.serialize import surf_from_bytes

        return surf_from_bytes(blob, copy=copy)
    if tag == _FILTER_BLOOM:
        from ..filters.bloom import BloomFilter

        return BloomFilter.from_bytes(blob, copy=copy)
    if tag == _FILTER_REBUILD:
        # The filter type had no serializer: rebuild it from the table's
        # keys (one full scan at load time — correct, if not cheap).
        if filter_factory is None:
            return None
        return filter_factory(keys_loader())
    raise FrameError(f"unknown filter tag {tag}")


def write_sstable(
    fs: FileSystem,
    path: str,
    pairs: Sequence[tuple[bytes, Any]],
    table_id: int,
    block_entries: int = DEFAULT_BLOCK_ENTRIES,
    filter_factory=None,
) -> None:
    """Write one table file: blocks, filter, footer — then fsync.

    The file is complete and durable when this returns; visibility is
    the manifest's job (a crash before the manifest install leaves an
    orphan file that recovery garbage-collects).
    """
    if not pairs:
        raise ValueError("SSTable cannot be empty")
    flt = filter_factory([k for k, _ in pairs]) if filter_factory else None
    filter_tag, filter_blob = _encode_filter(flt)

    f = fs.create(path)
    offsets: list[tuple[int, int]] = []  # (offset, framed length) per block
    fences: list[bytes] = []
    pos = 0
    for i in range(0, len(pairs), block_entries):
        block = list(pairs[i : i + block_entries])
        raw = disk_format.encode_block(block)
        offsets.append((pos, len(raw)))
        fences.append(block[0][0])
        f.append(raw)
        pos += len(raw)
    filter_frame = disk_format.frame(bytes([filter_tag]) + filter_blob)
    filter_offset = pos
    f.append(filter_frame)
    pos += len(filter_frame)

    footer = bytearray()
    footer += disk_format.pack_u64(table_id)
    footer += disk_format.pack_u64(len(pairs))
    footer += disk_format.pack_bytes(pairs[0][0])
    footer += disk_format.pack_bytes(pairs[-1][0])
    footer += disk_format.pack_u64(filter_offset)
    footer += disk_format.pack_u64(len(filter_frame))
    footer += disk_format.pack_u64(len(offsets))
    for (off, length), fence in zip(offsets, fences):
        footer += disk_format.pack_u64(off)
        footer += disk_format.pack_u64(length)
        footer += disk_format.pack_bytes(fence)
    footer_frame = disk_format.frame(bytes(footer))
    f.append(footer_frame)
    f.append(struct.pack("<I", len(footer_frame)) + TABLE_MAGIC)
    f.sync()
    f.close()


class DiskSSTable(SSTableBase):
    """A file-backed table reader over one ``mmap`` of the table file.

    Everything is lazy: constructing with a known ``table_id`` (the
    manifest records it) does **zero** I/O, so ``LSMTree.open`` is O(1)
    per table regardless of table sizes.  The first real access maps
    the file once and parses the footer; the filter blob is decoded
    on the first probe — and decoded *as views*: its ``np.frombuffer``
    arrays alias the mapping directly (see :func:`_decode_filter`),
    so N shard processes share one page-cache copy of every filter.

    ``read_block`` serves each block frame as a ``memoryview`` slice of
    the mapping; :func:`~repro.lsm.disk_format.decode_block`
    materializes the entries so nothing returned to callers aliases
    the map.  ``close()`` is safe with views outstanding (see
    :class:`~repro.lsm.fs.MappedFile`).
    """

    def __init__(
        self,
        fs: FileSystem,
        path: str,
        filter_factory=None,
        table_id: int | None = None,
    ) -> None:
        self._fs = fs
        self.path = path
        self._filter_factory = filter_factory
        self._map = None
        self._footer_loaded = False
        self._filter_loaded = False
        self._filter: Any = None
        self._table_id = table_id
        self._filter_span: tuple[int, int] = (0, 0)
        if table_id is None:
            self._ensure_footer()

    # -- lazy loading ------------------------------------------------------

    def _ensure_map(self):
        if self._map is None or self._map.closed:
            self._map = self._fs.open_mmap(self.path)
        return self._map

    def _ensure_footer(self) -> None:
        if self._footer_loaded:
            return
        data = self._ensure_map().view
        path = self.path
        if len(data) < 8 or bytes(data[-4:]) != TABLE_MAGIC:
            raise FrameError(f"{path}: not an SSTable (bad magic)")
        (footer_len,) = struct.unpack("<I", data[-8:-4])
        if footer_len + 8 > len(data):
            raise FrameError(f"{path}: footer length out of range")
        # The footer is small and long-lived: materialize it so fences
        # and min/max keys are real bytes, not views of the map.
        footer, _ = disk_format.read_frame(bytes(data[-8 - footer_len : -8]))
        off = 0
        footer_tid, off = disk_format.unpack_u64(footer, off)
        if self._table_id is not None and footer_tid != self._table_id:
            raise FrameError(
                f"{path}: footer table id {footer_tid} != manifest id {self._table_id}"
            )
        self._table_id = footer_tid
        self._n_entries, off = disk_format.unpack_u64(footer, off)
        self._min_key, off = disk_format.unpack_bytes(footer, off)
        self._max_key, off = disk_format.unpack_bytes(footer, off)
        filter_offset, off = disk_format.unpack_u64(footer, off)
        filter_len, off = disk_format.unpack_u64(footer, off)
        n_blocks, off = disk_format.unpack_u64(footer, off)
        self._block_spans: list[tuple[int, int]] = []
        self._fences: list[bytes] = []
        for _ in range(n_blocks):
            boff, off = disk_format.unpack_u64(footer, off)
            blen, off = disk_format.unpack_u64(footer, off)
            fence, off = disk_format.unpack_bytes(footer, off)
            self._block_spans.append((boff, blen))
            self._fences.append(fence)
        if off != len(footer):
            raise FrameError(f"{path}: trailing bytes in footer")
        self._filter_span = (filter_offset, filter_len)
        self._footer_loaded = True

    def _ensure_filter(self) -> Any:
        if self._filter_loaded:
            return self._filter
        self._ensure_footer()
        foff, flen = self._filter_span
        payload, _ = disk_format.read_frame(self._ensure_map().view[foff : foff + flen])
        self._filter = _decode_filter(
            payload[0],
            payload[1:],  # memoryview slice: the filter aliases the map
            keys_loader=lambda: [k for k, _ in self.items()],
            filter_factory=self._filter_factory,
            copy=False,
        )
        self._filter_loaded = True
        return self._filter

    # -- SSTableBase surface (all lazy) ------------------------------------

    @property
    def table_id(self) -> int:
        if self._table_id is None:
            self._ensure_footer()
        return self._table_id

    @property
    def fences(self) -> list[bytes]:
        self._ensure_footer()
        return self._fences

    @property
    def min_key(self) -> bytes:
        self._ensure_footer()
        return self._min_key

    @property
    def max_key(self) -> bytes:
        self._ensure_footer()
        return self._max_key

    @property
    def n_entries(self) -> int:
        self._ensure_footer()
        return self._n_entries

    @property
    def filter(self) -> Any:
        return self._ensure_filter()

    @property
    def n_blocks(self) -> int:
        self._ensure_footer()
        return len(self._block_spans)

    def read_block(self, idx: int) -> list[tuple[bytes, Any]]:
        self._ensure_footer()
        off, length = self._block_spans[idx]
        return disk_format.decode_block(self._ensure_map().view[off : off + length])

    def close(self) -> None:
        """Release the mapping (tolerates outstanding views)."""
        if self._map is not None:
            self._map.close()
            self._map = None


#: The name the paper-facing docs use for the zero-copy reader.
SSTableReader = DiskSSTable
