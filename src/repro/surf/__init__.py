"""SuRF: the Succinct Range Filter (Chapter 4)."""

from .surf import SuRF, surf_base, surf_hash, surf_mixed, surf_real
from .hybrid_surf import HybridSuRF

__all__ = ["SuRF", "HybridSuRF", "surf_base", "surf_hash", "surf_real", "surf_mixed"]
