"""SuRF: the Succinct Range Filter (Chapter 4).

SuRF truncates an FST to minimum-length distinguishing prefixes and
optionally appends per-key suffix bits:

* **SuRF-Base**  — no suffix bits (10-14 bits/key empirically);
* **SuRF-Hash**  — ``n`` LSBs of a key hash: point-query FPR < 2^-n,
  no help for ranges;
* **SuRF-Real**  — the first ``n`` bits of the truncated key suffix:
  helps both point and range queries, but correlated keys weaken it;
* **SuRF-Mixed** — both kinds, stored consecutively.

Operations follow Section 4.1.5: ``lookup``, ``move_to_next``
(LowerBound with an fp_flag for truncated-prefix matches),
``lookup_range`` and the approximate ``count``.  All guarantee
one-sided errors: a negative answer proves absence.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from ..filters.bloom import hash64
from ..fst.fst import FST, FstIterator

SuffixType = Literal["none", "hash", "real", "mixed"]


def _real_suffix_bits(suffix: bytes, n_bits: int) -> int:
    """First ``n_bits`` of ``suffix`` MSB-first, zero-padded."""
    if n_bits == 0:
        return 0
    needed = (n_bits + 7) // 8
    padded = suffix[:needed].ljust(needed, b"\0")
    value = int.from_bytes(padded, "big")
    return value >> (needed * 8 - n_bits)


class SuRF:
    """Succinct Range Filter over a static set of byte keys."""

    def __init__(
        self,
        keys: Sequence[bytes],
        suffix_type: SuffixType = "none",
        hash_bits: int = 0,
        real_bits: int = 0,
        **fst_kwargs,
    ) -> None:
        """Build from sorted, distinct keys.

        ``hash_bits``/``real_bits`` default from the suffix type: pass
        them explicitly to size the filter (Figure 4.4 sweeps these).
        """
        if suffix_type not in ("none", "hash", "real", "mixed"):
            raise ValueError(f"unknown suffix type {suffix_type!r}")
        if suffix_type == "none":
            hash_bits = real_bits = 0
        elif suffix_type == "hash":
            real_bits = 0
            if hash_bits <= 0:
                raise ValueError("SuRF-Hash needs hash_bits > 0")
        elif suffix_type == "real":
            hash_bits = 0
            if real_bits <= 0:
                raise ValueError("SuRF-Real needs real_bits > 0")
        elif suffix_type == "mixed" and (hash_bits <= 0 or real_bits <= 0):
            raise ValueError("SuRF-Mixed needs hash_bits and real_bits > 0")
        self.suffix_type = suffix_type
        self.hash_bits = hash_bits
        self.real_bits = real_bits
        self.fst = FST(keys, list(range(len(keys))), truncate=True, **fst_kwargs)
        #: Tombstone bit-array (Section 4.5): allocated on first delete.
        self._tombstones: bytearray | None = None
        # Per-key suffix words, indexed by key position (the FST values).
        self._hash_suffixes: list[int] = []
        self._real_suffixes: list[int] = []
        if hash_bits:
            mask = (1 << hash_bits) - 1
            self._hash_suffixes = [hash64(k) & mask for k in keys]
        if real_bits:
            self._real_suffixes = [
                _real_suffix_bits(s, real_bits) for s in self.fst.suffixes
            ]

    # -- point membership -----------------------------------------------------------

    def lookup(self, key: bytes) -> bool:
        """May ``key`` be in the set?  False proves absence."""
        found = self.fst._lookup(key)
        if found is None:
            return False
        key_index, remaining = found
        if self.is_deleted(key_index):
            return False
        if self.hash_bits:
            mask = (1 << self.hash_bits) - 1
            if hash64(key) & mask != self._hash_suffixes[key_index]:
                return False
        if self.real_bits:
            if (
                _real_suffix_bits(remaining, self.real_bits)
                != self._real_suffixes[key_index]
            ):
                return False
        return True

    __contains__ = lookup
    #: Filter-vocabulary alias: SuRF, Bloom and PrefixBloom all answer
    #: ``may_contain`` / ``may_contain_range`` (one-sided membership).
    may_contain = lookup

    def lookup_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Batched :meth:`lookup`: identical answers, one result per key.

        The trie walk goes through the FST's level-synchronous
        ``_lookup_many``; suffix verification compares the whole hit set
        against the stored suffix arrays in one vectorized pass.
        """
        found = self.fst._lookup_many(keys)
        out = [False] * len(keys)
        hits = [i for i, f in enumerate(found) if f is not None]
        if not hits:
            return out
        kidx = np.fromiter(
            (found[i][0] for i in hits), dtype=np.int64, count=len(hits)
        )
        ok = np.ones(len(hits), dtype=bool)
        if self._tombstones is not None:
            # View, not copy: the bytearray is allocated full-size on the
            # first delete and never resized, so exporting its buffer for
            # the duration of this call is safe (only a *resize* would
            # raise BufferError); bit-sets via delete() cannot run
            # concurrently with a lookup on a single-threaded shard.
            tomb = np.frombuffer(self._tombstones, dtype=np.uint8)
            ok &= (tomb[kidx >> 3] >> (kidx & 7).astype(np.uint8)) & 1 == 0
        if self.hash_bits:
            mask = (1 << self.hash_bits) - 1
            query = np.fromiter(
                (hash64(keys[i]) & mask for i in hits),
                dtype=np.int64,
                count=len(hits),
            )
            stored = np.asarray(self._hash_suffixes, dtype=np.int64)[kidx]
            ok &= query == stored
        if self.real_bits:
            query = np.fromiter(
                (_real_suffix_bits(found[i][1], self.real_bits) for i in hits),
                dtype=np.int64,
                count=len(hits),
            )
            stored = np.asarray(self._real_suffixes, dtype=np.int64)[kidx]
            ok &= query == stored
        for i, good in zip(hits, ok.tolist()):
            out[i] = good
        return out

    #: Filter-vocabulary alias (see :meth:`may_contain`).
    may_contain_many = lookup_many

    # -- range operations ---------------------------------------------------------------

    def move_to_next(self, key: bytes) -> tuple[FstIterator, bool]:
        """Iterator at the smallest stored entry >= ``key`` plus the
        fp_flag indicating the entry is a truncated prefix of ``key``
        (Section 4.1.5)."""
        it = self.fst.seek(key)
        if it.valid and it.fp_flag and self.real_bits:
            # Real suffix bits can disambiguate a prefix match: compare
            # the stored suffix with the query's corresponding bits.
            key_index = it.value()
            stored = self._real_suffixes[key_index]
            query_bits = _real_suffix_bits(
                key[len(it.key()) :], self.real_bits
            )
            if query_bits > stored:
                it.next()
                it.fp_flag = False
        return it, it.valid and it.fp_flag

    def lookup_range(
        self, low: bytes, high: bytes, inclusive_high: bool = False
    ) -> bool:
        """May any key lie in [low, high) (or [low, high])?"""
        if high < low or (high == low and not inclusive_high):
            return False
        it, _fp = self.move_to_next(low)
        if not it.valid:
            return False
        stored = it.key()
        if stored < high:
            return True
        if inclusive_high and stored == high:
            return True
        # A stored *proper* prefix of `high` may stand for a full key
        # below it.  Equality is excluded: that full key extends the
        # stored entry, so it is >= high and outside [low, high).
        return len(stored) < len(high) and high.startswith(stored)

    #: Filter-vocabulary alias (see :meth:`may_contain`).
    may_contain_range = lookup_range

    def lookup_range_many(
        self, pairs: Sequence[tuple[bytes, bytes]]
    ) -> list[bool]:
        """Batched :meth:`lookup_range` (range walks stay scalar: each
        query follows its own seek path)."""
        return [self.lookup_range(low, high) for low, high in pairs]

    #: Filter-vocabulary alias (see :meth:`may_contain`).
    may_contain_range_many = lookup_range_many

    def count(self, low: bytes, high: bytes) -> int:
        """Approximate number of keys in [low, high); can over-count by
        at most two at truncated boundaries, and never under-counts.

        A stored entry that is a proper *prefix* of ``low`` sorts below
        ``low`` (so the trie count excludes it) yet stands for a full
        key that may lie inside the range — include it, keeping the
        error one-sided.  The matching ``high``-boundary prefix is
        already inside the counted interval; at most one leaf can be a
        prefix of each bound, hence the <= 2 over-count.
        """
        if high <= low:
            return 0
        n = self.fst.count_range(low, high)
        it = self.fst.seek(low)
        if it.valid and it.fp_flag:  # truncated prefix of `low`: ambiguous
            n += 1
        return n

    # -- deletion (Section 4.5's tombstone extension) --------------------------------------

    def delete(self, key: bytes) -> bool:
        """Mark a stored key deleted via the tombstone bit-array.

        Section 4.5: "To create a deletable filter, we can introduce an
        additional tombstone bit-array with one bit per key...  the
        cost of a delete is almost the same as that of a lookup."
        Deleting a key the filter never stored is rejected when the
        structure can prove it; prefix-collided deletes share a
        tombstone (one-sided error is preserved: only false *negatives*
        for deleted keys are introduced, never for live ones).
        """
        found = self.fst._lookup(key)
        if found is None:
            return False
        if self._tombstones is None:
            self._tombstones = bytearray((self.fst.n_keys + 7) // 8)
        idx = found[0]
        self._tombstones[idx >> 3] |= 1 << (idx & 7)
        return True

    def is_deleted(self, key_index: int) -> bool:
        if self._tombstones is None:
            return False
        return bool(self._tombstones[key_index >> 3] & (1 << (key_index & 7)))

    # -- memory ---------------------------------------------------------------------------

    def size_bits(self) -> int:
        total = self.fst.size_bits() + self.fst.n_keys * (
            self.hash_bits + self.real_bits
        )
        if self._tombstones is not None:
            total += len(self._tombstones) * 8
        return total

    def memory_bytes(self) -> int:
        return (self.size_bits() + 7) // 8

    def bits_per_key(self) -> float:
        return self.size_bits() / max(1, self.fst.n_keys)

    def to_bytes(self) -> bytes:
        """Serialize the filter for persisting beside an SSTable."""
        from ..fst.serialize import surf_to_bytes

        return surf_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SuRF":
        from ..fst.serialize import surf_from_bytes

        return surf_from_bytes(data)

    def __len__(self) -> int:
        return self.fst.n_keys


def surf_base(keys: Sequence[bytes], **kw) -> SuRF:
    """SuRF-Base: truncated trie only."""
    return SuRF(keys, suffix_type="none", **kw)


def surf_hash(keys: Sequence[bytes], hash_bits: int = 4, **kw) -> SuRF:
    """SuRF-Hash: hashed key suffixes (point-query FPR < 2^-n)."""
    return SuRF(keys, suffix_type="hash", hash_bits=hash_bits, **kw)


def surf_real(keys: Sequence[bytes], real_bits: int = 4, **kw) -> SuRF:
    """SuRF-Real: real key suffixes (helps point and range queries)."""
    return SuRF(keys, suffix_type="real", real_bits=real_bits, **kw)


def surf_mixed(
    keys: Sequence[bytes], hash_bits: int = 2, real_bits: int = 2, **kw
) -> SuRF:
    """SuRF-Mixed: hashed + real suffix bits stored consecutively."""
    return SuRF(keys, suffix_type="mixed", hash_bits=hash_bits, real_bits=real_bits, **kw)
