"""A modifiable range filter: the hybrid-index extension of SuRF (§4.5).

"For applications that require modifiable range filters, one can
extend SuRF using a hybrid index: a small dynamic trie sits in front of
the SuRF and absorbs all inserts and updates; batch merges periodically
rebuild the SuRF, amortizing the cost of individual modifications."

The dynamic stage here is an exact in-memory set (a B+tree of keys), so
its answers are precise; the static stage is a SuRF with the §4.5
tombstone bit-array for deletions.  Rebuilds need the original keys —
in the motivating LSM deployment those live in the SSTables, so the
retained key list models *storage-resident* data and is excluded from
the filter's memory accounting.
"""

from __future__ import annotations

from typing import Sequence

from ..trees.btree import BPlusTree
from .surf import SuRF, SuffixType


class HybridSuRF:
    """Dual-stage approximate range filter with inserts and deletes."""

    def __init__(
        self,
        keys: Sequence[bytes] = (),
        suffix_type: SuffixType = "real",
        merge_ratio: int = 10,
        min_merge_size: int = 256,
        **surf_kwargs,
    ) -> None:
        if suffix_type == "real" and "real_bits" not in surf_kwargs:
            surf_kwargs["real_bits"] = 4
        self._suffix_type = suffix_type
        self._surf_kwargs = surf_kwargs
        self.merge_ratio = merge_ratio
        self.min_merge_size = min_merge_size
        #: Storage-resident canonical key set (excluded from memory).
        self._static_keys: list[bytes] = sorted(keys)
        self.static = self._build_static(self._static_keys)
        self.dynamic = BPlusTree()
        self.merge_count = 0

    def _build_static(self, keys: list[bytes]) -> SuRF:
        return SuRF(keys, suffix_type=self._suffix_type, **self._surf_kwargs)

    # -- mutations ------------------------------------------------------------------

    def insert(self, key: bytes) -> bool:
        """Absorb a new key into the dynamic stage."""
        inserted = self.dynamic.insert(key, True)
        if inserted and self._should_merge():
            self.merge()
        return inserted

    def delete(self, key: bytes) -> bool:
        """Remove a key: drop it from the dynamic stage or tombstone
        the static filter (the §4.5 delete)."""
        if self.dynamic.delete(key):
            return True
        if key in self._static_key_set():
            self._static_keys_set.discard(key)
            return self.static.delete(key)
        return False

    def _static_key_set(self) -> set[bytes]:
        if not hasattr(self, "_static_keys_set"):
            self._static_keys_set = set(self._static_keys)
        return self._static_keys_set

    def _should_merge(self) -> bool:
        dyn = len(self.dynamic)
        if len(self._static_keys) == 0:
            return dyn >= self.min_merge_size
        return dyn * self.merge_ratio >= len(self._static_keys)

    def merge(self) -> None:
        """Rebuild the SuRF over the merged live key set."""
        live_static = sorted(self._static_key_set())
        merged = sorted(set(live_static) | {k for k, _ in self.dynamic.items()})
        self._static_keys = merged
        if hasattr(self, "_static_keys_set"):
            del self._static_keys_set
        self.static = self._build_static(merged)
        self.dynamic = BPlusTree()
        self.merge_count += 1

    # -- probes ----------------------------------------------------------------------

    def lookup(self, key: bytes) -> bool:
        """One-sided point membership across both stages."""
        if self.dynamic.get(key) is not None:
            return True
        return self.static.lookup(key)

    def lookup_many(self, keys: Sequence[bytes]) -> list[bool]:
        """Batched :meth:`lookup`: exact dynamic-stage hits answer
        directly; the misses go to the static SuRF as one batch."""
        out = [False] * len(keys)
        misses: list[int] = []
        for i, key in enumerate(keys):
            if self.dynamic.get(key) is not None:
                out[i] = True
            else:
                misses.append(i)
        if misses:
            static = self.static.lookup_many([keys[i] for i in misses])
            for i, found in zip(misses, static):
                out[i] = found
        return out

    #: Filter-vocabulary alias (mirrors :class:`~repro.surf.surf.SuRF`).
    may_contain_many = lookup_many

    def lookup_range(self, low: bytes, high: bytes) -> bool:
        """One-sided range membership: any key in [low, high)?"""
        for k, _ in self.dynamic.lower_bound(low):
            if k < high:
                return True
            break
        return self.static.lookup_range(low, high)

    def lookup_range_many(
        self, pairs: Sequence[tuple[bytes, bytes]]
    ) -> list[bool]:
        return [self.lookup_range(low, high) for low, high in pairs]

    #: Filter-vocabulary alias (mirrors :class:`~repro.surf.surf.SuRF`).
    may_contain_range_many = lookup_range_many

    # -- accounting -------------------------------------------------------------------

    def size_bits(self) -> int:
        """Filter memory: the SuRF plus the dynamic-stage tree.  The
        canonical key list models storage-resident data (see module
        docstring) and is excluded, matching the paper's filter-size
        measurements."""
        return self.static.size_bits() + self.dynamic.memory_bytes() * 8

    def memory_bytes(self) -> int:
        return (self.size_bits() + 7) // 8

    def __len__(self) -> int:
        return len(self._static_key_set()) + len(self.dynamic)
