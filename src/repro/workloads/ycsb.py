"""YCSB-style workload generation (Section 2.5, 5.3, and Chapter 6).

The thesis uses YCSB default workloads with Zipfian request
distributions to mimic OLTP index workloads:

* **insert-only** — the load phase, measured as its own workload;
* **A** — 50 % reads / 50 % updates (read/write);
* **C** — 100 % reads (read-only);
* **E** — 95 % short scans / 5 % inserts (scan/insert), scan lengths
  uniform in [50, 100].

An operation is a ``(op, key, extra)`` tuple where ``extra`` is the scan
length for SCAN ops and ``None`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from .zipf import ScrambledZipfianGenerator, UniformGenerator

OpName = Literal["read", "update", "insert", "scan"]

#: Operation mixes of the YCSB default workloads used by the thesis.
WORKLOAD_MIXES: dict[str, dict[OpName, float]] = {
    "insert-only": {"insert": 1.0},
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "E": {"scan": 0.95, "insert": 0.05},
}

SCAN_LEN_MIN = 50
SCAN_LEN_MAX = 100


@dataclass
class Operation:
    """A single generated request."""

    op: OpName
    key: bytes
    scan_len: int | None = None


@dataclass
class YcsbWorkload:
    """A generated YCSB run: a load phase plus a query phase.

    ``load_keys`` are inserted first (this is the *insert-only*
    measurement); ``operations`` then run against the loaded index.
    Inserts during the query phase draw from ``insert_pool`` (keys not
    present in the load phase).
    """

    name: str
    load_keys: list[bytes]
    operations: list[Operation]
    insert_pool: list[bytes] = field(default_factory=list)


def generate(
    workload: str,
    keys: Sequence[bytes],
    n_ops: int,
    distribution: str = "zipfian",
    seed: int = 42,
    insert_fraction_of_keys: float = 0.05,
) -> YcsbWorkload:
    """Build a YCSB workload over the given key set.

    For mixes containing inserts, the tail ``insert_fraction_of_keys``
    of ``keys`` is withheld from the load phase and used as the insert
    pool, so query-phase inserts are always new keys.
    """
    if workload not in WORKLOAD_MIXES:
        raise KeyError(f"unknown workload {workload!r}")
    mix = WORKLOAD_MIXES[workload]
    rng = np.random.default_rng(seed)

    has_inserts = "insert" in mix and workload != "insert-only"
    n_withheld = int(len(keys) * insert_fraction_of_keys) if has_inserts else 0
    load_keys = list(keys[: len(keys) - n_withheld])
    insert_pool = list(keys[len(keys) - n_withheld :])

    if workload == "insert-only":
        return YcsbWorkload(workload, list(keys), [], [])

    if distribution == "zipfian":
        chooser = ScrambledZipfianGenerator(len(load_keys), seed=seed)
    elif distribution == "uniform":
        chooser = UniformGenerator(len(load_keys), seed=seed)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")

    op_names = list(mix.keys())
    op_probs = np.array([mix[o] for o in op_names])
    drawn_ops = rng.choice(len(op_names), size=n_ops, p=op_probs)
    ranks = chooser.sample(n_ops)
    scan_lens = rng.integers(SCAN_LEN_MIN, SCAN_LEN_MAX + 1, size=n_ops)

    operations: list[Operation] = []
    insert_cursor = 0
    for i in range(n_ops):
        op = op_names[int(drawn_ops[i])]
        if op == "insert":
            if insert_cursor >= len(insert_pool):
                op = "read"  # pool exhausted: degrade to read
            else:
                operations.append(Operation("insert", insert_pool[insert_cursor]))
                insert_cursor += 1
                continue
        key = load_keys[int(ranks[i])]
        if op == "scan":
            operations.append(Operation("scan", key, int(scan_lens[i])))
        else:
            operations.append(Operation(op, key))
    return YcsbWorkload(workload, load_keys, operations, insert_pool)


def partition(operations: Sequence[Operation], n_streams: int) -> list[list[Operation]]:
    """Round-robin split of an operation stream across ``n_streams``
    clients, preserving each stream's relative order.

    Round-robin (rather than contiguous chunks) keeps every stream's
    mix and key-popularity profile statistically identical to the
    whole, so per-connection throughput is comparable.
    """
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    streams: list[list[Operation]] = [[] for _ in range(n_streams)]
    for i, op in enumerate(operations):
        streams[i % n_streams].append(op)
    return streams


def point_query_keys(
    keys: Sequence[bytes],
    n_queries: int,
    present_fraction: float = 0.5,
    distribution: str = "zipfian",
    seed: int = 7,
) -> tuple[list[bytes], list[bytes], list[bytes]]:
    """Split ``keys`` into stored/absent halves and draw query keys.

    Mirrors the SuRF microbenchmark setup (Section 4.3): build the
    filter from a random half of the dataset, then query keys drawn from
    the *entire* dataset so that ~``1 - present_fraction`` of queries
    miss.  Returns ``(stored, absent, queries)``.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(keys))
    n_stored = int(len(keys) * present_fraction)
    stored = [keys[i] for i in order[:n_stored]]
    absent = [keys[i] for i in order[n_stored:]]
    if distribution == "zipfian":
        chooser = ScrambledZipfianGenerator(len(keys), seed=seed + 1)
    else:
        chooser = UniformGenerator(len(keys), seed=seed + 1)
    queries = [keys[int(order[r % len(order)])] for r in chooser.sample(n_queries)]
    return stored, absent, queries
