"""The time-series sensor workload of Section 4.4.

Simulated distributed sensors record events; each event key is a
128-bit value: a 64-bit timestamp followed by a 64-bit sensor id.
Event occurrence per sensor follows a Poisson process.  The RocksDB
system evaluation loads these events and issues point / Open-Seek /
Closed-Seek queries over the timestamp dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SensorDataset:
    keys: list[bytes]  # sorted event keys (timestamp || sensor_id)
    n_sensors: int
    duration_ns: int
    expected_interval_ns: int


def make_key(timestamp: int, sensor_id: int) -> bytes:
    return timestamp.to_bytes(8, "big") + sensor_id.to_bytes(8, "big")


def split_key(key: bytes) -> tuple[int, int]:
    return int.from_bytes(key[:8], "big"), int.from_bytes(key[8:], "big")


def generate_sensor_events(
    n_sensors: int = 64,
    events_per_sensor: int = 200,
    expected_interval_ns: int = 10**5,
    seed: int = 7,
) -> SensorDataset:
    """Poisson event streams for ``n_sensors`` sensors.

    The paper uses 2K sensors x 50K events (100 GB); scale parameters
    down proportionally — the I/O behaviour under test depends on the
    *density* of events in time, which ``expected_interval_ns``
    controls, not on the total volume.
    """
    rng = np.random.default_rng(seed)
    keys: list[bytes] = []
    duration = 0
    for sensor in range(n_sensors):
        start = int(rng.integers(0, expected_interval_ns * 2))
        gaps = rng.exponential(expected_interval_ns * n_sensors, events_per_sensor)
        t = start
        for gap in gaps:
            t += max(1, int(gap))
            keys.append(make_key(t, sensor))
        duration = max(duration, t)
    keys.sort()
    return SensorDataset(
        keys=keys,
        n_sensors=n_sensors,
        duration_ns=duration,
        expected_interval_ns=expected_interval_ns * n_sensors,
    )


def closed_seek_range_ns(dataset: SensorDataset, empty_fraction: float) -> int:
    """Range length making a Closed-Seek empty with probability
    ``empty_fraction`` (Section 4.4): P(empty) = exp(-R / lambda), so
    R = lambda * ln(1 / P)."""
    if not 0 < empty_fraction < 1:
        raise ValueError("empty_fraction must be in (0, 1)")
    lam = dataset.duration_ns / max(1, len(dataset.keys))
    return max(1, int(lam * np.log(1.0 / empty_fraction)))
