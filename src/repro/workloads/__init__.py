"""Workload and dataset generators (YCSB, OLTP benchmarks, sensors)."""

from .keys import (
    dataset,
    decode_u64,
    email_keys,
    encode_u64,
    mono_inc_u64_keys,
    random_u64_keys,
    url_keys,
    wiki_keys,
    worst_case_keys,
)
from .ycsb import (
    Operation,
    WORKLOAD_MIXES,
    YcsbWorkload,
    generate,
    partition,
    point_query_keys,
)
from .zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)

__all__ = [
    "dataset",
    "decode_u64",
    "email_keys",
    "encode_u64",
    "mono_inc_u64_keys",
    "random_u64_keys",
    "url_keys",
    "wiki_keys",
    "worst_case_keys",
    "Operation",
    "WORKLOAD_MIXES",
    "YcsbWorkload",
    "generate",
    "partition",
    "point_query_keys",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "fnv1a_64",
]
