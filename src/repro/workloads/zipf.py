"""Zipfian request generators following the YCSB implementation.

YCSB's ``ZipfianGenerator`` draws from ``[0, n)`` with
``P(rank k) ∝ 1 / k^theta`` (theta = 0.99 by default) using Gray et
al.'s constant-time inversion method.  ``ScrambledZipfianGenerator``
additionally hashes the rank so popular items are spread across the key
space — this is what YCSB workloads actually use.
"""

from __future__ import annotations

import numpy as np

DEFAULT_THETA = 0.99
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 bytes (YCSB's scrambling hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & _MASK64
        value >>= 8
    return h


def _zeta(n: int, theta: float) -> float:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((1.0 / ranks**theta).sum())


class ZipfianGenerator:
    """Draws ranks in ``[0, n)``; rank 0 is the most popular item."""

    def __init__(self, n: int, theta: float = DEFAULT_THETA, seed: int = 1) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        self._zetan = _zeta(n, theta)
        self._zeta2 = _zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)

    def sample(self, count: int) -> np.ndarray:
        """Vectorized draw of ``count`` ranks."""
        u = self._rng.random(count)
        uz = u * self._zetan
        ranks = (self.n * (self._eta * u - self._eta + 1) ** self._alpha).astype(
            np.int64
        )
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5**self.theta), 1, ranks)
        return np.clip(ranks, 0, self.n - 1)


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over ``[0, n)`` via FNV hashing (YCSB)."""

    def __init__(self, n: int, theta: float = DEFAULT_THETA, seed: int = 1) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n

    def sample(self, count: int) -> np.ndarray:
        ranks = self._zipf.sample(count)
        return np.array([fnv1a_64(int(r)) % self.n for r in ranks], dtype=np.int64)


class UniformGenerator:
    """Uniform item selection, same interface as the Zipfian generators."""

    def __init__(self, n: int, seed: int = 1) -> None:
        self.n = n
        self._rng = np.random.default_rng(seed)

    def next(self) -> int:
        return int(self._rng.integers(self.n))

    def sample(self, count: int) -> np.ndarray:
        return self._rng.integers(0, self.n, size=count, dtype=np.int64)
